"""Shared machinery for the oracle baselines.

Each oracle baseline restricts candidate generation to a particular context
scope (sentence or table), extracts entity tuples from the resulting
candidates, and is scored with an assumed-perfect precision of 1.0 (paper
Section 5.1, "Oracle").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Set, Tuple

from repro.candidates.extractor import CandidateExtractor, ContextScope
from repro.candidates.matchers import Matcher
from repro.candidates.ngrams import MentionNgrams
from repro.data_model.context import Document
from repro.evaluation.metrics import EvaluationResult, precision_recall_f1

ExtractedEntry = Tuple[str, Tuple[str, ...]]


@dataclass
class OracleResult:
    """Entries reachable by a baseline plus its oracle upper-bound metrics."""

    entries: Set[ExtractedEntry]
    metrics: EvaluationResult


class ScopedOracleBaseline:
    """Oracle baseline with a fixed candidate context scope."""

    scope: ContextScope = ContextScope.SENTENCE
    name: str = "oracle"

    def __init__(
        self,
        relation: str,
        matchers: Dict[str, Matcher],
        mention_space: MentionNgrams | None = None,
    ) -> None:
        self.relation = relation
        self.extractor = CandidateExtractor(
            relation,
            matchers,
            mention_space=mention_space,
            context_scope=self.scope,
        )

    def reachable_entries(self, documents: Sequence[Document]) -> Set[ExtractedEntry]:
        """All (document, entity tuple) pairs reachable under this scope."""
        result = self.extractor.extract(documents)
        entries: Set[ExtractedEntry] = set()
        for candidate in result.candidates:
            document = candidate.document
            document_name = document.name if document is not None else ""
            entries.add((document_name, candidate.entity_tuple))
        return entries

    def evaluate_oracle(
        self,
        documents: Sequence[Document],
        gold: Iterable[ExtractedEntry],
    ) -> OracleResult:
        """Oracle upper bound: recall of reachable gold entries, precision 1.0."""
        gold_set = set(gold)
        reachable = self.reachable_entries(documents)
        recalled = reachable & gold_set
        tp = len(recalled)
        fn = len(gold_set) - tp
        # Oracle precision: a perfect filter keeps only the correct candidates,
        # so fp = 0 — unless nothing at all is reachable, in which case the
        # metrics are all zero (the paper's "no full tuples could be created").
        metrics = precision_recall_f1(tp=tp, fp=0, fn=fn)
        if tp == 0:
            metrics = precision_recall_f1(tp=0, fp=0, fn=len(gold_set))
        return OracleResult(entries=recalled, metrics=metrics)
