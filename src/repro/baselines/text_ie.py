"""Text IE oracle baseline: candidates restricted to single sentences.

"Text: We consider IE methods over text. Here, candidates are extracted from
individual sentences, which are pre-processed with standard NLP tools"
(paper Section 5.1).  Relations whose arguments never co-occur in one sentence
are unreachable for this baseline — the dominant failure mode on richly
formatted data.
"""

from __future__ import annotations

from repro.baselines.base import ScopedOracleBaseline
from repro.candidates.extractor import ContextScope


class TextIEBaseline(ScopedOracleBaseline):
    """Sentence-scoped oracle baseline."""

    scope = ContextScope.SENTENCE
    name = "text"
