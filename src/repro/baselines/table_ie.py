"""Table IE oracle baseline: candidates restricted to single tables.

"Table: For tables, we use an IE method for semi-structured data. Candidates
are drawn from individual tables by utilizing table content and structure"
(paper Section 5.1).  Relations that pair a table value with a mention outside
any table (e.g. a part number in the document header) are unreachable.
"""

from __future__ import annotations

from repro.baselines.base import ScopedOracleBaseline
from repro.candidates.extractor import ContextScope


class TableIEBaseline(ScopedOracleBaseline):
    """Table-scoped oracle baseline."""

    scope = ContextScope.TABLE
    name = "table"
