"""Baseline systems Fonduer is compared against (paper Section 5.1).

* :mod:`repro.baselines.text_ie` — sentence-scoped IE over unstructured text
  (the "Text" oracle of Table 2).
* :mod:`repro.baselines.table_ie` — table-scoped IE over semi-structured data
  (the "Table" oracle of Table 2).
* :mod:`repro.baselines.ensemble` — the union of the Text and Table candidates
  (the "Ensemble" oracle, after Knowledge Vault).
* :mod:`repro.baselines.srv` — an SRV-style learned extractor using only HTML
  (structural + textual) features (Table 5).

The oracle baselines follow the paper's protocol: their recall is what their
candidate generation achieves, and their precision is assumed to be a perfect
1.0 ("we assume the filtering stage is perfect").
"""

from repro.baselines.text_ie import TextIEBaseline
from repro.baselines.table_ie import TableIEBaseline
from repro.baselines.ensemble import EnsembleBaseline
from repro.baselines.srv import SRVBaseline

__all__ = ["EnsembleBaseline", "SRVBaseline", "TableIEBaseline", "TextIEBaseline"]
