"""SRV-style baseline: a learned extractor using only HTML features (Table 5).

SRV (Freitag, 1998) is a machine-learning information extraction system whose
features are derived from HTML structure and surface text.  The paper compares
it against Fonduer on the ADVERTISEMENTS domain (the only HTML-native corpus)
and attributes Fonduer's 2.3× higher quality to its richer multimodal feature
set.  This implementation trains the same discriminative head (sparse logistic
regression) as the human-tuned baseline, but restricted to structural + textual
features — no tabular grid or visual layout features.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.candidates.mentions import Candidate
from repro.features.featurizer import FeatureConfig, Featurizer
from repro.learning.logistic import LogisticConfig, SparseLogisticRegression


class SRVBaseline:
    """Learned extractor over HTML-only (structural + textual) features."""

    name = "srv"

    def __init__(self, logistic_config: Optional[LogisticConfig] = None) -> None:
        self.featurizer = Featurizer(
            FeatureConfig(textual=True, structural=True, tabular=False, visual=False)
        )
        self.model = SparseLogisticRegression(logistic_config)

    def _feature_rows(self, candidates: Sequence[Candidate]) -> List[Dict[str, float]]:
        rows = []
        for candidate in candidates:
            rows.append({name: 1.0 for name in self.featurizer.features_for_candidate(candidate)})
        return rows

    def fit(self, candidates: Sequence[Candidate], marginals: Sequence[float]) -> "SRVBaseline":
        """Train on candidates against (probabilistic or hard 0/1) labels."""
        rows = self._feature_rows(candidates)
        self.model.fit(rows, marginals)
        return self

    def predict_proba(self, candidates: Sequence[Candidate]) -> np.ndarray:
        return self.model.predict_proba(self._feature_rows(candidates))

    def predict(self, candidates: Sequence[Candidate], threshold: float = 0.5) -> np.ndarray:
        return np.where(self.predict_proba(candidates) > threshold, 1, -1)
