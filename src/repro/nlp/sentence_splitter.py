"""Rule-based sentence segmentation.

Splits paragraph text into sentences on terminal punctuation while protecting
common abbreviations, decimal numbers and ellipses used as interval notation
(``-65 ... 150`` must stay in one sentence).
"""

from __future__ import annotations

import re
from typing import List

_ABBREVIATIONS = {
    "e.g", "i.e", "etc", "fig", "figs", "eq", "no", "vol", "pp", "cf",
    "dr", "mr", "mrs", "ms", "prof", "st", "vs", "approx", "max", "min",
}

_TERMINAL = re.compile(r"([.!?])\s+")


def _is_abbreviation(prefix: str) -> bool:
    last_word = prefix.rstrip(".").split()[-1].lower() if prefix.split() else ""
    return last_word in _ABBREVIATIONS


def split_sentences(text: str) -> List[str]:
    """Split ``text`` into sentence strings.

    >>> split_sentences("High DC current gain. Low saturation voltage.")
    ['High DC current gain.', 'Low saturation voltage.']
    >>> split_sentences("Storage temperature -65 ... 150")
    ['Storage temperature -65 ... 150']
    """
    if not text or not text.strip():
        return []
    text = re.sub(r"\s+", " ", text.strip())

    sentences: List[str] = []
    start = 0
    for match in _TERMINAL.finditer(text):
        end = match.end(1)
        candidate = text[start:end].strip()
        if not candidate:
            continue
        # Protect ellipsis "...": the regex matches the final dot of "..." too;
        # skip a split when the terminal dot is part of an ellipsis.
        if text[max(0, end - 3) : end] == "...":
            continue
        if _is_abbreviation(candidate):
            continue
        # Protect decimal numbers like "1.5" (no following space => not matched anyway).
        sentences.append(candidate)
        start = match.end()
    tail = text[start:].strip()
    if tail:
        sentences.append(tail)
    return sentences
