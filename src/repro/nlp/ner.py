"""Dictionary + pattern named-entity recognizer.

Assigns IOB-less entity labels per token.  The label set covers the entity
kinds that matter across the paper's four domains:

* ``NUMBER`` — bare numbers
* ``UNIT`` — electrical / physical units (mA, V, °C, mm, kg...)
* ``PART`` — transistor-style part numbers
* ``GENE`` / ``RSID`` — gene symbols and SNP identifiers (GENOMICS)
* ``TAXON`` — binomial-style species tokens (PALEONTOLOGY)
* ``MONEY`` / ``LOCATION`` / ``PHONE`` — advertisement attributes
* ``O`` — everything else

User-supplied dictionaries can extend any label.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence

_NUMBER_RE = re.compile(r"^[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?$")
_PART_RE = re.compile(r"^[A-Z]{2,5}\d{3,5}[A-Z0-9\-]*$")
_RSID_RE = re.compile(r"^rs\d{3,}$")
_GENE_RE = re.compile(r"^[A-Z][A-Z0-9]{1,7}$")
_PHONE_RE = re.compile(r"^\d{3}[-.]?\d{3}[-.]?\d{4}$")
_UNITS = {
    "ma", "mv", "mw", "a", "v", "w", "kv", "khz", "mhz", "ghz", "hz",
    "°c", "c", "k", "ns", "ms", "s", "pf", "nf", "uf", "μf", "ω", "ohm",
    "ohms", "%", "mm", "cm", "m", "kg", "g", "mg", "lbs", "lb", "in",
}
_CURRENCY = {"$", "€", "£", "usd", "eur"}
_LOCATION_HINTS = {
    "chicago", "houston", "miami", "atlanta", "dallas", "seattle", "denver",
    "phoenix", "boston", "portland", "vegas", "austin", "orlando", "tampa",
}


class NerTagger:
    """Per-token entity tagger combining regex shapes with dictionaries."""

    def __init__(self, extra_dictionaries: Optional[Dict[str, Iterable[str]]] = None) -> None:
        self._dictionaries: Dict[str, set] = {}
        for label, words in (extra_dictionaries or {}).items():
            self._dictionaries[label] = {w.lower() for w in words}

    def add_dictionary(self, label: str, words: Iterable[str]) -> None:
        self._dictionaries.setdefault(label, set()).update(w.lower() for w in words)

    def tag(self, tokens: Sequence[str]) -> List[str]:
        return [self.tag_word(token, index, tokens) for index, token in enumerate(tokens)]

    def tag_word(self, token: str, index: int, tokens: Sequence[str]) -> str:
        lower = token.lower()
        for label, words in self._dictionaries.items():
            if lower in words:
                return label
        if _NUMBER_RE.match(token):
            return "NUMBER"
        if lower in _UNITS:
            return "UNIT"
        if lower in _CURRENCY:
            return "MONEY"
        if _PHONE_RE.match(token):
            return "PHONE"
        if _RSID_RE.match(token):
            return "RSID"
        if _PART_RE.match(token):
            return "PART"
        if lower in _LOCATION_HINTS:
            return "LOCATION"
        if _GENE_RE.match(token) and any(ch.isdigit() for ch in token):
            return "GENE"
        return "O"
