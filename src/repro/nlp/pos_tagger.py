"""Rule/lexicon part-of-speech tagger.

Produces a compact Penn-Treebank-style tag set sufficient for the feature
library and matchers (``NN``, ``NNP``, ``CD``, ``JJ``, ``VB``, ``IN``, ``DT``,
``CC``, ``SYM``, ``PUNCT``).  The tagger combines a closed-class lexicon with
suffix and character-shape rules, which is adequate for the technical prose and
table fragments found in richly formatted documents.
"""

from __future__ import annotations

import re
from typing import List, Sequence

_DETERMINERS = {"a", "an", "the", "this", "that", "these", "those"}
_PREPOSITIONS = {
    "in", "on", "at", "by", "for", "with", "from", "to", "of", "over",
    "under", "between", "among", "within", "per", "via", "during",
}
_CONJUNCTIONS = {"and", "or", "but", "nor", "yet", "so"}
_PRONOUNS = {"it", "its", "they", "their", "we", "our", "he", "she", "his", "her", "i", "you"}
_MODALS = {"can", "could", "may", "might", "must", "shall", "should", "will", "would"}
_BE_VERBS = {"is", "are", "was", "were", "be", "been", "being", "am"}
_COMMON_VERBS = {
    "has", "have", "had", "shows", "show", "shown", "provides", "provide",
    "exceeds", "exceed", "uses", "use", "used", "contains", "contain",
    "reported", "report", "found", "measured", "measure", "extracted",
    "rated", "operates", "operate", "described", "describe", "indicates",
    "indicate", "specified", "specify", "offers", "offer", "includes",
    "include", "features", "denotes", "denote",
}
_ADJ_SUFFIXES = ("ous", "ful", "ive", "ic", "ical", "able", "ible", "al", "ary", "less")
_VERB_SUFFIXES = ("ize", "ise", "ated", "ify")
_ADVERB_SUFFIX = "ly"

_NUMBER_RE = re.compile(r"^[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?$")
_PART_NUMBER_RE = re.compile(r"^[A-Za-z]+\d[A-Za-z0-9\-/]*$")
_PUNCT_RE = re.compile(r"^[^\w\s]+$")
_UNIT_RE = re.compile(r"^(?:m?[AVW]|mA|mV|mW|kV|kHz|MHz|GHz|°C|C|K|ns|ms|s|pF|nF|uF|μF|Ω|ohm|ohms|%)$")


class PosTagger:
    """Tag a sequence of tokens with coarse Penn-style POS tags."""

    def tag(self, tokens: Sequence[str]) -> List[str]:
        return [self.tag_word(token, index, tokens) for index, token in enumerate(tokens)]

    def tag_word(self, token: str, index: int, tokens: Sequence[str]) -> str:
        lower = token.lower()
        if _NUMBER_RE.match(token):
            return "CD"
        if _PUNCT_RE.match(token):
            return "PUNCT"
        if lower in _DETERMINERS:
            return "DT"
        if lower in _PREPOSITIONS:
            return "IN"
        if lower in _CONJUNCTIONS:
            return "CC"
        if lower in _PRONOUNS:
            return "PRP"
        if lower in _MODALS:
            return "MD"
        if lower in _BE_VERBS or lower in _COMMON_VERBS:
            return "VB"
        if _UNIT_RE.match(token):
            return "SYM"
        if _PART_NUMBER_RE.match(token):
            return "NNP"
        if lower.endswith(_ADVERB_SUFFIX) and len(lower) > 3:
            return "RB"
        if lower.endswith(_VERB_SUFFIXES):
            return "VB"
        if lower.endswith("ing") and len(lower) > 5:
            return "VBG"
        if lower.endswith("ed") and len(lower) > 4:
            return "VBD"
        if lower.endswith(_ADJ_SUFFIXES) and len(lower) > 4:
            return "JJ"
        if token[:1].isupper() and index > 0:
            return "NNP"
        if lower.endswith("s") and len(lower) > 3:
            return "NNS"
        return "NN"
