"""Lightweight NLP substrate.

The original Fonduer uses standard NLP pre-processing tools (spaCy / CoreNLP) to
annotate every Sentence with lemmas, part-of-speech tags and named-entity tags
(paper Section 3.1).  This subpackage provides a deterministic, dependency-free
replacement with the same interfaces:

* :mod:`repro.nlp.tokenizer` — regex word tokenizer tuned for datasheet-style
  text (units, part numbers, numeric intervals).
* :mod:`repro.nlp.sentence_splitter` — rule-based sentence segmentation.
* :mod:`repro.nlp.pos_tagger` — rule/lexicon part-of-speech tagger producing a
  compact Penn-style tag set.
* :mod:`repro.nlp.lemmatizer` — suffix-stripping lemmatizer.
* :mod:`repro.nlp.ner` — dictionary + pattern named-entity recognizer (numbers,
  units, part numbers, genes, currencies, locations...).
* :mod:`repro.nlp.embeddings` — deterministic hashed word embeddings used by the
  LSTM in place of pre-trained vectors.
* :mod:`repro.nlp.pipeline` — a convenience pipeline that runs all of the above
  over a Sentence or a raw string.
"""

from repro.nlp.tokenizer import tokenize
from repro.nlp.sentence_splitter import split_sentences
from repro.nlp.pos_tagger import PosTagger
from repro.nlp.lemmatizer import Lemmatizer
from repro.nlp.ner import NerTagger
from repro.nlp.embeddings import WordEmbeddings
from repro.nlp.pipeline import NlpPipeline

__all__ = [
    "Lemmatizer",
    "NerTagger",
    "NlpPipeline",
    "PosTagger",
    "WordEmbeddings",
    "split_sentences",
    "tokenize",
]
