"""Suffix-stripping lemmatizer.

Maps inflected word forms to a base form.  Accuracy requirements here are mild:
lemmas are used as bag-of-words evidence in the extended feature library and in
labeling functions ("ALIGNED current"), so lowercasing plus a small set of
suffix rules and an exception lexicon is sufficient.
"""

from __future__ import annotations

import re
from typing import List, Sequence

_EXCEPTIONS = {
    "is": "be", "are": "be", "was": "be", "were": "be", "been": "be", "being": "be", "am": "be",
    "has": "have", "had": "have", "having": "have",
    "does": "do", "did": "do", "done": "do",
    "ratings": "rating", "data": "data", "series": "series",
    "analyses": "analysis", "indices": "index", "matrices": "matrix",
    "mice": "mouse", "feet": "foot", "phenotypes": "phenotype",
    "currents": "current", "voltages": "voltage", "temperatures": "temperature",
}

_NUMBER_RE = re.compile(r"^[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?$")


class Lemmatizer:
    """Reduce tokens to lowercase lemmas using exception + suffix rules."""

    def lemmatize(self, tokens: Sequence[str]) -> List[str]:
        return [self.lemmatize_word(token) for token in tokens]

    def lemmatize_word(self, token: str) -> str:
        if _NUMBER_RE.match(token):
            return token
        lower = token.lower()
        if lower in _EXCEPTIONS:
            return _EXCEPTIONS[lower]
        if len(lower) <= 3:
            return lower
        # Ordered suffix rules; first applicable wins.
        if lower.endswith("ies") and len(lower) > 4:
            return lower[:-3] + "y"
        if lower.endswith("sses"):
            return lower[:-2]
        if lower.endswith("ches") or lower.endswith("shes") or lower.endswith("xes"):
            return lower[:-2]
        if lower.endswith("s") and not lower.endswith("ss") and not lower.endswith("us"):
            return lower[:-1]
        if lower.endswith("ing") and len(lower) > 5:
            stem = lower[:-3]
            if len(stem) >= 3 and stem[-1] == stem[-2]:
                stem = stem[:-1]
            return stem
        if lower.endswith("ed") and len(lower) > 4:
            stem = lower[:-2]
            if len(stem) >= 3 and stem[-1] == stem[-2]:
                stem = stem[:-1]
            return stem
        return lower
