"""Convenience NLP pipeline: tokenize, split, tag and lemmatize text.

The corpus parsers use this pipeline to annotate every Sentence of the data
model with the linguistic attributes the paper's pre-processing step produces
(Section 3.1: "standard NLP pre-processing tools are used to generate
linguistic attributes, such as lemmas, parts of speech tags, named entity
recognition tags ... for each Sentence").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.nlp.lemmatizer import Lemmatizer
from repro.nlp.ner import NerTagger
from repro.nlp.pos_tagger import PosTagger
from repro.nlp.sentence_splitter import split_sentences
from repro.nlp.tokenizer import tokenize


@dataclass
class AnnotatedSentence:
    """Plain container for one annotated sentence (pre data-model)."""

    words: List[str]
    lemmas: List[str]
    pos_tags: List[str]
    ner_tags: List[str]

    def __len__(self) -> int:
        return len(self.words)


class NlpPipeline:
    """Run tokenization, sentence splitting, POS tagging, lemmatization and NER."""

    def __init__(self, extra_ner_dictionaries: Optional[Dict[str, Iterable[str]]] = None) -> None:
        self.pos_tagger = PosTagger()
        self.lemmatizer = Lemmatizer()
        self.ner_tagger = NerTagger(extra_ner_dictionaries)

    def annotate_tokens(self, words: List[str]) -> AnnotatedSentence:
        """Annotate an already-tokenized word sequence."""
        return AnnotatedSentence(
            words=list(words),
            lemmas=self.lemmatizer.lemmatize(words),
            pos_tags=self.pos_tagger.tag(words),
            ner_tags=self.ner_tagger.tag(words),
        )

    def annotate_text(self, text: str) -> List[AnnotatedSentence]:
        """Split raw text into sentences and annotate each one."""
        annotated = []
        for sentence_text in split_sentences(text):
            words = tokenize(sentence_text)
            if words:
                annotated.append(self.annotate_tokens(words))
        return annotated
