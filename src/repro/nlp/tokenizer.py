"""Regex word tokenizer tuned for richly formatted technical text.

Datasheet-style documents contain tokens that general-purpose tokenizers
mangle: part numbers (``SMBT3904``), values with units (``200mA``, ``-65``),
intervals (``-65 ... 150``), symbols (``VCEO``) and punctuation-heavy prose.
The tokenizer keeps such tokens intact while still splitting ordinary prose on
whitespace and punctuation.
"""

from __future__ import annotations

import re
from typing import List

# Order matters: earlier alternatives win.
_TOKEN_PATTERN = re.compile(
    r"""
    [A-Za-z]+[0-9][A-Za-z0-9\-/]*        # part numbers / alphanumeric codes: SMBT3904, BC547B
    | \d+[A-Za-z]+\d[A-Za-z0-9\-/]*      # digit-prefixed part numbers: 2N2222A, 1N4148
    | [+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?  # numbers: 200, -65, 1.87, 1e-5
    | [A-Za-z]+(?:'[a-z]+)?              # words, possibly with an apostrophe clitic
    | \.\.\.                             # ellipsis used in numeric intervals
    | [~…°μΩ%$€£]    # interval tilde, ellipsis char, degree, micro, ohm, percent, currency
    | [^\sA-Za-z0-9]                     # any other single non-space symbol
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[str]:
    """Split ``text`` into word tokens.

    >>> tokenize("Collector current IC 200 mA")
    ['Collector', 'current', 'IC', '200', 'mA']
    >>> tokenize("-65 ... 150")
    ['-65', '...', '150']
    >>> tokenize("SMBT3904...MMBT3904")
    ['SMBT3904', '...', 'MMBT3904']
    """
    if not text:
        return []
    return _TOKEN_PATTERN.findall(text)


def detokenize(tokens: List[str]) -> str:
    """Inverse-ish of :func:`tokenize`: join tokens with single spaces.

    Exact character-level inversion is not required anywhere in the library;
    whitespace normalization is acceptable (and matches how sentence text is
    stored in the data model).
    """
    return " ".join(tokens)
