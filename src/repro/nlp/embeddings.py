"""Deterministic hashed word embeddings.

The paper initializes its Bi-LSTM with pre-trained word embeddings [40].  This
repository has no network access, so the embedding table is replaced with a
deterministic hash-based embedding: every word maps to a fixed pseudo-random
vector seeded by a stable hash of its lowercase form.  Words sharing character
3-gram structure receive partially correlated vectors, which gives the model a
small amount of sub-word generalization (useful for part numbers and units).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

import numpy as np


def _stable_hash(text: str) -> int:
    return int.from_bytes(hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "little")


class WordEmbeddings:
    """Lazy, deterministic embedding lookup table.

    Parameters
    ----------
    dim:
        Dimensionality of each embedding vector.
    subword_weight:
        Fraction of each vector contributed by character 3-gram hashes; the
        remainder is contributed by the whole-word hash.  Setting this to zero
        produces fully independent vectors per word.
    """

    def __init__(self, dim: int = 32, subword_weight: float = 0.3) -> None:
        if dim <= 0:
            raise ValueError("Embedding dimension must be positive")
        if not 0.0 <= subword_weight <= 1.0:
            raise ValueError("subword_weight must lie in [0, 1]")
        self.dim = dim
        self.subword_weight = subword_weight
        self._cache: Dict[str, np.ndarray] = {}

    def _vector_from_seed(self, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.standard_normal(self.dim).astype(np.float64)

    def _char_ngrams(self, word: str, n: int = 3) -> List[str]:
        padded = f"<{word}>"
        if len(padded) <= n:
            return [padded]
        return [padded[i : i + n] for i in range(len(padded) - n + 1)]

    def embed_word(self, word: str) -> np.ndarray:
        """Embedding vector for a single word (unit-norm)."""
        key = word.lower()
        if key in self._cache:
            return self._cache[key]
        whole = self._vector_from_seed(_stable_hash(key))
        whole /= np.linalg.norm(whole) or 1.0
        if self.subword_weight > 0:
            grams = self._char_ngrams(key)
            sub = np.zeros(self.dim)
            for gram in grams:
                sub += self._vector_from_seed(_stable_hash("ngram:" + gram))
            sub_norm = np.linalg.norm(sub)
            if sub_norm > 0:
                sub /= sub_norm
            # Both components are unit-norm so the mixing weight controls how
            # much sub-word structure (shared character 3-grams) shows up in
            # the cosine similarity of related surface forms.
            vector = (1 - self.subword_weight) * whole + self.subword_weight * sub
        else:
            vector = whole
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector = vector / norm
        self._cache[key] = vector
        return vector

    def embed_sequence(self, words: Sequence[str]) -> np.ndarray:
        """Embed a token sequence into a ``(len(words), dim)`` matrix."""
        if not words:
            return np.zeros((0, self.dim))
        return np.stack([self.embed_word(w) for w in words])

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two word embeddings."""
        va, vb = self.embed_word(a), self.embed_word(b)
        denom = float(np.linalg.norm(va) * np.linalg.norm(vb))
        if denom == 0:
            return 0.0
        return float(np.dot(va, vb) / denom)

    def __len__(self) -> int:
        return len(self._cache)
