"""Existing (expert-curated) knowledge bases for the Table 3 comparison.

The paper compares Fonduer's output against Digi-Key's transistor catalog
(ELECTRONICS) and against GWAS Central / GWAS Catalog (GENOMICS).  Those KBs
are built by manual entry, web aggregation and paid services, so they (a) miss
entries that are present in the documents and (b) contain a small fraction of
entries that do not correspond to the documents at all.  This module derives
such a KB from the synthetic ground truth with controlled incompleteness and
noise, which is what lets the coverage / accuracy / new-correct-entries
analysis run end to end.
"""

from __future__ import annotations

import random
from typing import Iterable, Set, Tuple

EntityTuple = Tuple[str, ...]


def build_existing_kb(
    ground_truth: Iterable[EntityTuple],
    coverage_of_truth: float = 0.6,
    foreign_fraction: float = 0.1,
    seed: int = 0,
) -> Set[EntityTuple]:
    """Derive an expert-curated-style KB from the ground truth.

    Parameters
    ----------
    ground_truth:
        The full set of true entity tuples for the corpus.
    coverage_of_truth:
        Fraction of the ground truth the curated KB actually contains (curated
        KBs "may exhibit low coverage", paper Section 1).
    foreign_fraction:
        Fraction (relative to the KB size) of additional entries that refer to
        entities outside the corpus — present in the curated KB but never
        extractable from our documents.
    """
    if not 0.0 < coverage_of_truth <= 1.0:
        raise ValueError("coverage_of_truth must lie in (0, 1]")
    if foreign_fraction < 0.0:
        raise ValueError("foreign_fraction must be non-negative")

    truth = sorted(set(ground_truth))
    rng = random.Random(seed)
    n_covered = max(1, int(round(coverage_of_truth * len(truth)))) if truth else 0
    covered = set(rng.sample(truth, n_covered)) if truth else set()

    kb: Set[EntityTuple] = set(covered)
    n_foreign = int(round(foreign_fraction * max(1, len(kb))))
    arity = len(truth[0]) if truth else 2
    for index in range(n_foreign):
        # Synthesize entries about entities that do not occur in the corpus.
        foreign_entry = tuple(f"external-{index}-{position}" for position in range(arity))
        kb.add(foreign_entry)
    return kb
