"""ADVERTISEMENTS domain: heterogeneous HTML webpages.

The paper's ADS corpus contains millions of web ads with hugely varied layouts;
relations (service attributes) are expressed both in free text and in small
attribute tables, which is why the Text and Table oracles retain substantial
recall and the Ensemble does well (Table 2), while Fonduer still wins by
reasoning over both jointly.  The target relation here is
``has_price(location, price)``: the advertised city paired with the advertised
rate.  The generator produces ads across many "web domains" (different layout
templates), sometimes expressing the relation inside one sentence, sometimes
only via an attribute table, and plants numeric distractors (ages, weights,
phone-number fragments, times).
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.candidates.matchers import DictionaryMatcher, NumberMatcher
from repro.candidates.mentions import Candidate
from repro.data_model.traversal import row_ngrams, same_sentence
from repro.datasets.base import DatasetSpec, GeneratedCorpus, GoldEntry
from repro.parsing.corpus import RawDocument
from repro.storage.kb import RelationSchema
from repro.supervision.labeling import LabelingFunction

RELATION_NAME = "has_price"
LOCATION_TYPE = "location"
PRICE_TYPE = "price"

_CITIES = [
    "Chicago", "Houston", "Miami", "Atlanta", "Dallas", "Seattle", "Denver",
    "Phoenix", "Boston", "Portland", "Vegas", "Austin", "Orlando", "Tampa",
]
_RATE_WORDS = ["roses", "donation", "rate", "special", "hr rate"]
_TEMPLATES = ["classic", "boxy", "minimal", "listed"]


def _generate_document(rng: random.Random, index: int) -> Tuple[RawDocument, Set[Tuple[str, ...]]]:
    city = rng.choice(_CITIES)
    price = rng.choice([80, 100, 120, 150, 160, 200, 250, 300, 350, 400])
    age = rng.randint(19, 35)
    weight = rng.choice([110, 115, 120, 125, 130, 140, 150])
    phone_area = rng.randint(201, 599)
    template = rng.choice(_TEMPLATES)
    gold = {(city.lower(), str(price))}

    rate_word = rng.choice(_RATE_WORDS)
    blocks = ['<section id="ad">', f'<h1 class="ad-title">Sweet companion visiting {city} this week</h1>']

    # ~45% of ads express the relation inside one sentence (Text oracle recall).
    price_in_sentence = rng.random() < 0.45
    if price_in_sentence:
        blocks.append(
            f"<p>Now in {city} downtown, my {rate_word} is {price} per hour, "
            f"call {phone_area} 555 {rng.randint(1000, 9999)} anytime.</p>"
        )
    else:
        blocks.append(
            f"<p>Just arrived in town, available day and night, "
            f"call {phone_area} 555 {rng.randint(1000, 9999)} to book.</p>"
        )

    blocks.append(
        f"<p>I am {age} years young, {weight} lbs, friendly and discreet. "
        f"No games, no drama, 100 percent real photos.</p>"
    )

    # Some ads advertise a short-visit special at a different (non-gold) price;
    # its textual context looks exactly like the real rate, which is what keeps
    # precision below 1.0 in this domain.
    if rng.random() < 0.20:
        special = rng.choice([60, 70, 80, 90])
        blocks.append(f"<p>Quick visit special today only {special} roses, limited availability.</p>")

    # A fraction of ads spell the rate out in words, which no numeric matcher
    # can recover — recall lost at candidate generation, as in real ads.
    spelled_out = (not price_in_sentence) and rng.random() < 0.20
    if spelled_out:
        blocks.append("<p>My donation is two hundred roses for the first hour.</p>")

    # Ads that did not state the rate in prose always carry an attribute table
    # (the rate is advertised somewhere); prose-priced ads carry one ~55% of
    # the time.  The location row appears there only part of the time, so the
    # Ensemble still misses some relations.
    if not price_in_sentence or rng.random() < 0.55:
        rate_value = "ask me" if spelled_out else str(price)
        rows = [
            ("Age", str(age)),
            (rng.choice(["Rate", "Donation", "Price"]), rate_value),
            ("Availability", "Incall and outcall"),
        ]
        if rng.random() < 0.6:
            rows.insert(0, ("Location", city))
        rows_html = "".join(f"<tr><td>{k}</td><td>{v}</td></tr>" for k, v in rows)
        blocks.append(f'<table class="{template}-attrs"><tr><th>Attribute</th><th>Value</th></tr>{rows_html}</table>')
    else:
        blocks.append(
            f"<p>Ask about my two hour {rate_word} special and my travel schedule.</p>"
        )

    blocks.append(f'<p class="footer">Posted in {city} personals. Reply to ad number {rng.randint(10000, 99999)}.</p>')
    blocks.append("</section>")

    raw = RawDocument(
        name=f"ads_{index:05d}",
        content="\n".join(blocks),
        format="html",
        metadata={"domain": "advertisements", "template": template},
    )
    return raw, gold


def generate_advertisements_corpus(n_docs: int = 20, seed: int = 0) -> GeneratedCorpus:
    rng = random.Random(seed + 1)
    raw_documents: List[RawDocument] = []
    gold_entries: Set[GoldEntry] = set()
    for index in range(n_docs):
        raw, gold = _generate_document(rng, index)
        raw_documents.append(raw)
        for entity_tuple in gold:
            gold_entries.add((raw.name, entity_tuple))
    return GeneratedCorpus(raw_documents=raw_documents, gold_entries=gold_entries)


def advertisements_matchers() -> Dict[str, object]:
    return {
        LOCATION_TYPE: DictionaryMatcher(_CITIES),
        PRICE_TYPE: NumberMatcher(minimum=60, maximum=600),
    }


def advertisements_throttlers() -> List[object]:
    def price_not_in_footer(candidate: Candidate) -> bool:
        span = candidate.get_mention(PRICE_TYPE).span
        return span.html_attrs.get("class") != "footer"

    price_not_in_footer.__name__ = "price_not_in_footer"
    return [price_not_in_footer]


def advertisements_labeling_functions() -> List[LabelingFunction]:
    def lf_rate_row(candidate: Candidate) -> int:
        grams = row_ngrams(candidate.get_mention(PRICE_TYPE).span)
        if any(word in grams for word in ("rate", "donation", "price")):
            return 1
        return 0

    def lf_age_or_weight_row(candidate: Candidate) -> int:
        grams = row_ngrams(candidate.get_mention(PRICE_TYPE).span)
        return -1 if any(word in grams for word in ("age", "weight")) else 0

    def lf_rate_words_near_price(candidate: Candidate) -> int:
        span = candidate.get_mention(PRICE_TYPE).span
        words = span.sentence.words
        window = {
            w.lower()
            for w in words[max(0, span.word_start - 4) : span.word_end + 4]
        }
        if window & {"roses", "donation", "rate", "special", "hour", "hr"}:
            return 1
        return 0

    def lf_age_words_near_price(candidate: Candidate) -> int:
        sentence = candidate.get_mention(PRICE_TYPE).span.sentence
        words = {w.lower() for w in sentence.words}
        return -1 if words & {"years", "young", "lbs", "photos", "percent"} else 0

    def lf_phone_context(candidate: Candidate) -> int:
        span = candidate.get_mention(PRICE_TYPE).span
        left = span.sentence.words[max(0, span.word_start - 2) : span.word_start]
        right = span.sentence.words[span.word_end : span.word_end + 2]
        neighbors = {w.lower() for w in left + right}
        return -1 if neighbors & {"call", "555", "reply", "number"} else 0

    def lf_location_in_title(candidate: Candidate) -> int:
        span = candidate.get_mention(LOCATION_TYPE).span
        return 1 if span.html_tag in ("h1", "title") else 0

    def lf_location_in_footer(candidate: Candidate) -> int:
        span = candidate.get_mention(LOCATION_TYPE).span
        return -1 if span.html_attrs.get("class") == "footer" else 0

    def lf_same_sentence(candidate: Candidate) -> int:
        part = candidate.get_mention(LOCATION_TYPE).span
        price = candidate.get_mention(PRICE_TYPE).span
        if same_sentence(part, price):
            words = {w.lower() for w in price.sentence.words}
            if words & {"roses", "donation", "rate", "hour"}:
                return 1
        return 0

    def lf_different_page(candidate: Candidate) -> int:
        a = candidate.get_mention(LOCATION_TYPE).span.page
        b = candidate.get_mention(PRICE_TYPE).span.page
        if a is None or b is None:
            return 0
        return -1 if a != b else 0

    def lf_price_low_on_page(candidate: Candidate) -> int:
        box = candidate.get_mention(PRICE_TYPE).span.bounding_box
        if box is None:
            return 0
        # Rates appear in the ad body or the attribute table, not at the very
        # bottom of the page where boilerplate (ad ids, reply links) lives.
        return -1 if box.y0 > 700 else 0

    return [
        LabelingFunction("lf_rate_row", lf_rate_row, modality="tabular"),
        LabelingFunction("lf_age_or_weight_row", lf_age_or_weight_row, modality="tabular"),
        LabelingFunction("lf_rate_words_near_price", lf_rate_words_near_price, modality="textual"),
        LabelingFunction("lf_age_words_near_price", lf_age_words_near_price, modality="textual"),
        LabelingFunction("lf_phone_context", lf_phone_context, modality="textual"),
        LabelingFunction("lf_same_sentence", lf_same_sentence, modality="textual"),
        LabelingFunction("lf_location_in_title", lf_location_in_title, modality="structural"),
        LabelingFunction("lf_location_in_footer", lf_location_in_footer, modality="structural"),
        LabelingFunction("lf_different_page", lf_different_page, modality="visual"),
        LabelingFunction("lf_price_low_on_page", lf_price_low_on_page, modality="visual"),
    ]


def build_advertisements_dataset(n_docs: int = 20, seed: int = 0) -> DatasetSpec:
    return DatasetSpec(
        name="advertisements",
        description="Web advertisements with varied layouts (HTML).",
        format="HTML",
        schema=RelationSchema(RELATION_NAME, (LOCATION_TYPE, PRICE_TYPE)),
        corpus=generate_advertisements_corpus(n_docs=n_docs, seed=seed),
        matchers=advertisements_matchers(),
        labeling_functions=advertisements_labeling_functions(),
        throttlers=advertisements_throttlers(),
    )
