"""GENOMICS domain: GWAS papers published natively in XML (no visual modality).

The paper extracts associations between single-nucleotide polymorphisms (SNPs)
and human phenotypes that were found to be statistically significant.  The
phenotype under study is named in the article title/abstract; the SNPs and
their p-values live in results tables — so *every* candidate is cross-context
and neither the Text nor the Table oracle can produce a single full tuple
(Table 2, GEN row).  The target relation is ``has_association(rsid, phenotype)``.

Documents are emitted in a JATS-like XML schema and parsed by
:class:`repro.parsing.xml_parser.XmlDocParser`; following the paper, no visual
rendering is attached (Table 1: format XML).
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.candidates.matchers import DictionaryMatcher, RegexMatcher
from repro.candidates.mentions import Candidate
from repro.data_model.traversal import column_header_ngrams, row_ngrams
from repro.datasets.base import DatasetSpec, GeneratedCorpus, GoldEntry
from repro.parsing.corpus import RawDocument
from repro.storage.kb import RelationSchema
from repro.supervision.labeling import LabelingFunction

RELATION_NAME = "has_association"
RSID_TYPE = "rsid"
PHENOTYPE_TYPE = "phenotype"

_PHENOTYPES = [
    "type 2 diabetes", "asthma", "obesity", "hypertension", "schizophrenia",
    "rheumatoid arthritis", "coronary artery disease", "breast cancer",
    "crohn disease", "macular degeneration", "bipolar disorder", "psoriasis",
]
_GENES = ["TCF7L2", "FTO", "APOE", "BRCA1", "IL23R", "CFH", "PPARG", "KCNJ11", "HLA", "CDKN2A"]


def _significant_p_value(rng: random.Random) -> str:
    return f"{rng.randint(1, 9)}e-{rng.randint(8, 15):02d}"


def _nonsignificant_p_value(rng: random.Random) -> str:
    return f"{rng.randint(1, 9)}e-{rng.randint(2, 6):02d}"


def _generate_document(rng: random.Random, index: int) -> Tuple[RawDocument, Set[Tuple[str, ...]]]:
    phenotype = rng.choice(_PHENOTYPES)
    n_snps = rng.randint(5, 10)
    n_significant = rng.randint(2, max(2, n_snps // 2))

    gold: Set[Tuple[str, ...]] = set()
    table_rows = []
    for snp_index in range(n_snps):
        rsid = f"rs{rng.randint(100000, 99999999)}"
        gene = rng.choice(_GENES)
        chromosome = rng.randint(1, 22)
        if snp_index < n_significant:
            # A minority of significant hits report the p-value in "a x 10-b"
            # notation, which the tokenizer splits and simple LFs cannot parse —
            # those associations are harder to recover, keeping recall < 1.
            if rng.random() < 0.15:
                p_value = f"{rng.randint(1, 9)} x 10-{rng.randint(8, 15):02d}"
            else:
                p_value = _significant_p_value(rng)
            gold.add((rsid, phenotype))
        else:
            p_value = _nonsignificant_p_value(rng)
        odds_ratio = round(rng.uniform(1.05, 1.9), 2)
        table_rows.append((rsid, gene, str(chromosome), p_value, str(odds_ratio)))
    rng.shuffle(table_rows)

    rows_xml = "".join(
        f"<tr><td>{rsid}</td><td>{gene}</td><td>{chromosome}</td><td>{p}</td><td>{orv}</td></tr>"
        for rsid, gene, chromosome, p, orv in table_rows
    )
    replication_rows = "".join(
        f"<tr><td>{rng.choice(_GENES)}</td><td>{rng.randint(500, 5000)}</td></tr>" for _ in range(3)
    )

    xml = f"""<article>
  <sec id="front">
    <title>Genome-wide association study of {phenotype} in a large cohort</title>
    <p>We performed a genome-wide association study of {phenotype} including
       {rng.randint(2000, 20000)} cases and {rng.randint(3000, 40000)} controls.
       Associations reaching genome-wide significance are reported below.</p>
  </sec>
  <sec id="results">
    <title>Results</title>
    <p>Several loci reached genome-wide significance for the studied trait.
       Replication was attempted in an independent cohort.</p>
    <table-wrap id="t1">
      <caption>Loci associated with {phenotype} at genome-wide significance</caption>
      <table>
        <tr><th>SNP</th><th>Gene</th><th>Chromosome</th><th>P-value</th><th>OR</th></tr>
        {rows_xml}
      </table>
    </table-wrap>
    <table-wrap id="t2">
      <caption>Replication cohort sample sizes</caption>
      <table>
        <tr><th>Gene</th><th>Samples</th></tr>
        {replication_rows}
      </table>
    </table-wrap>
  </sec>
  <sec id="discussion">
    <title>Discussion</title>
    <p>Our findings confirm previously reported loci and identify novel signals
       that warrant functional follow-up studies.</p>
  </sec>
</article>"""

    raw = RawDocument(
        name=f"gen_{index:04d}",
        content=xml,
        format="xml",
        metadata={"domain": "genomics", "phenotype": phenotype},
    )
    return raw, gold


def generate_genomics_corpus(n_docs: int = 20, seed: int = 0) -> GeneratedCorpus:
    rng = random.Random(seed + 3)
    raw_documents: List[RawDocument] = []
    gold_entries: Set[GoldEntry] = set()
    for index in range(n_docs):
        raw, gold = _generate_document(rng, index)
        raw_documents.append(raw)
        for entity_tuple in gold:
            gold_entries.add((raw.name, entity_tuple))
    return GeneratedCorpus(raw_documents=raw_documents, gold_entries=gold_entries)


def genomics_matchers() -> Dict[str, object]:
    return {
        RSID_TYPE: RegexMatcher(r"rs\d{5,9}"),
        PHENOTYPE_TYPE: DictionaryMatcher(_PHENOTYPES),
    }


def genomics_throttlers() -> List[object]:
    def rsid_in_table(candidate: Candidate) -> bool:
        return candidate.get_mention(RSID_TYPE).span.is_tabular

    rsid_in_table.__name__ = "rsid_in_table"
    return [rsid_in_table]


def _p_value_exponent(grams: List[str]) -> int | None:
    """Smallest base-10 exponent among p-value-looking n-grams (e.g. '3e-09' → -9)."""
    best = None
    for gram in grams:
        text = gram.lower()
        if "e-" in text:
            try:
                exponent = -int(text.split("e-")[1])
            except (ValueError, IndexError):
                continue
            if best is None or exponent < best:
                best = exponent
    return best


def genomics_labeling_functions() -> List[LabelingFunction]:
    def lf_significant_p_value(candidate: Candidate) -> int:
        grams = row_ngrams(candidate.get_mention(RSID_TYPE).span)
        exponent = _p_value_exponent(grams)
        if exponent is None:
            return 0
        return 1 if exponent <= -8 else -1

    def lf_not_snp_column(candidate: Candidate) -> int:
        grams = column_header_ngrams(candidate.get_mention(RSID_TYPE).span)
        return -1 if grams and "snp" not in grams else 0

    def lf_no_gene_in_row(candidate: Candidate) -> int:
        grams = {g.upper() for g in row_ngrams(candidate.get_mention(RSID_TYPE).span)}
        return -1 if not (grams & set(_GENES)) else 0

    def lf_phenotype_not_prominent(candidate: Candidate) -> int:
        span = candidate.get_mention(PHENOTYPE_TYPE).span
        ancestors = [type(a).__name__ for a in span.sentence.ancestors()]
        if span.html_tag == "title" or "Caption" in ancestors:
            return 0
        return -1

    def lf_phenotype_in_caption(candidate: Candidate) -> int:
        span = candidate.get_mention(PHENOTYPE_TYPE).span
        ancestors = [type(a).__name__ for a in span.sentence.ancestors()]
        return 1 if "Caption" in ancestors else 0

    def lf_phenotype_in_discussion(candidate: Candidate) -> int:
        span = candidate.get_mention(PHENOTYPE_TYPE).span
        for ancestor in span.sentence.ancestors():
            attrs = ancestor.attributes.get("html_attrs", {})
            if isinstance(attrs, dict) and attrs.get("id") == "discussion":
                return -1
        return 0

    def lf_significance_wording(candidate: Candidate) -> int:
        words = {w.lower() for w in candidate.get_mention(PHENOTYPE_TYPE).span.sentence.words}
        return -1 if not (words & {"association", "significance", "study"}) else 0

    def lf_rsid_shape(candidate: Candidate) -> int:
        text = candidate.get_mention(RSID_TYPE).text
        return -1 if not text.startswith("rs") else 0

    return [
        LabelingFunction("lf_significant_p_value", lf_significant_p_value, modality="tabular"),
        LabelingFunction("lf_not_snp_column", lf_not_snp_column, modality="tabular"),
        LabelingFunction("lf_no_gene_in_row", lf_no_gene_in_row, modality="tabular"),
        LabelingFunction("lf_phenotype_not_prominent", lf_phenotype_not_prominent, modality="structural"),
        LabelingFunction("lf_phenotype_in_caption", lf_phenotype_in_caption, modality="structural"),
        LabelingFunction("lf_phenotype_in_discussion", lf_phenotype_in_discussion, modality="structural"),
        LabelingFunction("lf_significance_wording", lf_significance_wording, modality="textual"),
        LabelingFunction("lf_rsid_shape", lf_rsid_shape, modality="textual"),
    ]


def build_genomics_dataset(n_docs: int = 20, seed: int = 0) -> DatasetSpec:
    return DatasetSpec(
        name="genomics",
        description="GWAS papers: phenotypes in titles, SNPs and p-values in tables (XML).",
        format="XML",
        schema=RelationSchema(RELATION_NAME, (RSID_TYPE, PHENOTYPE_TYPE)),
        corpus=generate_genomics_corpus(n_docs=n_docs, seed=seed),
        matchers=genomics_matchers(),
        labeling_functions=genomics_labeling_functions(),
        throttlers=genomics_throttlers(),
    )
