"""PALEONTOLOGY domain: journal articles with long, multi-page specimen tables.

The paper extracts relations between paleontological discoveries and their
physical measurements; the difficulty is that the geological formation a table
of specimens belongs to is named in the running text or the table caption,
often many pages away from the measurements themselves.  The target relation is
``has_measurement(formation, measurement)``: a formation name paired with a
specimen measurement (millimetres, always written with a decimal point).

The generator emits article-style documents with an abstract, a locality
section naming the formation, and a long specimen table (element / measurement
/ collection year / specimen count) whose caption references the formation.
Text-oracle recall is essentially zero (formation and measurements never share
a sentence); Table-oracle recall is tiny (only when the formation is repeated
inside the table itself), matching the shape of Table 2.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.candidates.matchers import RegexMatcher
from repro.candidates.mentions import Candidate
from repro.data_model.traversal import column_header_ngrams, row_ngrams
from repro.datasets.base import DatasetSpec, GeneratedCorpus, GoldEntry
from repro.parsing.corpus import RawDocument
from repro.storage.kb import RelationSchema
from repro.supervision.labeling import LabelingFunction

RELATION_NAME = "has_measurement"
FORMATION_TYPE = "formation"
MEASUREMENT_TYPE = "measurement"

_FORMATION_NAMES = [
    "Morrison", "Hell Creek", "Wessex", "Kaiparowits", "Dinosaur Park",
    "Tendaguru", "Yixian", "Nemegt", "Cloverly", "Oxford Clay", "Santana",
    "Elliot", "Lance", "Judith River", "Two Medicine",
]
_ELEMENTS = [
    "femur", "tibia", "humerus", "skull", "vertebra", "rib", "scapula",
    "ilium", "dentary", "ulna", "radius", "metatarsal",
]
_TAXA = [
    "Allosaurus", "Camarasaurus", "Stegosaurus", "Triceratops", "Edmontosaurus",
    "Iguanodon", "Diplodocus", "Apatosaurus", "Ceratosaurus", "Brachiosaurus",
]


def _generate_document(rng: random.Random, index: int) -> Tuple[RawDocument, Set[Tuple[str, ...]]]:
    formation = rng.choice(_FORMATION_NAMES)
    formation_full = f"{formation} Formation"
    taxa = rng.sample(_TAXA, k=rng.randint(2, 3))
    n_specimen_rows = rng.randint(6, 12)

    gold: Set[Tuple[str, ...]] = set()
    specimen_rows = []
    # Stylistic variety in how the measured-length column is headed; a fraction
    # of documents carry an OCR-style typo that defeats header-based signals.
    length_header = rng.choice(["Length mm", "Max length mm", "Greatest length mm"])
    if rng.random() < 0.20:
        length_header = "Lenght mm"
    for row_index in range(n_specimen_rows):
        element = rng.choice(_ELEMENTS)
        taxon = rng.choice(taxa)
        measurement = round(rng.uniform(3.5, 980.0), 1)
        # Distractor decimals: width, estimated mass and stratigraphic height are
        # also decimal numbers but are not the lengths being extracted.
        width = round(rng.uniform(1.5, 400.0), 1)
        mass = round(rng.uniform(0.5, 900.0), 1)
        count = rng.randint(1, 40)
        specimen_rows.append(
            (f"{taxon} {element}", f"{measurement}", f"{width}", f"{mass}", str(count))
        )
        gold.add((formation_full.lower(), f"{measurement}"))

    blocks = [
        '<section id="article">',
        f"<h1>New vertebrate material from the {formation_full} and its implications</h1>",
        "<p>Abstract. We describe newly collected vertebrate material and provide "
        "updated measurements of the principal skeletal elements. The assemblage "
        "includes " + ", ".join(taxa) + " among other taxa.</p>",
        "<h2>Geological setting</h2>",
        f"<p>All specimens described here were collected from exposures of the "
        f"{formation_full}, a richly fossiliferous unit. Field work was conducted "
        f"over {rng.randint(2, 9)} seasons and {rng.randint(120, 400)} localities were logged.</p>",
        "<h2>Systematic paleontology</h2>",
        "<p>" + " ".join(
            f"{taxon} is represented by well preserved cranial and postcranial material."
            for taxon in taxa
        ) + "</p>",
        "<h2>Measurements</h2>",
    ]

    rows_html = "".join(
        f"<tr><td>{element}</td><td>{measurement}</td><td>{width}</td><td>{mass}</td><td>{count}</td></tr>"
        for element, measurement, width, mass, count in specimen_rows
    )
    # In a minority of documents the formation is also repeated inside a table
    # cell (giving the Table oracle its tiny recall).
    extra_row = ""
    if rng.random() < 0.08:
        extra_row = (
            f"<tr><td>Source unit: {formation_full}</td><td></td><td></td><td></td><td></td></tr>"
        )
    blocks.append(
        "<table id=\"measurements\">"
        f"<caption>Measurements of specimens from the {formation_full} described in this work</caption>"
        f"<tr><th>Element</th><th>{length_header}</th><th>Width mm</th><th>Mass kg</th><th>Specimens</th></tr>"
        f"{rows_html}{extra_row}</table>"
    )
    blocks.append(
        "<h2>Discussion</h2>"
        f"<p>The new material extends the known size range of several taxa and "
        f"confirms earlier reports from {rng.randint(1950, 2010)}.</p>"
    )
    blocks.append("</section>")

    raw = RawDocument(
        name=f"paleo_{index:04d}",
        content="\n".join(blocks),
        format="pdf",
        metadata={"domain": "paleontology", "formation": formation_full},
    )
    return raw, gold


def generate_paleontology_corpus(n_docs: int = 20, seed: int = 0) -> GeneratedCorpus:
    rng = random.Random(seed + 2)
    raw_documents: List[RawDocument] = []
    gold_entries: Set[GoldEntry] = set()
    for index in range(n_docs):
        raw, gold = _generate_document(rng, index)
        raw_documents.append(raw)
        for entity_tuple in gold:
            gold_entries.add((raw.name, entity_tuple))
    return GeneratedCorpus(raw_documents=raw_documents, gold_entries=gold_entries)


def paleontology_matchers() -> Dict[str, object]:
    formation_matcher = RegexMatcher(
        r"(?:%s) Formation" % "|".join(_FORMATION_NAMES), ignore_case=False
    )
    measurement_matcher = RegexMatcher(r"\d{1,3}\.\d")
    return {FORMATION_TYPE: formation_matcher, MEASUREMENT_TYPE: measurement_matcher}


def paleontology_throttlers() -> List[object]:
    def measurement_in_table(candidate: Candidate) -> bool:
        return candidate.get_mention(MEASUREMENT_TYPE).span.is_tabular

    measurement_in_table.__name__ = "measurement_in_table"
    return [measurement_in_table]


def paleontology_labeling_functions() -> List[LabelingFunction]:
    def lf_length_column(candidate: Candidate) -> int:
        grams = column_header_ngrams(candidate.get_mention(MEASUREMENT_TYPE).span)
        if "length" in grams:
            return 1
        return 0

    def lf_other_numeric_column(candidate: Candidate) -> int:
        grams = column_header_ngrams(candidate.get_mention(MEASUREMENT_TYPE).span)
        return -1 if any(word in grams for word in ("mass", "kg", "width", "specimens")) else 0

    def lf_no_element_in_row(candidate: Candidate) -> int:
        grams = row_ngrams(candidate.get_mention(MEASUREMENT_TYPE).span)
        return -1 if not any(element in grams for element in _ELEMENTS) else 0

    def lf_formation_in_caption_of_other_table(candidate: Candidate) -> int:
        formation_span = candidate.get_mention(FORMATION_TYPE).span
        measurement_span = candidate.get_mention(MEASUREMENT_TYPE).span
        ancestors = formation_span.sentence.ancestors()
        in_caption = any(type(a).__name__ == "Caption" for a in ancestors)
        if not in_caption or measurement_span.table is None:
            return 0
        # A caption that belongs to a different table than the measurement is
        # evidence against the pairing.
        caption_tables = [a for a in ancestors if type(a).__name__ == "Table"]
        if caption_tables and caption_tables[0] is not measurement_span.table:
            return -1
        return 0

    def lf_formation_in_plain_text(candidate: Candidate) -> int:
        span = candidate.get_mention(FORMATION_TYPE).span
        ancestors = [type(a).__name__ for a in span.sentence.ancestors()]
        if span.html_tag in ("h1", "h2") or "Caption" in ancestors:
            return 0
        return -1

    def lf_measurement_not_decimal(candidate: Candidate) -> int:
        text = candidate.get_mention(MEASUREMENT_TYPE).text
        return -1 if "." not in text else 0

    def lf_measurement_large_integer(candidate: Candidate) -> int:
        text = candidate.get_mention(MEASUREMENT_TYPE).text
        try:
            value = float(text)
        except ValueError:
            return 0
        return -1 if value > 1500 else 0

    def lf_different_page_far(candidate: Candidate) -> int:
        a = candidate.get_mention(FORMATION_TYPE).span.page
        b = candidate.get_mention(MEASUREMENT_TYPE).span.page
        if a is None or b is None:
            return 0
        return -1 if abs(a - b) > 25 else 0

    return [
        LabelingFunction("lf_length_column", lf_length_column, modality="tabular"),
        LabelingFunction("lf_other_numeric_column", lf_other_numeric_column, modality="tabular"),
        LabelingFunction("lf_no_element_in_row", lf_no_element_in_row, modality="tabular"),
        LabelingFunction(
            "lf_formation_in_caption_of_other_table",
            lf_formation_in_caption_of_other_table,
            modality="structural",
        ),
        LabelingFunction("lf_formation_in_plain_text", lf_formation_in_plain_text, modality="structural"),
        LabelingFunction("lf_measurement_not_decimal", lf_measurement_not_decimal, modality="textual"),
        LabelingFunction("lf_measurement_large_integer", lf_measurement_large_integer, modality="textual"),
        LabelingFunction("lf_different_page_far", lf_different_page_far, modality="visual"),
    ]


def build_paleontology_dataset(n_docs: int = 20, seed: int = 0) -> DatasetSpec:
    return DatasetSpec(
        name="paleontology",
        description="Paleontology articles: formations in text/captions, measurements in long tables (PDF).",
        format="PDF",
        schema=RelationSchema(RELATION_NAME, (FORMATION_TYPE, MEASUREMENT_TYPE)),
        corpus=generate_paleontology_corpus(n_docs=n_docs, seed=seed),
        matchers=paleontology_matchers(),
        labeling_functions=paleontology_labeling_functions(),
        throttlers=paleontology_throttlers(),
    )
