"""ELECTRONICS domain: transistor datasheets (PDF-style, tables + numbers).

Mirrors the paper's running example (Figure 1): part numbers live in the
document header, electrical ratings live in a "Maximum Ratings" table with
Parameter / Symbol / Value / Unit columns, and the target relation
``has_collector_current(transistor_part, current)`` must be assembled across
those contexts.  The generator injects the kinds of variety the paper calls out
(interval notations "-65 ... 150" vs "-65 ~ 150" vs "-65 to 150", merged unit
cells, spanning cells, distractor tables) and controls how often the relation
is *also* expressed inside a single sentence or a single table so that the
Text/Table oracle baselines retain a little recall, as in Table 2.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.candidates.matchers import NumberMatcher, RegexMatcher
from repro.candidates.mentions import Candidate
from repro.data_model.traversal import (
    column_header_ngrams,
    row_ngrams,
)
from repro.datasets.base import DatasetSpec, GeneratedCorpus, GoldEntry
from repro.parsing.corpus import RawDocument
from repro.storage.kb import RelationSchema
from repro.supervision.labeling import LabelingFunction

_MANUFACTURER_PREFIXES = ["SMBT", "MMBT", "BC", "PN", "2N", "KSP", "NTE", "FMMT", "ZTX", "MPS"]
_INTERVAL_STYLES = ["{lo} ... {hi}", "{lo} ~ {hi}", "{lo} to {hi}"]

RELATION_NAME = "has_collector_current"
PART_TYPE = "transistor_part"
CURRENT_TYPE = "current"


def _make_part_number(rng: random.Random) -> str:
    prefix = rng.choice(_MANUFACTURER_PREFIXES)
    return f"{prefix}{rng.randint(1000, 9999)}"


def _ratings_rows(rng: random.Random, collector_current: int) -> List[Tuple[str, str, str, str]]:
    """(parameter, symbol, value, unit) rows of the Maximum Ratings table."""
    interval = rng.choice(_INTERVAL_STYLES).format(lo=-65, hi=rng.choice([125, 150, 175]))
    rows = [
        ("Collector-emitter voltage", "VCEO", str(rng.choice([30, 40, 45, 60, 80])), "V"),
        ("Collector-base voltage", "VCBO", str(rng.choice([50, 60, 75, 100])), "V"),
        ("Emitter-base voltage", "VEBO", str(rng.choice([5, 6, 7])), "V"),
        ("Collector current", "IC", str(collector_current), "mA"),
        ("Total power dissipation", "Ptot", str(rng.choice([250, 310, 330, 350, 500, 625])), "mW"),
        ("Junction temperature", "Tj", str(rng.choice([150, 175])), "°C"),
        ("Storage temperature", "Tstg", interval, "°C"),
    ]
    rng.shuffle(rows)
    return rows


def _characteristics_rows(rng: random.Random) -> List[Tuple[str, str, str, str]]:
    """Distractor table: DC characteristics with values in the same numeric range."""
    return [
        ("DC current gain", "hFE", str(rng.choice([100, 150, 200, 300, 400])), "-"),
        ("Transition frequency", "fT", str(rng.choice([100, 250, 270, 300])), "MHz"),
        ("Output capacitance", "Cobo", str(rng.choice([4, 5, 6, 8])), "pF"),
        ("Base-emitter saturation voltage", "VBEsat", str(rng.choice([650, 700, 850, 950])), "mV"),
    ]


def _render_table(rows: List[Tuple[str, str, str, str]], rng: random.Random, table_id: str) -> str:
    """Render a Parameter/Symbol/Value/Unit table with occasional merged unit cells."""
    html = [f'<table id="{table_id}">']
    html.append("<tr><th>Parameter</th><th>Symbol</th><th>Value</th><th>Unit</th></tr>")
    for parameter, symbol, value, unit in rows:
        if rng.random() < 0.15:
            # Stylistic variety: value and unit merged into one cell.
            html.append(
                f"<tr><td>{parameter}</td><td>{symbol}</td>"
                f'<td colspan="2">{value} {unit}</td></tr>'
            )
        else:
            html.append(
                f"<tr><td>{parameter}</td><td>{symbol}</td><td>{value}</td><td>{unit}</td></tr>"
            )
    html.append("</table>")
    return "\n".join(html)


def _generate_document(rng: random.Random, index: int) -> Tuple[RawDocument, Set[Tuple[str, ...]]]:
    n_parts = rng.choice([1, 1, 2, 2, 3])
    parts = [_make_part_number(rng) for _ in range(n_parts)]
    collector_current = rng.choice([100, 150, 200, 200, 350, 500, 600, 800])
    gold = {(part.lower(), str(collector_current)) for part in parts}

    header = " ... ".join(parts)
    ratings = _ratings_rows(rng, collector_current)
    characteristics = _characteristics_rows(rng)

    blocks = [
        '<section id="datasheet">',
        f'<h1 class="part-header" style="font-family:Arial;font-size:12;font-weight:bold">{header}</h1>',
        "<p>NPN Silicon Switching Transistors</p>",
        "<p>High DC current gain. Low collector-emitter saturation voltage. "
        "These transistors are designed for switching and amplifier applications.</p>",
        "<h2>Maximum Ratings</h2>",
        _render_table(ratings, rng, "ratings"),
        "<h2>Electrical Characteristics</h2>",
        _render_table(characteristics, rng, "characteristics"),
    ]

    # A small fraction of datasheets repeat the relation inside one sentence
    # (Text-oracle recall ≈ 3% in the paper) ...
    if rng.random() < 0.05:
        blocks.append(
            f"<p>The {parts[0]} supports a continuous collector current of "
            f"{collector_current} mA at ambient temperature.</p>"
        )
    # ... and some include an ordering table that pairs part and current in one
    # table (Table-oracle recall ≈ 20%).
    if rng.random() < 0.20:
        ordering_rows = "".join(
            f"<tr><td>{part}</td><td>{collector_current}</td><td>SOT-23</td></tr>" for part in parts
        )
        blocks.append(
            '<table id="ordering"><tr><th>Type</th><th>IC max</th><th>Package</th></tr>'
            f"{ordering_rows}</table>"
        )

    blocks.append("<p>Specifications are subject to change without notice.</p>")
    blocks.append("</section>")

    raw = RawDocument(
        name=f"elec_{index:04d}",
        content="\n".join(blocks),
        format="pdf",
        metadata={"domain": "electronics", "parts": parts},
    )
    return raw, gold


def generate_electronics_corpus(n_docs: int = 20, seed: int = 0) -> GeneratedCorpus:
    """Generate the ELECTRONICS corpus with document-scoped ground truth."""
    rng = random.Random(seed)
    raw_documents: List[RawDocument] = []
    gold_entries: Set[GoldEntry] = set()
    for index in range(n_docs):
        raw, gold = _generate_document(rng, index)
        raw_documents.append(raw)
        for entity_tuple in gold:
            gold_entries.add((raw.name, entity_tuple))
    return GeneratedCorpus(raw_documents=raw_documents, gold_entries=gold_entries)


# ----------------------------------------------------------------- user inputs
def electronics_matchers() -> Dict[str, object]:
    """Matchers for the two mention types (paper Example 3.3)."""
    part_matcher = RegexMatcher(r"(?:%s)\d{3,5}[A-Z0-9]*" % "|".join(_MANUFACTURER_PREFIXES))
    current_matcher = NumberMatcher(minimum=100, maximum=995)
    return {PART_TYPE: part_matcher, CURRENT_TYPE: current_matcher}


def electronics_throttlers() -> List[object]:
    """Throttler keeping candidates whose current sits under a 'Value'-like header."""

    def value_in_column_header(candidate: Candidate) -> bool:
        current_span = candidate.get_mention(CURRENT_TYPE).span
        if current_span.cell is None:
            return True  # non-tabular current mentions are not throttled
        headers = column_header_ngrams(current_span)
        return any(h in ("value", "ic", "ic max", "max") for h in headers)

    value_in_column_header.__name__ = "value_in_column_header"
    return [value_in_column_header]


def electronics_labeling_functions() -> List[LabelingFunction]:
    """The LF pool; tags mirror where users drew their signals from (Figure 9)."""

    def lf_current_in_row(candidate: Candidate) -> int:
        grams = row_ngrams(candidate.get_mention(CURRENT_TYPE).span)
        if "current" in grams and "collector" in grams:
            return 1
        return 0

    def lf_temperature_row(candidate: Candidate) -> int:
        grams = row_ngrams(candidate.get_mention(CURRENT_TYPE).span)
        return -1 if "temperature" in grams else 0

    def lf_voltage_row(candidate: Candidate) -> int:
        grams = row_ngrams(candidate.get_mention(CURRENT_TYPE).span)
        return -1 if "voltage" in grams else 0

    def lf_dissipation_row(candidate: Candidate) -> int:
        grams = row_ngrams(candidate.get_mention(CURRENT_TYPE).span)
        return -1 if "dissipation" in grams or "frequency" in grams else 0

    def lf_gain_row(candidate: Candidate) -> int:
        grams = row_ngrams(candidate.get_mention(CURRENT_TYPE).span)
        return -1 if "gain" in grams or "capacitance" in grams else 0

    def lf_part_not_in_header(candidate: Candidate) -> int:
        span = candidate.get_mention(PART_TYPE).span
        return -1 if span.html_tag not in ("h1", "h2", "td", "th") else 0

    def lf_part_deep_in_table(candidate: Candidate) -> int:
        span = candidate.get_mention(PART_TYPE).span
        return -1 if span.is_tabular and span.html_tag == "td" and span.row_index not in (None, 0) and span.column_index not in (None, 0) else 0

    def lf_different_page(candidate: Candidate) -> int:
        part_page = candidate.get_mention(PART_TYPE).span.page
        current_page = candidate.get_mention(CURRENT_TYPE).span.page
        if part_page is None or current_page is None:
            return 0
        return -1 if abs(part_page - current_page) > 1 else 0

    def lf_aligned_with_unit(candidate: Candidate) -> int:
        span = candidate.get_mention(CURRENT_TYPE).span
        sentence = span.sentence
        # Unit "mA" visually on the same line as the value.
        for word, box in zip(sentence.words, sentence.word_boxes):
            if word.lower() == "ma" and box is not None and span.bounding_box is not None:
                if box.is_horizontally_aligned(span.bounding_box, tolerance=6.0):
                    return 1
        grams = row_ngrams(span)
        return 1 if "ma" in grams else 0

    def lf_current_magnitude(candidate: Candidate) -> int:
        text = candidate.get_mention(CURRENT_TYPE).text
        try:
            value = float(text)
        except ValueError:
            return 0
        return 1 if value in (100, 150, 200, 500, 600, 800) else 0

    def lf_current_round_number(candidate: Candidate) -> int:
        text = candidate.get_mention(CURRENT_TYPE).text
        return -1 if text.endswith("5") or text.endswith("1") else 0

    def lf_sentence_mentions_current(candidate: Candidate) -> int:
        words = {w.lower() for w in candidate.get_mention(CURRENT_TYPE).span.sentence.words}
        return 1 if {"collector", "current"} <= words else 0

    # Pool order reflects the order a user plausibly writes them in (the paper's
    # own Example 3.5 rules first); the user-study simulation unlocks them in
    # this order.
    return [
        LabelingFunction("lf_current_in_row", lf_current_in_row, modality="tabular"),
        LabelingFunction("lf_aligned_with_unit", lf_aligned_with_unit, modality="visual"),
        LabelingFunction("lf_temperature_row", lf_temperature_row, modality="tabular"),
        LabelingFunction("lf_voltage_row", lf_voltage_row, modality="tabular"),
        LabelingFunction("lf_dissipation_row", lf_dissipation_row, modality="tabular"),
        LabelingFunction("lf_gain_row", lf_gain_row, modality="tabular"),
        LabelingFunction("lf_part_not_in_header", lf_part_not_in_header, modality="structural"),
        LabelingFunction("lf_part_deep_in_table", lf_part_deep_in_table, modality="structural"),
        LabelingFunction("lf_different_page", lf_different_page, modality="visual"),
        LabelingFunction("lf_current_magnitude", lf_current_magnitude, modality="textual"),
        LabelingFunction("lf_current_round_number", lf_current_round_number, modality="textual"),
        LabelingFunction("lf_sentence_mentions_current", lf_sentence_mentions_current, modality="textual"),
    ]


def build_electronics_dataset(n_docs: int = 20, seed: int = 0) -> DatasetSpec:
    """Assemble the full ELECTRONICS dataset spec."""
    return DatasetSpec(
        name="electronics",
        description="Transistor datasheets: part numbers in headers, ratings in tables (PDF).",
        format="PDF",
        schema=RelationSchema(RELATION_NAME, (PART_TYPE, CURRENT_TYPE)),
        corpus=generate_electronics_corpus(n_docs=n_docs, seed=seed),
        matchers=electronics_matchers(),
        labeling_functions=electronics_labeling_functions(),
        throttlers=electronics_throttlers(),
    )
