"""Common containers for the synthetic evaluation corpora."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.candidates.matchers import Matcher
from repro.candidates.throttlers import Throttler
from repro.data_model.context import Document
from repro.parsing.corpus import CorpusParser, RawDocument
from repro.storage.kb import RelationSchema
from repro.supervision.labeling import LabelingFunction

GoldEntry = Tuple[str, Tuple[str, ...]]
"""A gold fact: (document name, normalized entity tuple)."""


@dataclass
class GeneratedCorpus:
    """Raw documents plus their ground truth, before parsing."""

    raw_documents: List[RawDocument]
    gold_entries: Set[GoldEntry]

    @property
    def n_documents(self) -> int:
        return len(self.raw_documents)

    def gold_by_document(self) -> Dict[str, Set[Tuple[str, ...]]]:
        """Ground truth keyed by document name (the format gold labels expect)."""
        result: Dict[str, Set[Tuple[str, ...]]] = {}
        for document_name, entity_tuple in self.gold_entries:
            result.setdefault(document_name, set()).add(entity_tuple)
        return result

    def gold_tuples(self) -> Set[Tuple[str, ...]]:
        """Document-independent entity tuples (the KB-comparison granularity)."""
        return {entity_tuple for _, entity_tuple in self.gold_entries}


@dataclass
class DatasetSpec:
    """One ready-to-run domain: corpus, schema and user inputs.

    ``labeling_functions`` is the full pool; the supervision ablation
    (Figure 8) partitions it by each LF's ``modality`` tag, and the user-study
    simulation (Figure 9) releases LFs from the pool over time.
    """

    name: str
    description: str
    format: str
    schema: RelationSchema
    corpus: GeneratedCorpus
    matchers: Dict[str, Matcher]
    labeling_functions: List[LabelingFunction]
    throttlers: List[Throttler] = field(default_factory=list)
    _parsed_documents: Optional[List[Document]] = field(default=None, repr=False)

    # ------------------------------------------------------------------ sugar
    def parse_documents(self, parser: Optional[CorpusParser] = None) -> List[Document]:
        """Parse (and cache) the corpus into data-model documents."""
        if self._parsed_documents is None:
            parser = parser or CorpusParser()
            self._parsed_documents = parser.parse(self.corpus.raw_documents)
        return self._parsed_documents

    @property
    def gold_entries(self) -> Set[GoldEntry]:
        return self.corpus.gold_entries

    def labeling_functions_by_modality(self, modalities: Sequence[str]) -> List[LabelingFunction]:
        """Subset of the LF pool whose modality tag is in ``modalities``."""
        wanted = {m.lower() for m in modalities}
        return [lf for lf in self.labeling_functions if lf.modality.lower() in wanted]

    @property
    def textual_labeling_functions(self) -> List[LabelingFunction]:
        return self.labeling_functions_by_modality(["textual"])

    @property
    def metadata_labeling_functions(self) -> List[LabelingFunction]:
        """Structural + tabular + visual LFs (the paper's "metadata" LFs, Figure 8)."""
        return self.labeling_functions_by_modality(["structural", "tabular", "visual"])

    def summary(self) -> Dict[str, object]:
        """The Table 1 row for this dataset."""
        total_chars = sum(len(raw.content) for raw in self.corpus.raw_documents)
        return {
            "dataset": self.name,
            "size_chars": total_chars,
            "n_docs": self.corpus.n_documents,
            "n_gold_entries": len(self.corpus.gold_entries),
            "format": self.format,
        }
