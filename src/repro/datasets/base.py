"""Common containers for the synthetic evaluation corpora.

Besides the in-memory containers, this module holds the *corpus directory*
format the streaming pipeline consumes: :func:`write_corpus_dir` lays a
generated corpus out on disk (one file per raw document plus ``corpus.json``
and ``gold.json``), and :func:`read_corpus_dir` loads it back with
deterministic ordering and corpus-relative ``path`` set on every raw document
— the key the sharded store content-addresses on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.candidates.matchers import Matcher
from repro.candidates.throttlers import Throttler
from repro.data_model.context import Document
from repro.parsing.corpus import CorpusParser, RawDocument
from repro.storage.kb import RelationSchema
from repro.supervision.labeling import LabelingFunction

GoldEntry = Tuple[str, Tuple[str, ...]]
"""A gold fact: (document name, normalized entity tuple)."""

#: File extension per raw-document format inside a corpus directory.
_FORMAT_EXTENSIONS = {"html": ".html", "pdf": ".pdf.html", "xml": ".xml"}
_EXTENSION_FORMATS = {ext: fmt for fmt, ext in _FORMAT_EXTENSIONS.items()}


@dataclass
class GeneratedCorpus:
    """Raw documents plus their ground truth, before parsing."""

    raw_documents: List[RawDocument]
    gold_entries: Set[GoldEntry]

    @property
    def n_documents(self) -> int:
        return len(self.raw_documents)

    def gold_by_document(self) -> Dict[str, Set[Tuple[str, ...]]]:
        """Ground truth keyed by document name (the format gold labels expect)."""
        result: Dict[str, Set[Tuple[str, ...]]] = {}
        for document_name, entity_tuple in self.gold_entries:
            result.setdefault(document_name, set()).add(entity_tuple)
        return result

    def gold_tuples(self) -> Set[Tuple[str, ...]]:
        """Document-independent entity tuples (the KB-comparison granularity)."""
        return {entity_tuple for _, entity_tuple in self.gold_entries}

    def write_to_dir(self, path: "os.PathLike") -> None:
        """Persist this corpus as a corpus directory (see :func:`write_corpus_dir`)."""
        write_corpus_dir(self, path)


@dataclass
class DatasetSpec:
    """One ready-to-run domain: corpus, schema and user inputs.

    ``labeling_functions`` is the full pool; the supervision ablation
    (Figure 8) partitions it by each LF's ``modality`` tag, and the user-study
    simulation (Figure 9) releases LFs from the pool over time.
    """

    name: str
    description: str
    format: str
    schema: RelationSchema
    corpus: GeneratedCorpus
    matchers: Dict[str, Matcher]
    labeling_functions: List[LabelingFunction]
    throttlers: List[Throttler] = field(default_factory=list)
    _parsed_documents: Optional[List[Document]] = field(default=None, repr=False)

    # ------------------------------------------------------------------ sugar
    def parse_documents(self, parser: Optional[CorpusParser] = None) -> List[Document]:
        """Parse (and cache) the corpus into data-model documents."""
        if self._parsed_documents is None:
            parser = parser or CorpusParser()
            self._parsed_documents = parser.parse(self.corpus.raw_documents)
        return self._parsed_documents

    @property
    def gold_entries(self) -> Set[GoldEntry]:
        return self.corpus.gold_entries

    def labeling_functions_by_modality(self, modalities: Sequence[str]) -> List[LabelingFunction]:
        """Subset of the LF pool whose modality tag is in ``modalities``."""
        wanted = {m.lower() for m in modalities}
        return [lf for lf in self.labeling_functions if lf.modality.lower() in wanted]

    @property
    def textual_labeling_functions(self) -> List[LabelingFunction]:
        return self.labeling_functions_by_modality(["textual"])

    @property
    def metadata_labeling_functions(self) -> List[LabelingFunction]:
        """Structural + tabular + visual LFs (the paper's "metadata" LFs, Figure 8)."""
        return self.labeling_functions_by_modality(["structural", "tabular", "visual"])

    def summary(self) -> Dict[str, object]:
        """The Table 1 row for this dataset."""
        total_chars = sum(len(raw.content) for raw in self.corpus.raw_documents)
        return {
            "dataset": self.name,
            "size_chars": total_chars,
            "n_docs": self.corpus.n_documents,
            "n_gold_entries": len(self.corpus.gold_entries),
            "format": self.format,
        }


# --------------------------------------------------------- corpus directories
def document_filename(raw: RawDocument) -> str:
    """Corpus-relative file path for one raw document (``docs/<name><ext>``)."""
    extension = _FORMAT_EXTENSIONS.get(raw.format.lower(), ".txt")
    return f"docs/{raw.name}{extension}"


def write_corpus_dir(corpus: GeneratedCorpus, path: "os.PathLike") -> None:
    """Write a corpus to disk in the streaming pipeline's input format.

    Layout::

        <path>/
          corpus.json        # document order, names, formats, metadata
          gold.json          # [[document name, [entity, ...]], ...] (optional)
          docs/<name>.html   # one file per raw document (.pdf.html / .xml)

    ``corpus.json`` fixes the document *order* (corpus order determines shard
    membership), so a re-read partitions identically.
    """
    root = Path(path)
    (root / "docs").mkdir(parents=True, exist_ok=True)
    records = []
    used_paths: Set[str] = set()
    for position, raw in enumerate(corpus.raw_documents):
        if raw.path:
            # Explicit paths are the caller's unique keys — a duplicate would
            # silently overwrite another document's content, so refuse it.
            if raw.path in used_paths:
                raise ValueError(
                    f"Duplicate corpus-relative path {raw.path!r}; "
                    "paths must be unique within a corpus"
                )
            relative = raw.path
        else:
            relative = document_filename(raw)
            if relative in used_paths:
                # Same-name documents are legitimate (that is the whole point
                # of path-keyed stable ids); disambiguate the generated
                # filename deterministically by corpus position, re-checking
                # until unique (a raw literally named "x__0003" could collide
                # with the generated suffix).
                stem, dot, extension = relative.partition(".")
                relative = f"{stem}__{position:04d}{dot}{extension}"
                salt = 0
                while relative in used_paths:
                    salt += 1
                    relative = f"{stem}__{position:04d}_{salt}{dot}{extension}"
        used_paths.add(relative)
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(raw.content)
        records.append(
            {
                "path": relative,
                "name": raw.name,
                "format": raw.format,
                "metadata": dict(raw.metadata),
            }
        )
    (root / "corpus.json").write_text(
        json.dumps({"schema_version": 1, "documents": records}, indent=2)
    )
    gold = sorted(
        [doc_name, list(entity_tuple)] for doc_name, entity_tuple in corpus.gold_entries
    )
    (root / "gold.json").write_text(json.dumps(gold, indent=2))


def corpus_dir_records(path: "os.PathLike") -> List[Dict[str, object]]:
    """The document records of a corpus directory, in corpus order.

    Each record has ``path`` (corpus-relative), ``name``, ``format`` and
    ``metadata`` — everything about a document except its content.  With a
    ``corpus.json`` manifest, records come back in its recorded order;
    without one, ``docs/`` is globbed and sorted by relative path, with the
    format inferred from the longest matching extension.  Both orders are
    deterministic, which is what makes shard partitioning stable across runs
    (the resume guarantee).
    """
    root = Path(path)
    manifest_path = root / "corpus.json"
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
        return [
            {
                "path": record["path"],
                "name": record["name"],
                "format": record["format"],
                "metadata": dict(record.get("metadata", {})),
            }
            for record in manifest["documents"]
        ]
    docs_root = root / "docs"
    if not docs_root.is_dir():
        raise FileNotFoundError(
            f"{root} is not a corpus directory (no corpus.json and no docs/)"
        )
    # Longest extension first: ".pdf.html" must win over its ".html" suffix.
    extensions = sorted(_EXTENSION_FORMATS, key=len, reverse=True)
    records: List[Dict[str, object]] = []
    for file_path in sorted(docs_root.rglob("*")):
        if not file_path.is_file():
            continue
        fmt, name = "html", file_path.name
        for extension in extensions:
            if file_path.name.endswith(extension):
                fmt = _EXTENSION_FORMATS[extension]
                name = file_path.name[: -len(extension)]
                break
        records.append(
            {
                "path": file_path.relative_to(root).as_posix(),
                "name": name,
                "format": fmt,
                "metadata": {},
            }
        )
    return records


def load_record_document(path: "os.PathLike", record: Dict[str, object]) -> RawDocument:
    """Materialize one document record (reads its file content)."""
    relative = str(record["path"])
    return RawDocument(
        name=str(record["name"]),
        content=(Path(path) / relative).read_text(),
        format=str(record["format"]),
        metadata=dict(record.get("metadata", {})),  # type: ignore[arg-type]
        path=relative,
    )


def iter_corpus_dir(path: "os.PathLike") -> Iterator[RawDocument]:
    """Stream a corpus directory's documents one at a time, in corpus order.

    Only one document's content is materialized at a time — the loader the
    streaming pipeline uses to content-address shards without holding the
    whole corpus's text in memory.
    """
    for record in corpus_dir_records(path):
        yield load_record_document(path, record)


def corpus_dir_gold(path: "os.PathLike") -> Set[GoldEntry]:
    """The ``gold.json`` ground truth of a corpus directory (empty if absent)."""
    gold_path = Path(path) / "gold.json"
    if not gold_path.exists():
        return set()
    return {
        (doc_name, tuple(entities))
        for doc_name, entities in json.loads(gold_path.read_text())
    }


def read_corpus_dir(path: "os.PathLike") -> GeneratedCorpus:
    """Load a corpus directory eagerly (all documents plus gold).

    Convenience wrapper over :func:`iter_corpus_dir`/:func:`corpus_dir_gold`;
    the streaming pipeline uses the lazy forms instead.
    """
    return GeneratedCorpus(
        raw_documents=list(iter_corpus_dir(path)),
        gold_entries=corpus_dir_gold(path),
    )
