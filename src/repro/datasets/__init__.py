"""Synthetic corpora for the paper's four evaluation domains.

The paper evaluates on ELECTRONICS (PDF transistor datasheets), ADVERTISEMENTS
(HTML webpages), PALEONTOLOGY (PDF journal articles) and GENOMICS (XML papers).
Those corpora are proprietary or impractically large, so each module here
generates a synthetic corpus with the same *shape* — where the information
lives (headers, tables, captions, free text), which modalities express the
relations, how much format/stylistic variety there is — together with ground
truth, matchers, throttlers and a pool of labeling functions tagged by modality
(see DESIGN.md §2 for the substitution rationale).

Every domain exposes a :class:`~repro.datasets.base.DatasetSpec` via a
``build_*_dataset(n_docs, seed)`` function, and :func:`load_dataset` dispatches
by name.
"""

from repro.datasets.base import DatasetSpec, GeneratedCorpus
from repro.datasets.electronics import build_electronics_dataset
from repro.datasets.advertisements import build_advertisements_dataset
from repro.datasets.paleontology import build_paleontology_dataset
from repro.datasets.genomics import build_genomics_dataset
from repro.datasets.existing_kbs import build_existing_kb

_BUILDERS = {
    "electronics": build_electronics_dataset,
    "advertisements": build_advertisements_dataset,
    "paleontology": build_paleontology_dataset,
    "genomics": build_genomics_dataset,
}


def load_dataset(name: str, n_docs: int = 20, seed: int = 0) -> DatasetSpec:
    """Build one of the four domains by name."""
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(f"Unknown dataset {name!r}; choose from {sorted(_BUILDERS)}")
    return _BUILDERS[key](n_docs=n_docs, seed=seed)


__all__ = [
    "DatasetSpec",
    "GeneratedCorpus",
    "build_advertisements_dataset",
    "build_electronics_dataset",
    "build_existing_kb",
    "build_genomics_dataset",
    "build_paleontology_dataset",
    "load_dataset",
]
