"""Seeded, deterministic fault injection: the chaos harness of the test suite.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries —
*which* fault, *where* (a path substring for IO faults), *how many times* —
activated around a run with :func:`activate`.  Production code carries three
tiny hook points that consult the active plan:

* :func:`repro.storage.atomic.atomic_write` calls :func:`on_durable_write`
  between the temp-file fsync and the rename — the exact window where torn
  writes, bit rot and transient ``EIO``/``ENOSPC`` strike real systems.  A
  matching spec either corrupts the temp file in place (``torn_write``,
  ``bit_flip`` — the rename then publishes the corrupt bytes, just like a
  misbehaving disk) or raises a transient :class:`OSError`.
* :func:`repro.engine.pool._worker_loop` calls :func:`on_worker_task`
  before each task — a matching ``worker_kill`` spec SIGKILLs the worker
  mid-task, a ``worker_hang`` spec blocks it long enough for the pool's
  deadline watchdog to reap it.

Determinism across processes
----------------------------
Pool workers are forked, so in-memory counters would reset on every respawn
and a "fire once" spec could fire again from the respawned worker.  Firing
counts therefore live on the filesystem: each spec claims its next firing by
creating a marker file with ``O_CREAT | O_EXCL`` under the plan's state
directory — atomic and exactly-once across any number of processes.  Bit-flip
positions derive from ``(seed, spec index, firing index)``, so a plan replays
identically run over run.

Every firing appends one JSON line to ``events.jsonl`` (``O_APPEND``, one
write syscall — atomic for these sizes), which is how the chaos suite asserts
that every injected fault actually fired and was *detected* rather than
silently absorbed.

The hooks are no-ops (one ``is None`` check) when no plan is active, so the
harness costs nothing in production.
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
import random
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

#: Fault kinds injected at the durable-write hook (match against the target
#: path) and at the worker-task hook (match ignored).
WRITE_FAULTS = ("torn_write", "bit_flip", "io_error")
WORKER_FAULTS = ("worker_kill", "worker_hang")


@dataclass
class FaultSpec:
    """One declarative fault: what to inject, where, and how many times.

    Parameters
    ----------
    kind:
        One of :data:`WRITE_FAULTS` / :data:`WORKER_FAULTS`.
    match:
        Substring of the target path that arms write faults (e.g.
        ``"labels.npy"``); ignored by worker faults.
    times:
        Maximum firings across *all* processes sharing the plan.
    skip:
        Arm only after this many matching calls have passed (lets a fault
        target the Nth write of a file, or a later pool task so the
        autotuner EMA is warm).
    error_errno:
        For ``io_error``: the errno of the injected :class:`OSError`.
    hang_seconds:
        For ``worker_hang``: how long the worker blocks (pick something far
        beyond the watchdog deadline; the watchdog kills the worker first).
    """

    kind: str
    match: str = ""
    times: int = 1
    skip: int = 0
    error_errno: int = errno.EIO
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in WRITE_FAULTS + WORKER_FAULTS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.times < 1:
            raise ValueError("times must be at least 1")
        if self.skip < 0:
            raise ValueError("skip must be non-negative")


class FaultPlan:
    """A set of fault specs with cross-process exactly-once accounting.

    ``state_dir`` hosts the marker files and the event log; it must be
    shared by (inherited into) every process participating in the run —
    the streaming parent and its forked pool workers.
    """

    def __init__(
        self, specs: Sequence[FaultSpec], state_dir: os.PathLike, seed: int = 0
    ) -> None:
        self.specs = list(specs)
        self.state_dir = Path(state_dir)
        self.seed = seed
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._events_path = self.state_dir / "events.jsonl"

    # ------------------------------------------------------------ accounting
    def _claim(self, spec_index: int) -> Optional[int]:
        """Atomically claim this spec's next call slot; firing index or None.

        Each matching *call* claims one monotonically increasing slot via
        ``O_CREAT | O_EXCL`` marker files — exactly-once across processes.
        Slots below ``skip`` pass through unharmed; slots in
        ``[skip, skip + times)`` fire; later slots are exhausted.
        """
        spec = self.specs[spec_index]
        for slot in range(spec.skip + spec.times + 64):
            marker = self.state_dir / f"spec{spec_index}-call{slot}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            if slot < spec.skip:
                return None
            if slot < spec.skip + spec.times:
                return slot - spec.skip
            return None
        return None  # pragma: no cover - defensive: far past exhaustion

    def _record(self, spec_index: int, firing: int, target: str) -> None:
        spec = self.specs[spec_index]
        line = (
            json.dumps(
                {
                    "kind": spec.kind,
                    "match": spec.match,
                    "spec": spec_index,
                    "firing": firing,
                    "target": target,
                    "pid": os.getpid(),
                },
                sort_keys=True,
            )
            + "\n"
        )
        fd = os.open(self._events_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def events(self) -> List[Dict[str, Any]]:
        """Every firing recorded so far (all processes), in append order."""
        if not self._events_path.exists():
            return []
        return [
            json.loads(line)
            for line in self._events_path.read_text().splitlines()
            if line.strip()
        ]

    def fired(self, kind: Optional[str] = None) -> int:
        """How many faults have fired (optionally of one kind)."""
        return sum(1 for e in self.events() if kind is None or e["kind"] == kind)

    # ----------------------------------------------------------------- hooks
    def on_durable_write(self, tmp_path: Path, target: Path) -> None:
        """Hook between temp-file fsync and rename (see module docstring)."""
        name = str(target)
        for spec_index, spec in enumerate(self.specs):
            if spec.kind not in WRITE_FAULTS or spec.match not in name:
                continue
            firing = self._claim(spec_index)
            if firing is None:
                continue
            self._record(spec_index, firing, name)
            if spec.kind == "io_error":
                raise OSError(spec.error_errno, f"injected {spec.kind} for {name}")
            payload = tmp_path.read_bytes()
            if spec.kind == "torn_write":
                corrupted = payload[: len(payload) // 2]
            else:  # bit_flip
                rng = random.Random(f"{self.seed}:{spec_index}:{firing}")
                position = rng.randrange(len(payload)) if payload else 0
                corrupted = bytearray(payload or b"\0")
                corrupted[position] ^= 0x40
                corrupted = bytes(corrupted)
            # Plain write, not atomic_write: this *is* the disk misbehaving.
            tmp_path.write_bytes(corrupted)

    def on_worker_task(self) -> None:
        """Hook at the top of each pool-worker task."""
        for spec_index, spec in enumerate(self.specs):
            if spec.kind not in WORKER_FAULTS:
                continue
            firing = self._claim(spec_index)
            if firing is None:
                continue
            self._record(spec_index, firing, f"worker-{os.getpid()}")
            if spec.kind == "worker_kill":
                os.kill(os.getpid(), signal.SIGKILL)
            else:  # worker_hang
                time.sleep(spec.hang_seconds)


#: The process-wide active plan (inherited by forked workers).
_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently activated plan, or None (the common, zero-cost case)."""
    return _ACTIVE


@contextlib.contextmanager
def activate(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` as the process-wide active plan for the block.

    Activate *before* starting a run whose forked pool workers should
    inherit the plan; the previous plan (usually None) is restored on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous
