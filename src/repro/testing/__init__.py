"""Deterministic fault injection for chaos testing (:mod:`repro.testing.faults`)."""
