"""Mention-level feature caching (paper Appendix C.1).

With document-level context, one mention participates in many candidates; naive
featurization recomputes that mention's unary features once per candidate.  The
paper caches mention features for the duration of one document ("All features
are cached until all candidates in a document are fully featurized, after which
the cache is flushed"), reporting >100× featurization speed-ups for ~10% extra
memory.  This module implements exactly that scheme, plus hit/miss counters so
the Appendix-C benchmark can report the effect.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.candidates.mentions import Mention


class MentionFeatureCache:
    """Per-document cache of unary mention features.

    The cache key is the ``(extractor name, mention stable id)`` tuple — a
    tuple, not a formatted string, so a lookup hashes two existing objects
    instead of building a throwaway f-string — and the value is the computed
    feature-name list.  ``flush`` must be called after each document (the
    extractor/featurizer does this).

    When the cache is disabled it is transparent: it neither stores nor
    counts, so hit/miss statistics always describe actual cache traffic (a
    disabled cache reporting misses would skew the Appendix-C benchmark's
    hit-rate column).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._store: Dict[Tuple[str, str], List[str]] = {}
        self.hits = 0
        self.misses = 0

    def get_or_compute(
        self,
        mention: Mention,
        extractor_name: str,
        compute: Callable[[Mention], List[str]],
    ) -> List[str]:
        """Return cached features for (mention, extractor), computing on a miss."""
        if not self.enabled:
            return compute(mention)
        key = (extractor_name, mention.stable_id)
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        features = compute(mention)
        self._store[key] = features
        return features

    def flush(self) -> None:
        """Drop all cached entries (called once per document)."""
        self._store.clear()

    @property
    def size(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
