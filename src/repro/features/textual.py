"""Textual features: word, lemma, POS and NER context of each mention.

These features describe the mention itself and a small window of surrounding
words in its sentence.  They are the modality classical KBC systems rely on; in
Fonduer they complement the learned Bi-LSTM representation and serve as the
textual component of the human-tuned feature baseline (Table 4).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.candidates.mentions import Candidate, Mention
from repro.data_model.context import Span

_WINDOW = 3


def _window_words(span: Span, direction: int, size: int = _WINDOW) -> List[str]:
    sentence = span.sentence
    if direction < 0:
        start = max(0, span.word_start - size)
        return sentence.words[start : span.word_start]
    end = min(len(sentence.words), span.word_end + size)
    return sentence.words[span.word_end : end]


def mention_textual_features(mention: Mention) -> Iterator[str]:
    """Unary textual features of a single mention."""
    span = mention.span
    prefix = f"TXT_{mention.entity_type.upper()}"

    for word in span.words:
        yield f"{prefix}_WORD_{word.lower()}"
    for lemma in span.lemmas:
        yield f"{prefix}_LEMMA_{lemma}"
    for tag in span.pos_tags:
        yield f"{prefix}_POS_{tag}"
    for tag in span.ner_tags:
        if tag != "O":
            yield f"{prefix}_NER_{tag}"

    yield f"{prefix}_LENGTH_{len(span)}"
    text = span.text()
    if text.isupper():
        yield f"{prefix}_SHAPE_ALLCAPS"
    if any(ch.isdigit() for ch in text):
        yield f"{prefix}_SHAPE_HASDIGIT"
    if text.replace(".", "", 1).replace("-", "", 1).isdigit():
        yield f"{prefix}_SHAPE_NUMERIC"

    for word in _window_words(span, direction=-1):
        yield f"{prefix}_LEFT_{word.lower()}"
    for word in _window_words(span, direction=+1):
        yield f"{prefix}_RIGHT_{word.lower()}"


def candidate_textual_features(candidate: Candidate) -> Iterator[str]:
    """Binary (cross-mention) textual features of a candidate."""
    spans = candidate.spans
    if len(spans) >= 2:
        first, second = spans[0], spans[1]
        if first.sentence is second.sentence:
            yield "TXT_SAME_SENTENCE"
            distance = abs(first.word_start - second.word_start)
            yield f"TXT_WORD_DISTANCE_{min(distance, 10)}"
            between_start = min(first.word_end, second.word_end)
            between_end = max(first.word_start, second.word_start)
            for word in first.sentence.words[between_start:between_end]:
                yield f"TXT_BETWEEN_{word.lower()}"
        else:
            yield "TXT_DIFFERENT_SENTENCE"
