"""Multimodal featurization (paper Section 4.2 and Appendix B).

Fonduer augments the textual representation learned by its Bi-LSTM with a
library of dynamically generated features from the structural, tabular and
visual modalities of the data model.  Features are strings ("feature templates"
plus values) mapped to a binary indicator per candidate; they are stored in the
sparse ``Features`` matrix (list-of-lists representation, Appendix C.2).

* :mod:`repro.features.textual` — unigram/lemma/POS/NER context features (used
  by the human-tuned baseline and by the logistic head of the model).
* :mod:`repro.features.structural` — HTML tag, attribute, ancestor-path and
  common-ancestor features.
* :mod:`repro.features.tabular` — cell/row/column coordinates, spans, headers,
  same-row/column/cell relations, tabular distances.
* :mod:`repro.features.visual` — page, alignment and bounding-box features.
* :mod:`repro.features.featurizer` — drives the per-modality extractors over
  candidates, with mention-level caching (:mod:`repro.features.cache`,
  Appendix C.1) and modality on/off switches for the Figure 7 ablation.
"""

from repro.features.featurizer import FeatureConfig, Featurizer
from repro.features.cache import MentionFeatureCache

__all__ = ["FeatureConfig", "Featurizer", "MentionFeatureCache"]
