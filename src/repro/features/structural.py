"""Structural features: signals intrinsic to a document's structure.

Implements the structural rows of the paper's extended feature library
(Appendix B, Table 7): HTML tag of the mention, HTML attributes, parent tag,
sibling tags, node position, ancestor tag/class/id sequences, plus the binary
common-ancestor and lowest-common-ancestor-depth features.
"""

from __future__ import annotations

from typing import Iterator

from repro.candidates.mentions import Candidate, Mention
from repro.data_model.context import Context, Sentence
from repro.data_model.index import active_index
from repro.data_model.traversal import lowest_common_ancestor, lowest_common_ancestor_depth


def _html_tag(context: Context) -> str:
    return str(context.attributes.get("html_tag", "")) if context is not None else ""


def mention_structural_features(mention: Mention) -> Iterator[str]:
    """Unary structural features of a single mention (Table 7, structural rows)."""
    span = mention.span
    sentence = span.sentence
    prefix = f"STR_{mention.entity_type.upper()}"

    index = active_index(sentence)
    if index is not None:
        sid = index.sentence_id(sentence)
        if sid is not None:
            # All structural signals are per-sentence; the index memoizes the
            # suffix list once and every mention in the sentence reuses it.
            for suffix in index.structural_suffixes(sid):
                yield prefix + suffix
            return

    if sentence.html_tag:
        yield f"{prefix}_TAG_{sentence.html_tag}"
    for key, value in sorted(sentence.html_attrs.items()):
        if key in ("style", "class", "id", "font-family", "font-size"):
            yield f"{prefix}_HTML_ATTR_{key}:{value}"

    parent = sentence.parent
    if parent is not None:
        parent_tag = _html_tag(parent)
        if parent_tag:
            yield f"{prefix}_PARENT_TAG_{parent_tag}"
        position = getattr(sentence, "position", 0)
        yield f"{prefix}_NODE_POS_{position}"
        siblings = [c for c in parent.children if isinstance(c, Sentence)]
        index = siblings.index(sentence) if sentence in siblings else -1
        if index > 0:
            prev_tag = siblings[index - 1].html_tag
            if prev_tag:
                yield f"{prefix}_PREV_SIB_TAG_{prev_tag}"
        if 0 <= index < len(siblings) - 1:
            next_tag = siblings[index + 1].html_tag
            if next_tag:
                yield f"{prefix}_NEXT_SIB_TAG_{next_tag}"

    ancestor_tags = []
    ancestor_classes = []
    ancestor_ids = []
    for ancestor in reversed(sentence.ancestors()):
        tag = _html_tag(ancestor)
        if tag:
            ancestor_tags.append(tag)
        attrs = ancestor.attributes.get("html_attrs", {})
        if isinstance(attrs, dict):
            if attrs.get("class"):
                ancestor_classes.append(str(attrs["class"]))
            if attrs.get("id"):
                ancestor_ids.append(str(attrs["id"]))
    if ancestor_tags:
        yield f"{prefix}_ANCESTOR_TAG_{'_'.join(ancestor_tags)}"
    for class_name in ancestor_classes:
        yield f"{prefix}_ANCESTOR_CLASS_{class_name}"
    for element_id in ancestor_ids:
        yield f"{prefix}_ANCESTOR_ID_{element_id}"


def candidate_structural_features(candidate: Candidate) -> Iterator[str]:
    """Binary structural features relating the candidate's mentions."""
    spans = candidate.spans
    if len(spans) < 2:
        return
    first, second = spans[0], spans[1]
    index = active_index(first.sentence)
    if index is not None:
        sid_a = index.sentence_id(first.sentence)
        sid_b = index.sentence_id(second.sentence)
        if sid_a is not None and sid_b is not None:
            # Both features depend only on the sentence pair; the index
            # memoizes them across all candidates sharing that pair.
            yield from index.structural_pair_features(sid_a, sid_b)
            return
    lca = lowest_common_ancestor(first, second)
    if lca is not None:
        tag = _html_tag(lca) or type(lca).__name__.lower()
        yield f"STR_COMMON_ANCESTOR_{tag}"
    depth = lowest_common_ancestor_depth(first, second)
    yield f"STR_LOWEST_ANCESTOR_DEPTH_{min(depth, 10)}"
