"""The multimodal featurizer: candidates → sparse Features matrix.

Drives the per-modality feature extractors over candidates, with:

* modality on/off switches (the Figure 7 ablation: "No Textual", "No
  Structural", "No Tabular", "No Visual");
* mention-level caching within each document (Appendix C.1);
* output into either sparse representation (LIL by default, per Appendix C.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.candidates.mentions import Candidate
from repro.data_model.index import active_index, traversal_mode
from repro.features.cache import MentionFeatureCache
from repro.features.structural import candidate_structural_features, mention_structural_features
from repro.features.tabular import candidate_tabular_features, mention_tabular_features
from repro.features.textual import candidate_textual_features, mention_textual_features
from repro.features.visual import candidate_visual_features, mention_visual_features
from repro.storage.sparse import AnnotationMatrix, CSRBuilder, CSRMatrix, LILMatrix


@dataclass
class FeatureConfig:
    """Which modalities to featurize, plus the physical-representation knobs.

    ``use_cache`` is the paper's per-document mention cache (Appendix C.1);
    ``use_index`` selects the columnar :class:`DocumentIndex` fast path for
    the traversal helpers the extractors call (``False`` = legacy object
    walks; both produce byte-identical features).
    """

    textual: bool = True
    structural: bool = True
    tabular: bool = True
    visual: bool = True
    use_cache: bool = True
    use_index: bool = True

    def enabled_modalities(self) -> List[str]:
        return [
            name
            for name, enabled in (
                ("textual", self.textual),
                ("structural", self.structural),
                ("tabular", self.tabular),
                ("visual", self.visual),
            )
            if enabled
        ]

    @classmethod
    def all_modalities(cls) -> "FeatureConfig":
        return cls()

    @classmethod
    def without(cls, modality: str) -> "FeatureConfig":
        """Config with one modality disabled (the Figure 7 ablation points)."""
        config = cls()
        if not hasattr(config, modality):
            raise ValueError(f"Unknown modality {modality!r}")
        setattr(config, modality, False)
        return config

    @classmethod
    def only(cls, modality: str) -> "FeatureConfig":
        config = cls(textual=False, structural=False, tabular=False, visual=False)
        if not hasattr(config, modality):
            raise ValueError(f"Unknown modality {modality!r}")
        setattr(config, modality, True)
        return config


_MENTION_EXTRACTORS = {
    "textual": mention_textual_features,
    "structural": mention_structural_features,
    "tabular": mention_tabular_features,
    "visual": mention_visual_features,
}

_CANDIDATE_EXTRACTORS = {
    "textual": candidate_textual_features,
    "structural": candidate_structural_features,
    "tabular": candidate_tabular_features,
    "visual": candidate_visual_features,
}


class Featurizer:
    """Generate the extended feature library for candidates.

    The featurizer processes candidates grouped by document (documents are
    atomic units, as in the paper), caching unary mention features within each
    document and flushing the cache when the document changes.
    """

    def __init__(self, config: Optional[FeatureConfig] = None) -> None:
        self.config = config or FeatureConfig()
        self.cache = MentionFeatureCache(enabled=self.config.use_cache)

    # ------------------------------------------------------------------ API
    def features_for_candidate(
        self,
        candidate: Candidate,
        cache: Optional[MentionFeatureCache] = None,
    ) -> List[str]:
        """All feature strings of one candidate under the current config.

        ``cache`` overrides the featurizer's shared mention cache; the engine
        passes a per-document cache so featurization can run concurrently.
        """
        cache = cache if cache is not None else self.cache
        with traversal_mode(self.config.use_index):
            return self._features_for_candidate(candidate, cache)

    def _features_for_candidate(
        self, candidate: Candidate, cache: MentionFeatureCache
    ) -> List[str]:
        features: List[str] = []
        for modality in self.config.enabled_modalities():
            mention_extractor = _MENTION_EXTRACTORS[modality]
            for mention in candidate.mentions:
                features.extend(
                    cache.get_or_compute(
                        mention,
                        modality,
                        lambda m, extractor=mention_extractor: list(extractor(m)),
                    )
                )
            features.extend(_CANDIDATE_EXTRACTORS[modality](candidate))
        return features

    def _warm_document_memos(self, block: Sequence[Candidate]) -> None:
        """Pre-fill the index's pair-feature memos for one document's block.

        One vectorized interval scan over *all* mention sentence pairs of the
        document (see ``DocumentIndex.precompute_pair_features``) replaces
        the per-candidate branch arithmetic; the extractors afterwards hit
        warm memos.  A no-op on the legacy path or for unindexed spans.
        """
        if not self.config.tabular:
            return
        index = None
        pairs = []
        for candidate in block:
            spans = candidate.spans
            if len(spans) < 2:
                continue
            if index is None:
                index = active_index(spans[0].sentence)
                if index is None:
                    return
            sid_a = index.sentence_id(spans[0].sentence)
            sid_b = index.sentence_id(spans[1].sentence)
            if sid_a is not None and sid_b is not None:
                pairs.append((sid_a, sid_b))
        if index is not None and pairs:
            index.precompute_pair_features(pairs)

    def _document_grouped(
        self,
        candidates: Sequence[Candidate],
        cache: MentionFeatureCache,
    ):
        """Yield (candidate, features) with per-document cache flushes.

        Candidates are processed grouped by document so the mention cache
        stays small and is flushed between documents (Appendix C.1); each
        document's pair-feature memos are warmed in one vectorized pass
        before its candidates are featurized.
        """
        n = len(candidates)
        start = 0
        while start < n:
            document = candidates[start].document
            document_id = id(document) if document is not None else None
            end = start + 1
            while end < n:
                other = candidates[end].document
                if (id(other) if other is not None else None) != document_id:
                    break
                end += 1
            cache.flush()
            block = candidates[start:end]
            self._warm_document_memos(block)
            for candidate in block:
                yield candidate, self._features_for_candidate(candidate, cache)
            start = end
        cache.flush()

    def feature_rows(
        self,
        candidates: Sequence[Candidate],
        cache: Optional[MentionFeatureCache] = None,
    ) -> List[Dict[str, float]]:
        """Per-candidate ``{feature: 1.0}`` rows, document-grouped and cached.

        This is the single featurization code path: the sparse-matrix APIs
        below and the pipeline/engine all consume these rows.
        """
        cache = cache if cache is not None else self.cache
        with traversal_mode(self.config.use_index):
            return [
                {name: 1.0 for name in features}
                for _, features in self._document_grouped(candidates, cache)
            ]

    def featurize(
        self,
        candidates: Sequence[Candidate],
        matrix: Optional[AnnotationMatrix] = None,
    ) -> AnnotationMatrix:
        """Featurize candidates into a sparse Features matrix (binary indicators)."""
        matrix = matrix if matrix is not None else LILMatrix()
        for candidate, row in zip(candidates, self.feature_rows(candidates)):
            for feature, value in row.items():
                matrix.set(candidate.id, feature, value)
        return matrix

    def featurize_csr(
        self,
        candidates: Sequence[Candidate],
        cache: Optional[MentionFeatureCache] = None,
    ) -> CSRMatrix:
        """Featurize candidates straight into a frozen CSR matrix.

        Feature names stream into the :class:`CSRBuilder` as they are
        produced — no intermediate per-row dicts — with the same
        first-occurrence deduplication the dict rows apply.  Rows are keyed
        by candidate id, in candidate order.
        """
        cache = cache if cache is not None else self.cache
        builder = CSRBuilder()
        with traversal_mode(self.config.use_index):
            for candidate, features in self._document_grouped(candidates, cache):
                builder.add_indicator_row(candidate.id, features)
        return builder.build()
