"""Tabular features: signals from the grid structure of tables.

Implements the tabular rows of the paper's extended feature library
(Appendix B, Table 7): cell n-grams, row/column numbers and spans, row/column
header n-grams, same-row/column n-grams, and the binary same-table / same-cell
/ distance features between mentions.
"""

from __future__ import annotations

from typing import Iterator

from repro.candidates.mentions import Candidate, Mention
from repro.data_model.index import active_index
from repro.data_model.traversal import (
    cell_ngrams,
    column_header_ngrams,
    column_ngrams,
    get_cell,
    manhattan_distance,
    row_header_ngrams,
    row_ngrams,
    same_cell,
    same_column,
    same_row,
    same_sentence,
    same_table,
)

_MAX_NGRAMS_PER_GROUP = 10


def mention_tabular_features(mention: Mention) -> Iterator[str]:
    """Unary tabular features of a single mention (Table 7, tabular rows)."""
    span = mention.span
    # get_cell resolves through the columnar index (O(1)) when available and
    # falls back to the ancestor walk on the legacy path.
    cell = get_cell(span)
    if cell is None:
        return
    prefix = f"TAB_{mention.entity_type.upper()}"

    yield f"{prefix}_ROW_NUM_{cell.row_start}"
    yield f"{prefix}_COL_NUM_{cell.col_start}"
    yield f"{prefix}_ROW_SPAN_{cell.row_span}"
    yield f"{prefix}_COL_SPAN_{cell.col_span}"
    if cell.is_header:
        yield f"{prefix}_IS_HEADER"

    for gram in cell_ngrams(span)[:_MAX_NGRAMS_PER_GROUP]:
        yield f"{prefix}_CELL_{gram}"
    for gram in row_header_ngrams(span)[:_MAX_NGRAMS_PER_GROUP]:
        yield f"{prefix}_ROW_HEAD_{gram}"
    for gram in column_header_ngrams(span)[:_MAX_NGRAMS_PER_GROUP]:
        yield f"{prefix}_COL_HEAD_{gram}"
    for gram in row_ngrams(span)[:_MAX_NGRAMS_PER_GROUP]:
        yield f"{prefix}_ROW_{gram}"
    for gram in column_ngrams(span)[:_MAX_NGRAMS_PER_GROUP]:
        yield f"{prefix}_COL_{gram}"


def candidate_tabular_features(candidate: Candidate) -> Iterator[str]:
    """Binary tabular features relating the candidate's mentions."""
    spans = candidate.spans
    if len(spans) < 2:
        return
    first, second = spans[0], spans[1]

    index = active_index(first.sentence)
    if index is not None:
        sid_a = index.sentence_id(first.sentence)
        sid_b = index.sentence_id(second.sentence)
        if sid_a is not None and sid_b is not None:
            # Containment/same-* checks are interval predicates over the
            # node-table geometry columns, memoized per sentence pair (and
            # usually pre-filled for the whole document at once by the
            # featurizer); only the span-level tail is computed per call.
            features, is_same_cell, is_same_sentence = index.tabular_pair_features(
                sid_a, sid_b
            )
            yield from features
            if is_same_cell:
                word_diff = abs(first.word_start - second.word_start)
                char_diff = abs(len(first.text()) - len(second.text()))
                yield f"TAB_WORD_DIFF_{min(word_diff, 20)}"
                yield f"TAB_CHAR_DIFF_{min(char_diff, 30)}"
                if is_same_sentence:
                    yield "TAB_SAME_PHRASE"
            return

    cell_a, cell_b = get_cell(first), get_cell(second)

    if cell_a is None and cell_b is None:
        return
    if cell_a is None or cell_b is None:
        yield "TAB_ONE_MENTION_TABULAR"
        return

    if same_table(first, second):
        yield "TAB_SAME_TABLE"
        row_diff = abs(cell_a.row_start - cell_b.row_start)
        col_diff = abs(cell_a.col_start - cell_b.col_start)
        yield f"TAB_SAME_TABLE_ROW_DIFF_{min(row_diff, 20)}"
        yield f"TAB_SAME_TABLE_COL_DIFF_{min(col_diff, 20)}"
        distance = manhattan_distance(first, second)
        if distance is not None:
            yield f"TAB_SAME_TABLE_MANHATTAN_DIST_{min(distance, 30)}"
        if same_row(first, second):
            yield "TAB_SAME_ROW"
        if same_column(first, second):
            yield "TAB_SAME_COL"
        if same_cell(first, second):
            yield "TAB_SAME_CELL"
            word_diff = abs(first.word_start - second.word_start)
            char_diff = abs(len(first.text()) - len(second.text()))
            yield f"TAB_WORD_DIFF_{min(word_diff, 20)}"
            yield f"TAB_CHAR_DIFF_{min(char_diff, 30)}"
            if same_sentence(first, second):
                yield "TAB_SAME_PHRASE"
    else:
        yield "TAB_DIFF_TABLE"
        row_diff = abs(cell_a.row_start - cell_b.row_start)
        col_diff = abs(cell_a.col_start - cell_b.col_start)
        yield f"TAB_DIFF_TABLE_ROW_DIFF_{min(row_diff, 20)}"
        yield f"TAB_DIFF_TABLE_COL_DIFF_{min(col_diff, 20)}"
        yield f"TAB_DIFF_TABLE_MANHATTAN_DIST_{min(row_diff + col_diff, 30)}"
