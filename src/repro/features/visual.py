"""Visual features: signals from the rendered layout of the document.

Implements the visual rows of the paper's extended feature library
(Appendix B, Table 7): aligned lemma n-grams, page number, same-page and the
horizontal/vertical alignment predicates between mentions (including
left/right/center border alignment).
"""

from __future__ import annotations

from typing import Iterator

from repro.candidates.mentions import Candidate, Mention
from repro.data_model.traversal import aligned_ngrams, get_bounding_box

_MAX_ALIGNED_NGRAMS = 10
_ALIGN_TOLERANCE = 4.0


def mention_visual_features(mention: Mention) -> Iterator[str]:
    """Unary visual features of a single mention (Table 7, visual rows)."""
    span = mention.span
    box = get_bounding_box(span)
    if box is None:
        return
    prefix = f"VIS_{mention.entity_type.upper()}"

    yield f"{prefix}_PAGE_{box.page}"
    # Coarse position-on-page bands capture "is a title/header" style signals.
    vertical_band = int(box.y0 // 100)
    yield f"{prefix}_YBAND_{vertical_band}"

    for gram in aligned_ngrams(span, axis="both", tolerance=_ALIGN_TOLERANCE)[:_MAX_ALIGNED_NGRAMS]:
        yield f"{prefix}_ALIGNED_{gram}"


def candidate_visual_features(candidate: Candidate) -> Iterator[str]:
    """Binary visual features relating the candidate's mentions."""
    spans = candidate.spans
    if len(spans) < 2:
        return
    first, second = spans[0], spans[1]
    box_a, box_b = get_bounding_box(first), get_bounding_box(second)
    if box_a is None or box_b is None:
        return

    if box_a.page == box_b.page:
        yield "VIS_SAME_PAGE"
        page_distance = 0
    else:
        page_distance = abs(box_a.page - box_b.page)
        yield f"VIS_PAGE_DIST_{min(page_distance, 10)}"

    if box_a.is_horizontally_aligned(box_b, _ALIGN_TOLERANCE):
        yield "VIS_HORZ_ALIGNED"
    if box_a.is_vertically_aligned(box_b, _ALIGN_TOLERANCE):
        yield "VIS_VERT_ALIGNED"
    if box_a.page == box_b.page:
        if abs(box_a.x0 - box_b.x0) <= _ALIGN_TOLERANCE:
            yield "VIS_VERT_ALIGNED_LEFT"
        if abs(box_a.x1 - box_b.x1) <= _ALIGN_TOLERANCE:
            yield "VIS_VERT_ALIGNED_RIGHT"
        if abs(box_a.center[0] - box_b.center[0]) <= _ALIGN_TOLERANCE:
            yield "VIS_VERT_ALIGNED_CENTER"
        vertical_gap = abs(box_a.center[1] - box_b.center[1])
        yield f"VIS_VERTICAL_GAP_BAND_{int(vertical_gap // 50)}"
