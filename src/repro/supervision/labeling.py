"""Labeling functions and the label-matrix applier.

A labeling function (LF) maps a candidate to +1 ("True"), -1 ("False") or
0 (abstain) — paper Section 3.2 ("Supervision") and Appendix A.1.  The applier
runs a set of LFs over all candidates and materializes the label matrix
Λ ∈ {-1, 0, +1}^{k×l}; during development the matrix uses the COO
representation so adding/removing an LF is cheap (Appendix C.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.candidates.mentions import Candidate
from repro.storage.sparse import AnnotationMatrix, COOMatrix

TRUE = 1
FALSE = -1
ABSTAIN = 0

_VALID_LABELS = {TRUE, FALSE, ABSTAIN}


@dataclass
class LabelingFunction:
    """A named labeling function with an optional modality tag.

    ``modality`` records which data modality the LF's logic relies on
    ("textual", "structural", "tabular", "visual" or "other"); the supervision
    ablation (Figure 8) and the user study (Figure 9, right) partition LFs by
    this tag.
    """

    name: str
    function: Callable[[Candidate], int]
    modality: str = "textual"

    def __call__(self, candidate: Candidate) -> int:
        label = int(self.function(candidate))
        if label not in _VALID_LABELS:
            raise ValueError(
                f"Labeling function {self.name!r} returned {label}; expected -1, 0 or +1"
            )
        return label


def labeling_function(name: Optional[str] = None, modality: str = "textual"):
    """Decorator turning a plain function into a :class:`LabelingFunction`.

    Example::

        @labeling_function(modality="visual")
        def lf_y_aligned(cand):
            return 1 if is_horizontally_aligned(cand[0].span, cand[1].span) else 0
    """

    def wrap(function: Callable[[Candidate], int]) -> LabelingFunction:
        return LabelingFunction(
            name=name or function.__name__,
            function=function,
            modality=modality,
        )

    return wrap


class LFApplier:
    """Apply labeling functions to candidates, producing the label matrix."""

    def __init__(self, lfs: Sequence[LabelingFunction]) -> None:
        if not lfs:
            raise ValueError("At least one labeling function is required")
        names = [lf.name for lf in lfs]
        if len(set(names)) != len(names):
            raise ValueError("Labeling function names must be unique")
        self.lfs = list(lfs)

    @property
    def lf_names(self) -> List[str]:
        return [lf.name for lf in self.lfs]

    @property
    def n_lfs(self) -> int:
        return len(self.lfs)

    def empty_dense(self) -> np.ndarray:
        """A zero-row dense label block (the Λ slice of a candidate-less document)."""
        return np.zeros((0, self.n_lfs), dtype=np.int8)

    def apply(
        self,
        candidates: Sequence[Candidate],
        matrix: Optional[AnnotationMatrix] = None,
    ) -> AnnotationMatrix:
        """Run all LFs over all candidates into a sparse label matrix.

        Abstains (0) are not stored — sparsity is what makes the COO/LIL
        representations worthwhile.
        """
        matrix = matrix if matrix is not None else COOMatrix()
        for candidate in candidates:
            for lf in self.lfs:
                label = lf(candidate)
                if label != ABSTAIN:
                    matrix.set(candidate.id, lf.name, float(label))
        return matrix

    def apply_dense(self, candidates: Sequence[Candidate]) -> np.ndarray:
        """Dense ``(n_candidates, n_lfs)`` label matrix in {-1, 0, +1}.

        Convenient for the label model and the analysis metrics; rows follow
        the order of ``candidates``.
        """
        dense = np.zeros((len(candidates), len(self.lfs)), dtype=np.int8)
        for row, candidate in enumerate(candidates):
            for column, lf in enumerate(self.lfs):
                dense[row, column] = lf(candidate)
        return dense
