"""Gold-label utilities.

Evaluation (and the user study's "Manual" arm) needs gold labels for
candidates: a candidate is a true relation mention exactly when the entity
tuple it asserts is in the dataset's ground-truth KB for its document.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

import numpy as np

from repro.candidates.mentions import Candidate

GoldTuples = Dict[str, Set[Tuple[str, ...]]]
"""Ground truth keyed by document name → set of normalized entity tuples."""


def gold_labels_for_candidates(
    candidates: Sequence[Candidate],
    gold: GoldTuples,
) -> np.ndarray:
    """Return gold labels in {-1, +1} for each candidate.

    A candidate is positive when its normalized entity tuple appears in the
    gold set of its own document (document-scoped matching mirrors how the
    paper's applications define correctness).
    """
    labels = np.empty(len(candidates), dtype=np.int8)
    for index, candidate in enumerate(candidates):
        document = candidate.document
        document_name = document.name if document is not None else ""
        doc_gold = gold.get(document_name, set())
        labels[index] = 1 if candidate.entity_tuple in doc_gold else -1
    return labels


def positive_fraction(labels: np.ndarray) -> float:
    """Fraction of positive labels — the class balance the throttler study tracks."""
    if labels.size == 0:
        return 0.0
    return float((labels == 1).mean())
