"""Labeling-function metrics for iterative development.

"To support efficient error analysis, Fonduer enables users to easily inspect
the resulting candidates and provides a set of labeling function metrics, such
as coverage, conflict, and overlap, which provide users with a rough assessment
of how to improve their LFs" (paper Section 3.3).

All functions accept a dense label matrix ``L`` of shape (n_candidates, n_lfs)
with values in {-1, 0, +1}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


def coverage(L: np.ndarray) -> np.ndarray:
    """Per-LF coverage: fraction of candidates the LF does not abstain on."""
    if L.size == 0:
        return np.zeros(L.shape[1] if L.ndim == 2 else 0)
    return (L != 0).mean(axis=0)


def overlap(L: np.ndarray) -> np.ndarray:
    """Per-LF overlap: fraction of candidates on which the LF and at least one
    *other* LF both emit a (non-abstain) label."""
    if L.size == 0:
        return np.zeros(L.shape[1] if L.ndim == 2 else 0)
    labeled = L != 0
    n_labels_per_row = labeled.sum(axis=1, keepdims=True)
    overlapping = labeled & (n_labels_per_row >= 2)
    return overlapping.mean(axis=0)


def conflict(L: np.ndarray) -> np.ndarray:
    """Per-LF conflict: fraction of candidates on which the LF disagrees with
    at least one other non-abstaining LF."""
    n_rows, n_lfs = L.shape if L.ndim == 2 else (0, 0)
    if n_rows == 0:
        return np.zeros(n_lfs)
    result = np.zeros(n_lfs)
    for j in range(n_lfs):
        column = L[:, j]
        others = np.delete(L, j, axis=1)
        disagrees = np.zeros(n_rows, dtype=bool)
        for k in range(others.shape[1]):
            other = others[:, k]
            disagrees |= (column != 0) & (other != 0) & (column != other)
        result[j] = disagrees.mean()
    return result


def empirical_accuracy(L: np.ndarray, gold: np.ndarray) -> np.ndarray:
    """Per-LF accuracy on the candidates it labels, against gold labels in {-1, +1}."""
    n_lfs = L.shape[1]
    accuracies = np.zeros(n_lfs)
    for j in range(n_lfs):
        mask = L[:, j] != 0
        if mask.sum() == 0:
            accuracies[j] = 0.0
        else:
            accuracies[j] = (L[mask, j] == gold[mask]).mean()
    return accuracies


@dataclass
class LFSummary:
    """Per-LF development metrics, as shown to users during error analysis."""

    name: str
    coverage: float
    overlap: float
    conflict: float
    polarity: List[int]
    accuracy: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "coverage": self.coverage,
            "overlap": self.overlap,
            "conflict": self.conflict,
            "polarity": self.polarity,
            "accuracy": self.accuracy,
        }


def lf_summary(
    L: np.ndarray,
    lf_names: Sequence[str],
    gold: Optional[np.ndarray] = None,
) -> List[LFSummary]:
    """Build the per-LF summary table (the error-analysis view of Section 3.3)."""
    if L.ndim != 2 or L.shape[1] != len(lf_names):
        raise ValueError(
            f"Label matrix of shape {L.shape} does not match {len(lf_names)} LF names"
        )
    cov = coverage(L)
    ov = overlap(L)
    conf = conflict(L)
    acc = empirical_accuracy(L, gold) if gold is not None else None

    summaries = []
    for j, name in enumerate(lf_names):
        polarity = sorted({int(v) for v in L[:, j] if v != 0})
        summaries.append(
            LFSummary(
                name=name,
                coverage=float(cov[j]),
                overlap=float(ov[j]),
                conflict=float(conf[j]),
                polarity=polarity,
                accuracy=float(acc[j]) if acc is not None else None,
            )
        )
    return summaries
