"""Weak supervision via data programming (paper Section 4.3 and Appendix A).

Users write *labeling functions* (LFs): Python functions that take a candidate
and return +1 ("True"), -1 ("False") or 0 (abstain).  LFs may be noisy and may
conflict; a generative *label model* estimates each LF's accuracy from the
overlap/conflict structure of the label matrix and produces denoised
probabilistic training labels for the discriminative model — the role Snorkel
plays in the original system.

* :mod:`repro.supervision.labeling` — LF wrapper, the LF applier and the label
  matrix (COO during development, per Appendix C.2).
* :mod:`repro.supervision.analysis` — the LF metrics surfaced to users during
  iterative development: coverage, overlap, conflict, and empirical accuracy.
* :mod:`repro.supervision.label_model` — the generative model (EM under the
  conditional-independence assumption of Ratner et al. 2016) plus a majority
  vote baseline.
* :mod:`repro.supervision.gold` — gold-label utilities for evaluation.
"""

from repro.supervision.labeling import LabelingFunction, LFApplier, labeling_function
from repro.supervision.analysis import LFSummary, lf_summary, coverage, conflict, overlap
from repro.supervision.label_model import LabelModel, MajorityVoter
from repro.supervision.gold import gold_labels_for_candidates

__all__ = [
    "LabelModel",
    "LabelingFunction",
    "LFApplier",
    "LFSummary",
    "MajorityVoter",
    "conflict",
    "coverage",
    "gold_labels_for_candidates",
    "labeling_function",
    "lf_summary",
    "overlap",
]
