"""Generative label model: denoise labeling-function output into marginals.

Data programming (Ratner et al., NIPS 2016; paper Appendix A) models each
labeling function as a noisy voter with unknown accuracy.  Under the
conditional-independence assumption, the label model estimates each LF's
accuracy from the agreement/disagreement structure of the label matrix alone
(no gold labels) via expectation-maximization, then combines the LF votes into
a per-candidate probabilistic label

    P(y = +1 | Λ_i)  ∝  P(y=+1) ∏_j P(Λ_ij | y=+1)

These marginals are the training targets of the discriminative multimodal LSTM.
A simple :class:`MajorityVoter` baseline is also provided.

EM runs through the unified training runtime (:mod:`repro.learning.trainer`):
one EM iteration is one epoch, one label block is one batch, and the E/M
statistics accumulate blockwise — peak memory is O(block_size × n_lfs)
regardless of how many candidates the matrix holds, and the same code path
consumes a resident dense matrix, a sparse CSR matrix (densified per block,
never whole) or per-shard label slabs out of a
:class:`~repro.storage.shards.ShardStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.learning.trainer import (
    Batch,
    BatchSource,
    DenseLabelSource,
    Trainer,
    TrainerConfig,
)


@dataclass
class LabelModelConfig:
    """Hyperparameters for EM estimation of LF accuracies."""

    n_iterations: int = 50
    tolerance: float = 1e-5
    initial_accuracy: float = 0.7
    # The floor keeps every labeling function mildly informative; dropping it to
    # exactly 0.5 lets EM silence genuinely useful negative LFs whose support
    # overlaps noisy positive ones, which measurably hurts precision.
    accuracy_floor: float = 0.55
    accuracy_ceiling: float = 0.95
    class_prior: float = 0.5
    # Learning the class prior jointly with LF accuracies admits a degenerate
    # "everything is positive" solution when some LFs fire on nearly every
    # candidate; by default the prior is held fixed (Ratner et al. treat class
    # balance as a separately estimated constant).
    learn_class_prior: bool = False
    # Vectorized EM: the M-step is masked matrix reductions over blocks of
    # ``block_size`` rows instead of a Python loop over labeling functions.
    # ``False`` selects the legacy per-LF loop (which densifies the whole
    # matrix — the reference implementation); both estimate the same
    # accuracies up to float summation order (well below ``tolerance``).
    vectorized: bool = True
    # Rows per EM block.  Matrices at most this tall run in a single block —
    # bitwise-identical to the pre-blockwise full-matrix M-step; taller input
    # streams block by block with O(block_size × n_lfs) peak memory.  The
    # block structure is a function of this config alone (never of how the
    # input happened to be chunked on disk), so slab-backed and resident fits
    # accumulate identical partial sums.
    block_size: int = 8192


class MajorityVoter:
    """Unweighted majority vote over non-abstaining LFs."""

    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        """Per-candidate probability of the positive class in [0, 1].

        Candidates with no labels receive 0.5 (uninformative).
        """
        votes = L.sum(axis=1).astype(float)
        n_voting = (L != 0).sum(axis=1).astype(float)
        proba = np.full(L.shape[0], 0.5)
        mask = n_voting > 0
        proba[mask] = 0.5 + 0.5 * votes[mask] / n_voting[mask]
        return np.clip(proba, 0.0, 1.0)

    def predict(self, L: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return np.where(self.predict_proba(L) > threshold, 1, -1)


class LabelModel:
    """EM-based generative model of LF accuracies (conditionally independent LFs).

    Implements the :class:`~repro.learning.trainer.Trainer` protocol: one
    epoch is one EM iteration, ``partial_fit`` accumulates the E/M statistics
    of one label block, ``end_epoch`` re-estimates the accuracies and reports
    convergence (early stop).
    """

    def __init__(self, config: Optional[LabelModelConfig] = None) -> None:
        self.config = config or LabelModelConfig()
        self.accuracies_: Optional[np.ndarray] = None
        self.class_prior_: float = self.config.class_prior
        self.n_iterations_run_: int = 0

    # ------------------------------------------------------------------ fit
    @staticmethod
    def _as_dense(L) -> np.ndarray:
        """Accept a dense array, a sparse matrix exposing ``to_dense``, or a
        label block source (stacked block by block).

        Only the legacy (``vectorized=False``) reference path uses this —
        it is the fully-resident reference implementation, so densifying is
        its contract; the blockwise fit densifies per block via
        :class:`~repro.learning.trainer.DenseLabelSource` instead.
        """
        if isinstance(L, np.ndarray):
            return L
        if isinstance(L, BatchSource):
            n_lfs = int(getattr(L, "n_lfs", None) or 0)
            if len(L) == 0:
                return np.zeros((0, n_lfs))
            blocks = [
                L.batch(np.arange(lo, min(lo + 4096, len(L)))).labels
                for lo in range(0, len(L), 4096)
            ]
            return np.vstack(blocks)
        to_dense = getattr(L, "to_dense", None) or getattr(L, "toarray", None)
        if to_dense is not None:
            return np.asarray(to_dense())
        return np.asarray(L)

    @staticmethod
    def _block_source(L) -> BatchSource:
        """Wrap any supported label-matrix input as a block source."""
        if isinstance(L, BatchSource):
            return L
        return DenseLabelSource(L)

    # -------------------------------------------------- TrainableModel protocol
    def init_state(self, source) -> None:
        n_lfs = getattr(source, "n_lfs", None)
        if n_lfs is None:
            raise ValueError("LabelModel sources must expose n_lfs")
        self._n_lfs = int(n_lfs or 0)
        self.accuracies_ = np.full(self._n_lfs, self.config.initial_accuracy)
        self.class_prior_ = self.config.class_prior
        self.n_iterations_run_ = 0

    def begin_epoch(self, epoch: int) -> None:
        self._agreement = np.zeros(self._n_lfs)
        self._vote_counts = np.zeros(self._n_lfs)
        self._posterior_sum = 0.0
        self._rows_seen = 0

    def partial_fit(self, batch: Batch) -> float:
        """E/M statistics of one label block under the current accuracies.

        Per block: posterior P(y=+1 | Λ) (the E-step), then each LF's expected
        agreement Σ_i P(y_i=+1)·[Λ_ij=+1] + Σ_i (1-P(y_i=+1))·[Λ_ij=-1],
        reduced over contiguous per-LF rows of the transposed masks — the same
        reduction (and for a single block, the bitwise-same result) as the
        full-matrix vectorized M-step this replaces, but with only one block's
        masks materialized at a time.
        """
        L = batch.labels
        if L is None:
            raise ValueError("LabelModel batches must carry a dense label block")
        if not hasattr(self, "_agreement"):
            # Direct partial_fit use outside a Trainer epoch.
            self.begin_epoch(0)
        pos_mask = L == 1
        neg_mask = L == -1
        pos_vote = pos_mask.astype(float)
        neg_vote = neg_mask.astype(float)
        posteriors = self._posterior_from_votes(
            pos_vote, neg_vote, self.accuracies_, self.class_prior_
        )
        pos_mask_by_lf = np.ascontiguousarray(pos_mask.T)
        neg_mask_by_lf = np.ascontiguousarray(neg_mask.T)
        agreement_weights = np.where(
            pos_mask_by_lf,
            posteriors[None, :],
            np.where(neg_mask_by_lf, (1.0 - posteriors)[None, :], 0.0),
        )
        self._agreement += agreement_weights.sum(axis=1)
        self._vote_counts += pos_vote.sum(axis=0) + neg_vote.sum(axis=0)
        self._posterior_sum += float(posteriors.sum())
        self._rows_seen += L.shape[0]
        return 0.0

    def end_epoch(self, epoch: int) -> bool:
        """The M-step over the epoch's accumulated statistics; True = converged."""
        config = self.config
        voted = self._vote_counts > 0
        new_accuracies = np.where(
            voted,
            self._agreement / np.maximum(self._vote_counts, 1.0),
            self.accuracies_,
        )
        new_accuracies = np.clip(
            new_accuracies, config.accuracy_floor, config.accuracy_ceiling
        )
        if config.learn_class_prior and self._rows_seen:
            self.class_prior_ = float(
                np.clip(self._posterior_sum / self._rows_seen, 0.05, 0.95)
            )
        delta = (
            float(np.abs(new_accuracies - self.accuracies_).max())
            if self._n_lfs
            else 0.0
        )
        self.accuracies_ = new_accuracies
        self.n_iterations_run_ = epoch + 1
        return delta < config.tolerance

    def finalize(self) -> None:
        pass

    def predict_proba_batch(self, batch: Batch) -> np.ndarray:
        if batch.labels is None:
            raise ValueError("LabelModel batches must carry a dense label block")
        if self.accuracies_ is None:
            raise RuntimeError("LabelModel.fit must be called before predict_proba")
        return self._posterior(batch.labels, self.accuracies_, self.class_prior_)

    def state_dict(self) -> dict:
        return {
            "accuracies": None if self.accuracies_ is None else self.accuracies_.copy(),
            "class_prior": self.class_prior_,
            "n_iterations_run": self.n_iterations_run_,
            "n_lfs": getattr(self, "_n_lfs", 0),
        }

    def load_state_dict(self, state: dict) -> None:
        accuracies = state["accuracies"]
        self.accuracies_ = None if accuracies is None else np.asarray(accuracies).copy()
        self.class_prior_ = float(state["class_prior"])
        self.n_iterations_run_ = int(state["n_iterations_run"])
        self._n_lfs = int(state["n_lfs"])

    def _trainer(self) -> Trainer:
        # One EM iteration per epoch over storage-order blocks: no shuffling,
        # so the blockwise partial sums are a pure function of (input rows,
        # block_size) and streaming/in-memory fits accumulate identically.
        return Trainer(
            TrainerConfig(
                n_epochs=self.config.n_iterations,
                batch_size=self.config.block_size,
                shuffle=False,
                seed=0,
            )
        )

    def fit(self, L) -> "LabelModel":
        """Estimate LF accuracies from the label matrix ``L`` (values -1/0/+1).

        ``L`` may be a dense ndarray, a sparse annotation matrix
        (:class:`~repro.storage.sparse.CSRMatrix` et al. — densified per
        block, never whole), or any
        :class:`~repro.learning.trainer.BatchSource` yielding label blocks
        (e.g. :class:`~repro.learning.trainer.SlabLabelSource` over per-shard
        label slabs).
        """
        if not self.config.vectorized:
            return self._fit_legacy(self._as_dense(L))
        source = self._block_source(L)
        if len(source) == 0:
            self._n_lfs = int(getattr(source, "n_lfs", None) or 0)
            self.accuracies_ = np.full(self._n_lfs, self.config.initial_accuracy)
            self.class_prior_ = self.config.class_prior
            return self
        self._trainer().fit(self, source)
        return self

    def _fit_legacy(self, L: np.ndarray) -> "LabelModel":
        """Reference EM: the per-LF M-step loop over the fully-resident matrix."""
        if L.ndim != 2:
            raise ValueError("Label matrix must be 2-dimensional")
        n_candidates, n_lfs = L.shape
        config = self.config
        accuracies = np.full(n_lfs, config.initial_accuracy)
        class_prior = config.class_prior
        self._n_lfs = n_lfs

        if n_candidates == 0:
            self.accuracies_ = accuracies
            self.class_prior_ = class_prior
            return self

        for iteration in range(config.n_iterations):
            # E-step: posterior P(y=+1 | Λ_i) under current accuracies.
            posteriors = self._posterior(L, accuracies, class_prior)
            # M-step: re-estimate accuracy of each LF as the expected fraction
            # of its non-abstain votes that agree with the latent label.
            new_accuracies = accuracies.copy()
            for j in range(n_lfs):
                votes = L[:, j]
                mask = votes != 0
                if not mask.any():
                    continue
                p_pos = posteriors[mask]
                agree_weight = np.where(votes[mask] == 1, p_pos, 1.0 - p_pos)
                new_accuracies[j] = float(agree_weight.mean())
            new_accuracies = np.clip(
                new_accuracies, config.accuracy_floor, config.accuracy_ceiling
            )
            if config.learn_class_prior:
                new_prior = float(np.clip(posteriors.mean(), 0.05, 0.95))
            else:
                new_prior = class_prior

            delta = np.abs(new_accuracies - accuracies).max()
            accuracies = new_accuracies
            class_prior = new_prior
            self.n_iterations_run_ = iteration + 1
            if delta < config.tolerance:
                break

        self.accuracies_ = accuracies
        self.class_prior_ = class_prior
        return self

    # ------------------------------------------------------------- inference
    @staticmethod
    def _posterior_from_votes(
        pos_vote: np.ndarray,
        neg_vote: np.ndarray,
        accuracies: np.ndarray,
        class_prior: float,
    ) -> np.ndarray:
        """Posterior from precomputed vote-indicator matrices (the EM hot loop)."""
        log_acc = np.log(accuracies)
        log_inacc = np.log(1.0 - accuracies)

        # log P(Λ_ij | y=+1): log acc_j when vote == +1, log (1-acc_j) when vote == -1.
        log_likelihood_pos = pos_vote @ log_acc + neg_vote @ log_inacc
        log_likelihood_neg = neg_vote @ log_acc + pos_vote @ log_inacc

        log_pos = np.log(class_prior) + log_likelihood_pos
        log_neg = np.log(1.0 - class_prior) + log_likelihood_neg
        max_log = np.maximum(log_pos, log_neg)
        pos = np.exp(log_pos - max_log)
        neg = np.exp(log_neg - max_log)
        return pos / (pos + neg)

    def _posterior(
        self, L: np.ndarray, accuracies: np.ndarray, class_prior: float
    ) -> np.ndarray:
        """P(y=+1 | Λ_i) for every candidate under the naive-Bayes generative model."""
        pos_vote = (L == 1).astype(float)
        neg_vote = (L == -1).astype(float)
        return self._posterior_from_votes(pos_vote, neg_vote, accuracies, class_prior)

    def predict_proba(self, L) -> np.ndarray:
        """Marginal probability of the positive class for each candidate.

        Like :meth:`fit`, accepts dense/sparse matrices or a block source;
        non-dense input is processed block by block.
        """
        if self.accuracies_ is None:
            raise RuntimeError("LabelModel.fit must be called before predict_proba")
        if isinstance(L, np.ndarray) and L.shape[0] <= self.config.block_size:
            # Small resident matrix: one direct posterior call.  The posterior
            # is purely row-wise, so the blockwise path below returns the
            # bitwise-identical result — this is only a fast path.
            return self._posterior(L, self.accuracies_, self.class_prior_)
        source = self._block_source(L)
        return self._trainer().predict(self, source)

    def fit_predict_proba(self, L) -> np.ndarray:
        return self.fit(L).predict_proba(L)

    def predict(self, L, threshold: float = 0.5) -> np.ndarray:
        """Hard labels in {-1, +1} at the given marginal threshold."""
        return np.where(self.predict_proba(L) > threshold, 1, -1)

    @property
    def estimated_accuracies(self) -> np.ndarray:
        if self.accuracies_ is None:
            raise RuntimeError("LabelModel has not been fit")
        return self.accuracies_.copy()
