"""Generative label model: denoise labeling-function output into marginals.

Data programming (Ratner et al., NIPS 2016; paper Appendix A) models each
labeling function as a noisy voter with unknown accuracy.  Under the
conditional-independence assumption, the label model estimates each LF's
accuracy from the agreement/disagreement structure of the label matrix alone
(no gold labels) via expectation-maximization, then combines the LF votes into
a per-candidate probabilistic label

    P(y = +1 | Λ_i)  ∝  P(y=+1) ∏_j P(Λ_ij | y=+1)

These marginals are the training targets of the discriminative multimodal LSTM.
A simple :class:`MajorityVoter` baseline is also provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class LabelModelConfig:
    """Hyperparameters for EM estimation of LF accuracies."""

    n_iterations: int = 50
    tolerance: float = 1e-5
    initial_accuracy: float = 0.7
    # The floor keeps every labeling function mildly informative; dropping it to
    # exactly 0.5 lets EM silence genuinely useful negative LFs whose support
    # overlaps noisy positive ones, which measurably hurts precision.
    accuracy_floor: float = 0.55
    accuracy_ceiling: float = 0.95
    class_prior: float = 0.5
    # Learning the class prior jointly with LF accuracies admits a degenerate
    # "everything is positive" solution when some LFs fire on nearly every
    # candidate; by default the prior is held fixed (Ratner et al. treat class
    # balance as a separately estimated constant).
    learn_class_prior: bool = False
    # Vectorized EM: the M-step is two masked matrix-vector products instead
    # of a Python loop over labeling functions.  ``False`` selects the legacy
    # per-LF loop; both estimate the same accuracies up to float summation
    # order (well below ``tolerance``).
    vectorized: bool = True


class MajorityVoter:
    """Unweighted majority vote over non-abstaining LFs."""

    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        """Per-candidate probability of the positive class in [0, 1].

        Candidates with no labels receive 0.5 (uninformative).
        """
        votes = L.sum(axis=1).astype(float)
        n_voting = (L != 0).sum(axis=1).astype(float)
        proba = np.full(L.shape[0], 0.5)
        mask = n_voting > 0
        proba[mask] = 0.5 + 0.5 * votes[mask] / n_voting[mask]
        return np.clip(proba, 0.0, 1.0)

    def predict(self, L: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return np.where(self.predict_proba(L) > threshold, 1, -1)


class LabelModel:
    """EM-based generative model of LF accuracies (conditionally independent LFs)."""

    def __init__(self, config: Optional[LabelModelConfig] = None) -> None:
        self.config = config or LabelModelConfig()
        self.accuracies_: Optional[np.ndarray] = None
        self.class_prior_: float = self.config.class_prior
        self.n_iterations_run_: int = 0

    # ------------------------------------------------------------------ fit
    @staticmethod
    def _as_dense(L) -> np.ndarray:
        """Accept a dense array or any sparse matrix exposing ``to_dense``."""
        if isinstance(L, np.ndarray):
            return L
        to_dense = getattr(L, "to_dense", None) or getattr(L, "toarray", None)
        if to_dense is not None:
            return np.asarray(to_dense())
        return np.asarray(L)

    def fit(self, L: np.ndarray) -> "LabelModel":
        """Estimate LF accuracies from the label matrix ``L`` (values -1/0/+1).

        ``L`` may be a dense ndarray or a sparse annotation matrix
        (:class:`~repro.storage.sparse.CSRMatrix` et al.), which is
        densified once up front (label matrices are skinny: one column per
        labeling function).
        """
        L = self._as_dense(L)
        if L.ndim != 2:
            raise ValueError("Label matrix must be 2-dimensional")
        n_candidates, n_lfs = L.shape
        config = self.config
        accuracies = np.full(n_lfs, config.initial_accuracy)
        class_prior = config.class_prior

        if n_candidates == 0:
            self.accuracies_ = accuracies
            self.class_prior_ = class_prior
            return self

        if config.vectorized:
            # Masked vote indicators and per-LF non-abstain counts are loop
            # invariants; each EM iteration then reduces to matrix ops.
            pos_mask = L == 1
            neg_mask = L == -1
            pos_vote = pos_mask.astype(float)
            neg_vote = neg_mask.astype(float)
            vote_counts = pos_vote.sum(axis=0) + neg_vote.sum(axis=0)
            voted = vote_counts > 0
            # Transposed masks, materialized once: the M-step reduces along
            # per-LF rows, and hoisting these loop invariants avoids
            # re-transposing a full (n_candidates, n_lfs) array every EM
            # iteration.
            pos_mask_by_lf = np.ascontiguousarray(pos_mask.T)
            neg_mask_by_lf = np.ascontiguousarray(neg_mask.T)

        for iteration in range(config.n_iterations):
            # E-step: posterior P(y=+1 | Λ_i) under current accuracies.
            if config.vectorized:
                posteriors = self._posterior_from_votes(
                    pos_vote, neg_vote, accuracies, class_prior
                )
                # M-step, vectorized: expected agreement of LF j is
                # Σ_i P(y_i=+1)·[Λ_ij=+1] + Σ_i (1-P(y_i=+1))·[Λ_ij=-1];
                # abstains contribute zero terms, so no per-LF masking loop
                # is needed.  The reduction runs over contiguous per-LF rows
                # so each LF's sum uses the same pairwise summation as the
                # legacy loop's ``mean()`` — bitwise identical whenever the
                # LF never abstains.
                agreement_weights = np.where(
                    pos_mask_by_lf,
                    posteriors[None, :],
                    np.where(neg_mask_by_lf, (1.0 - posteriors)[None, :], 0.0),
                )
                agreement = agreement_weights.sum(axis=1)
                new_accuracies = np.where(
                    voted, agreement / np.maximum(vote_counts, 1.0), accuracies
                )
            else:
                posteriors = self._posterior(L, accuracies, class_prior)
                # M-step, legacy: re-estimate accuracy of each LF as the
                # expected fraction of its non-abstain votes that agree with
                # the latent label.
                new_accuracies = accuracies.copy()
                for j in range(n_lfs):
                    votes = L[:, j]
                    mask = votes != 0
                    if not mask.any():
                        continue
                    p_pos = posteriors[mask]
                    agree_weight = np.where(votes[mask] == 1, p_pos, 1.0 - p_pos)
                    new_accuracies[j] = float(agree_weight.mean())
            new_accuracies = np.clip(
                new_accuracies, config.accuracy_floor, config.accuracy_ceiling
            )
            if config.learn_class_prior:
                new_prior = float(np.clip(posteriors.mean(), 0.05, 0.95))
            else:
                new_prior = class_prior

            delta = np.abs(new_accuracies - accuracies).max()
            accuracies = new_accuracies
            class_prior = new_prior
            self.n_iterations_run_ = iteration + 1
            if delta < config.tolerance:
                break

        self.accuracies_ = accuracies
        self.class_prior_ = class_prior
        return self

    # ------------------------------------------------------------- inference
    @staticmethod
    def _posterior_from_votes(
        pos_vote: np.ndarray,
        neg_vote: np.ndarray,
        accuracies: np.ndarray,
        class_prior: float,
    ) -> np.ndarray:
        """Posterior from precomputed vote-indicator matrices (the EM hot loop)."""
        log_acc = np.log(accuracies)
        log_inacc = np.log(1.0 - accuracies)

        # log P(Λ_ij | y=+1): log acc_j when vote == +1, log (1-acc_j) when vote == -1.
        log_likelihood_pos = pos_vote @ log_acc + neg_vote @ log_inacc
        log_likelihood_neg = neg_vote @ log_acc + pos_vote @ log_inacc

        log_pos = np.log(class_prior) + log_likelihood_pos
        log_neg = np.log(1.0 - class_prior) + log_likelihood_neg
        max_log = np.maximum(log_pos, log_neg)
        pos = np.exp(log_pos - max_log)
        neg = np.exp(log_neg - max_log)
        return pos / (pos + neg)

    def _posterior(
        self, L: np.ndarray, accuracies: np.ndarray, class_prior: float
    ) -> np.ndarray:
        """P(y=+1 | Λ_i) for every candidate under the naive-Bayes generative model."""
        pos_vote = (L == 1).astype(float)
        neg_vote = (L == -1).astype(float)
        return self._posterior_from_votes(pos_vote, neg_vote, accuracies, class_prior)

    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        """Marginal probability of the positive class for each candidate."""
        if self.accuracies_ is None:
            raise RuntimeError("LabelModel.fit must be called before predict_proba")
        return self._posterior(self._as_dense(L), self.accuracies_, self.class_prior_)

    def fit_predict_proba(self, L: np.ndarray) -> np.ndarray:
        return self.fit(L).predict_proba(L)

    def predict(self, L: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels in {-1, +1} at the given marginal threshold."""
        return np.where(self.predict_proba(L) > threshold, 1, -1)

    @property
    def estimated_accuracies(self) -> np.ndarray:
        if self.accuracies_ is None:
            raise RuntimeError("LabelModel has not been fit")
        return self.accuracies_.copy()
