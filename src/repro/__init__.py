"""repro — a reproduction of *Fonduer: Knowledge Base Construction from Richly
Formatted Data* (Wu et al., SIGMOD 2018).

The package is organized as a set of substrates (data model, parsing, NLP,
storage, learning) underneath the Fonduer core (candidates, features,
supervision, pipeline), plus the evaluation domains and baselines needed to
regenerate every table and figure of the paper.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Quickstart::

    from repro import load_dataset, FonduerPipeline, FonduerConfig

    dataset = load_dataset("electronics", n_docs=10)
    documents = dataset.parse_documents()
    pipeline = FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
    )
    result = pipeline.run(documents, gold=dataset.gold_entries)
    print(result.metrics)
"""

from repro.candidates import (
    Candidate,
    CandidateExtractor,
    ContextScope,
    DictionaryMatcher,
    LambdaFunctionMatcher,
    Matcher,
    Mention,
    MentionNgrams,
    NumberMatcher,
    RegexMatcher,
)
from repro.data_model import Document, Section, Sentence, Span, Table
from repro.datasets import DatasetSpec, load_dataset
from repro.evaluation import evaluate_binary, evaluate_entity_tuples
from repro.features import FeatureConfig, Featurizer
from repro.learning import MultimodalLSTM, MultimodalLSTMConfig, SparseLogisticRegression
from repro.parsing import CorpusParser, RawDocument
from repro.pipeline import FonduerConfig, FonduerPipeline, PipelineResult
from repro.storage import KnowledgeBase, RelationSchema
from repro.supervision import LabelModel, LabelingFunction, labeling_function

__version__ = "0.1.0"

__all__ = [
    "Candidate",
    "CandidateExtractor",
    "ContextScope",
    "CorpusParser",
    "DatasetSpec",
    "DictionaryMatcher",
    "Document",
    "FeatureConfig",
    "Featurizer",
    "FonduerConfig",
    "FonduerPipeline",
    "KnowledgeBase",
    "LabelModel",
    "LabelingFunction",
    "LambdaFunctionMatcher",
    "Matcher",
    "Mention",
    "MentionNgrams",
    "MultimodalLSTM",
    "MultimodalLSTMConfig",
    "NumberMatcher",
    "PipelineResult",
    "RawDocument",
    "RegexMatcher",
    "RelationSchema",
    "Section",
    "Sentence",
    "Span",
    "SparseLogisticRegression",
    "Table",
    "evaluate_binary",
    "evaluate_entity_tuples",
    "labeling_function",
    "load_dataset",
    "__version__",
]
