"""repro — a reproduction of *Fonduer: Knowledge Base Construction from Richly
Formatted Data* (Wu et al., SIGMOD 2018).

The package is organized as a set of substrates (data model, parsing, NLP,
storage, learning) underneath the Fonduer core (candidates, features,
supervision, pipeline), plus the evaluation domains and baselines needed to
regenerate every table and figure of the paper.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Quickstart::

    from repro import load_dataset, FonduerPipeline, FonduerConfig

    dataset = load_dataset("electronics", n_docs=10)
    documents = dataset.parse_documents()
    pipeline = FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
    )
    result = pipeline.run(documents, gold=dataset.gold_entries)
    print(result.metrics)

Execution engine
----------------

Every phase of the pipeline — parsing, candidate generation, featurization,
labeling — is embarrassingly parallel at document granularity, so the pipeline
compiles them into a DAG of per-document operators (:mod:`repro.engine`) and
runs the DAG through a pluggable executor with an incremental cache in front
of every stage.  ``FonduerConfig(executor="process", n_workers=4)`` selects a
chunked, order-preserving process pool (``"thread"`` and ``"serial"`` are the
other strategies; all three produce identical results).  Stage outputs are
cached under content hashes of (document, operator configuration), so
development-mode iteration — edit the labeling functions, re-run — re-executes
only the labeling/classification stages, and re-running on a corpus with a few
changed documents reprocesses only those documents.  See ``docs/ENGINE.md``
for the operator/executor/cache contract.

Out-of-core streaming
---------------------

Corpora that do not fit in memory stream through the sharded corpus store
(:mod:`repro.storage.shards`): ``FonduerPipeline.run_streaming(corpus_dir,
workdir)`` partitions documents into content-addressed on-disk shards,
bounds residency to ``FonduerConfig.max_resident_shards`` shards, and
checkpoints every shard × stage so a killed run resumes where it stopped —
with outputs byte-identical to the in-memory path.  ``python -m repro``
exposes it from the command line.  See ``docs/SCALING.md``.

Unified training runtime
------------------------

Every model — the multimodal LSTM, the logistic head, the document-RNN
baseline, even the generative label model's EM — trains through one
mini-batch :class:`~repro.learning.trainer.Trainer` over pluggable batch
sources.  Models are selected by name via the registry
(``FonduerConfig(model="lstm")``; :mod:`repro.learning.registry`), and in
streaming mode training consumes slab-backed batches out of the shard store
(bounded residency) with the model checkpointed atomically after every
epoch: ``python -m repro train`` resumes a killed run at the last epoch
boundary, and the slab-trained model is bitwise-identical to the in-memory
one.  See ``docs/LEARNING.md``.
"""

from repro.candidates import (
    Candidate,
    CandidateExtractor,
    ContextScope,
    DictionaryMatcher,
    LambdaFunctionMatcher,
    Matcher,
    Mention,
    MentionNgrams,
    NumberMatcher,
    RegexMatcher,
)
from repro.data_model import Document, Section, Sentence, Span, Table
from repro.datasets import DatasetSpec, load_dataset
from repro.engine import (
    CandidateOp,
    FeaturizeOp,
    IncrementalCache,
    LabelOp,
    ParseOp,
    PipelineEngine,
    ProcessExecutor,
    SerialExecutor,
    Stage,
    ThreadExecutor,
    create_executor,
)
from repro.evaluation import evaluate_binary, evaluate_entity_tuples
from repro.features import FeatureConfig, Featurizer
from repro.learning import (
    MultimodalLSTM,
    MultimodalLSTMConfig,
    SparseLogisticRegression,
    Trainer,
    TrainerConfig,
    available_models,
    create_model,
)
from repro.parsing import CorpusParser, RawDocument
from repro.pipeline import (
    FonduerConfig,
    FonduerPipeline,
    PipelineResult,
    StreamingResult,
)
from repro.storage import KnowledgeBase, RelationSchema, ShardStore
from repro.supervision import LabelModel, LabelingFunction, labeling_function

__version__ = "0.1.0"

__all__ = [
    "Candidate",
    "CandidateExtractor",
    "CandidateOp",
    "ContextScope",
    "CorpusParser",
    "DatasetSpec",
    "DictionaryMatcher",
    "Document",
    "FeatureConfig",
    "FeaturizeOp",
    "Featurizer",
    "FonduerConfig",
    "FonduerPipeline",
    "IncrementalCache",
    "KnowledgeBase",
    "LabelModel",
    "LabelOp",
    "LabelingFunction",
    "LambdaFunctionMatcher",
    "Matcher",
    "Mention",
    "MentionNgrams",
    "MultimodalLSTM",
    "MultimodalLSTMConfig",
    "NumberMatcher",
    "ParseOp",
    "PipelineEngine",
    "PipelineResult",
    "ProcessExecutor",
    "RawDocument",
    "RegexMatcher",
    "RelationSchema",
    "Section",
    "Sentence",
    "SerialExecutor",
    "ShardStore",
    "Span",
    "SparseLogisticRegression",
    "Stage",
    "StreamingResult",
    "Table",
    "ThreadExecutor",
    "Trainer",
    "TrainerConfig",
    "available_models",
    "create_executor",
    "create_model",
    "evaluate_binary",
    "evaluate_entity_tuples",
    "labeling_function",
    "load_dataset",
    "__version__",
]
