"""Quality metrics: precision, recall, F1 over candidate labels and entity tuples.

The paper evaluates end-to-end quality at the level of extracted relation
entries: precision (fraction of extracted entries that are correct), recall
(fraction of gold entries that were extracted) and their harmonic mean F1
(Table 2).  Two granularities are provided:

* binary classification metrics over candidate label vectors;
* entity-tuple metrics comparing a set of extracted (document, entity tuple)
  pairs against the gold set — this is the end-to-end measure, since missing
  candidates (recall lost during candidate generation) count against recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class EvaluationResult:
    """Precision / recall / F1 plus the underlying counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    def as_dict(self) -> dict:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
        }


def precision_recall_f1(tp: int, fp: int, fn: int) -> EvaluationResult:
    """Compute the three metrics from raw counts (zero-safe)."""
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return EvaluationResult(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (zero-safe)."""
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def evaluate_binary(predictions: Sequence[int], gold: Sequence[int]) -> EvaluationResult:
    """Binary metrics over label vectors in {-1, +1} (or booleans)."""
    predictions = np.asarray(predictions)
    gold = np.asarray(gold)
    if predictions.shape != gold.shape:
        raise ValueError("predictions and gold must have the same shape")
    predicted_positive = predictions == 1 if predictions.dtype != bool else predictions
    actual_positive = gold == 1 if gold.dtype != bool else gold
    tp = int(np.sum(predicted_positive & actual_positive))
    fp = int(np.sum(predicted_positive & ~actual_positive))
    fn = int(np.sum(~predicted_positive & actual_positive))
    return precision_recall_f1(tp, fp, fn)


def evaluate_entity_tuples(
    extracted: Iterable[Tuple[str, Tuple[str, ...]]],
    gold: Iterable[Tuple[str, Tuple[str, ...]]],
) -> EvaluationResult:
    """End-to-end metrics over (document, entity-tuple) pairs.

    ``extracted`` and ``gold`` are iterables of ``(document_name, entity_tuple)``.
    Recall is measured against the full gold set, so entries missed during
    candidate generation correctly count as false negatives.
    """
    extracted_set: Set[Tuple[str, Tuple[str, ...]]] = set(extracted)
    gold_set: Set[Tuple[str, Tuple[str, ...]]] = set(gold)
    tp = len(extracted_set & gold_set)
    fp = len(extracted_set - gold_set)
    fn = len(gold_set - extracted_set)
    return precision_recall_f1(tp, fp, fn)
