"""Comparison against existing, expert-curated knowledge bases (paper Table 3).

The paper reports, for ELECTRONICS vs Digi-Key and GENOMICS vs GWAS Central /
GWAS Catalog: the number of entries in each KB, the *coverage* of the existing
KB by Fonduer's output, the *accuracy* of Fonduer's entries (measured against
ground truth), the number of new correct entries not present in the existing
KB, and the relative increase in correct entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

EntityTuple = Tuple[str, ...]


@dataclass(frozen=True)
class KBComparison:
    """The Table 3 row for one (output KB, existing KB) pair."""

    n_existing_entries: int
    n_fonduer_entries: int
    coverage: float
    accuracy: float
    n_new_correct_entries: int
    increase_in_correct_entries: float

    def as_dict(self) -> dict:
        return {
            "entries_in_kb": self.n_existing_entries,
            "entries_in_fonduer": self.n_fonduer_entries,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "new_correct_entries": self.n_new_correct_entries,
            "increase_in_correct_entries": self.increase_in_correct_entries,
        }


def compare_knowledge_bases(
    fonduer_entries: Iterable[EntityTuple],
    existing_entries: Iterable[EntityTuple],
    ground_truth: Iterable[EntityTuple],
) -> KBComparison:
    """Compute the Table 3 statistics.

    * coverage — fraction of existing-KB entries also produced by Fonduer;
    * accuracy — fraction of Fonduer's entries that are in the ground truth;
    * new correct entries — Fonduer entries that are correct but absent from
      the existing KB;
    * increase — (correct entries in existing KB + new correct) / correct
      entries in existing KB.
    """
    fonduer: Set[EntityTuple] = set(fonduer_entries)
    existing: Set[EntityTuple] = set(existing_entries)
    truth: Set[EntityTuple] = set(ground_truth)

    coverage = len(fonduer & existing) / len(existing) if existing else 0.0
    accuracy = len(fonduer & truth) / len(fonduer) if fonduer else 0.0
    existing_correct = existing & truth
    new_correct = (fonduer & truth) - existing
    if existing_correct:
        increase = (len(existing_correct) + len(new_correct)) / len(existing_correct)
    else:
        increase = float(len(new_correct)) if new_correct else 0.0

    return KBComparison(
        n_existing_entries=len(existing),
        n_fonduer_entries=len(fonduer),
        coverage=coverage,
        accuracy=accuracy,
        n_new_correct_entries=len(new_correct),
        increase_in_correct_entries=increase,
    )
