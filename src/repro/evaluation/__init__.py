"""Evaluation: precision/recall/F1 and comparisons against existing KBs."""

from repro.evaluation.metrics import (
    EvaluationResult,
    evaluate_binary,
    evaluate_entity_tuples,
    f1_score,
    precision_recall_f1,
)
from repro.evaluation.kb_compare import KBComparison, compare_knowledge_bases

__all__ = [
    "EvaluationResult",
    "KBComparison",
    "compare_knowledge_bases",
    "evaluate_binary",
    "evaluate_entity_tuples",
    "f1_score",
    "precision_recall_f1",
]
