"""Mmap-shared segment arenas: the no-copy read path of the serving tier.

A heap :class:`~repro.kb.store.Segment` parses its JSON payload into Python
lists and rebuilds its hash indexes on every load — per process.  A serving
tier running ``--workers N`` would hold N private copies of the same
immutable data.  The **arena** is the fix: a binary sidecar file derived
once from a segment's JSON payload, laid out so every heavy structure — the
marginal column, the index posting lists, the pre-serialized row payloads —
is consumed *in place* through ``mmap``:

* workers share one page-cache copy of each arena (file-backed mappings are
  shared physical pages), so worker N+1 adds only the small per-process key
  tables to anonymous memory — measured by the RSS tests as ``RssAnon``
  growth far below the segment's data size;
* loading is O(header): no JSON parse of row data, no index rebuild — the
  postings were sorted at build time;
* responses splice raw row bytes (each row was pre-serialized at build
  time, provenance and all), skipping per-request re-serialization.

Arenas are **derived, content-addressed caches**: ``seg-00000-<hash>.json``
maps to ``seg-00000-<hash>.arena``.  The name pins the source content, so an
arena can never go stale — republication rotates the filename, and pruning
a segment prunes its arena.  A missing or damaged arena is rebuilt from the
JSON source (and if that fails, the store falls back to a heap segment);
corruption here never quarantines anything because the arena is not the
artifact of record.

Layout (all sections 16-byte aligned, little-endian)::

    magic   b"KBARENA2"
    u64     header length
    json    header: n_rows, shard_id, position, section offsets/lengths,
            index key tables ({key: [start, end] into the postings array})
    f8[n]   marginals
    i8[n]   interval_lo (span-interval lower pre ranks; -1 = unrecorded)
    i8[n]   interval_hi (span-interval upper pre ranks)
    i8[n]   pre_sorted  (interval_lo values, ascending)
    i8[n]   pre_order   (row ids in interval_lo order — the sort's argsort)
    i8[n+1] row byte offsets (into the rows blob)
    i8[m]   index postings (local row ids, grouped per key, sorted)
    bytes   rows blob (concatenated JSON row objects, utf-8)

The magic is a generation stamp: adding the interval sections bumped it from
``KBARENA1`` to ``KBARENA2``, so an arena built under the old layout fails
the magic check and is rebuilt from its JSON source — the derived-cache
fallback, not an error.
"""

from __future__ import annotations

import json
import mmap
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.kb.query import KBQuery, normalize_entity
from repro.storage.atomic import atomic_write_bytes

ARENA_MAGIC = b"KBARENA2"
ARENA_SUFFIX = ".arena"


def arena_path_for(segment_path: Path) -> Path:
    """The arena sidecar path of a segment JSON file."""
    return segment_path.with_suffix(ARENA_SUFFIX)


def _aligned(offset: int, alignment: int = 16) -> int:
    return (offset + alignment - 1) // alignment * alignment


def build_indexes(columns: Dict[str, List[Any]]) -> Dict[str, Dict[str, List[int]]]:
    """The three hash indexes of one segment, as plain posting lists.

    Shared by the heap :class:`~repro.kb.store.Segment` and the arena
    builder so both representations index identically by construction.
    """
    n_rows = len(columns["marginal"])
    by_relation: Dict[str, List[int]] = {}
    by_doc: Dict[str, List[int]] = {}
    by_ngram: Dict[str, List[int]] = {}
    for row in range(n_rows):
        by_relation.setdefault(columns["relation"][row], []).append(row)
        by_doc.setdefault(columns["doc_name"][row], []).append(row)
        doc_path = columns["doc_path"][row]
        if doc_path and doc_path != columns["doc_name"][row]:
            by_doc.setdefault(doc_path, []).append(row)
        for entity in columns["entities"][row]:
            normalized = normalize_entity(entity)
            seen_keys = {normalized}
            seen_keys.update(normalized.split())
            for key in seen_keys:
                rows = by_ngram.setdefault(key, [])
                if not rows or rows[-1] != row:
                    rows.append(row)
    return {"relation": by_relation, "doc": by_doc, "ngram": by_ngram}


def build_arena(
    arena_path: Path,
    columns: Dict[str, List[Any]],
    position: int,
    shard_id: str,
) -> None:
    """Write the arena sidecar for one segment payload (atomic, durable).

    Row payloads are baked with their provenance constants (``shard_id``,
    ``shard``) so :meth:`MmapSegment.row` is one ``json.loads`` of a byte
    slice — and HTTP serving can splice the raw bytes without any loads.
    """
    n_rows = len(columns["marginal"])
    marginals = np.asarray(columns["marginal"], dtype="<f8")
    raw_intervals = columns.get("interval") or [(-1, -1)] * n_rows
    interval_lo = np.asarray(
        [interval[0] for interval in raw_intervals], dtype="<i8"
    )
    interval_hi = np.asarray(
        [interval[1] for interval in raw_intervals], dtype="<i8"
    )
    # Sorted-pre sidecar column: ``within`` queries binary-search the sorted
    # lower bounds instead of masking every row (see MmapSegment.match).
    pre_order = np.argsort(interval_lo, kind="stable").astype("<i8")
    pre_sorted = interval_lo[pre_order]
    row_blobs: List[bytes] = []
    for row in range(n_rows):
        row_blobs.append(
            json.dumps(
                {
                    "relation": columns["relation"][row],
                    "entities": list(columns["entities"][row]),
                    "doc_name": columns["doc_name"][row],
                    "doc_path": columns["doc_path"][row],
                    "spans": [list(span) for span in columns["spans"][row]],
                    "interval": [int(interval_lo[row]), int(interval_hi[row])],
                    "marginal": float(columns["marginal"][row]),
                    "candidate": int(columns["candidate"][row]),
                    "shard_id": shard_id,
                    "shard": position,
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
        )
    row_offsets = np.zeros(n_rows + 1, dtype="<i8")
    np.cumsum([len(blob) for blob in row_blobs], out=row_offsets[1:])
    rows_blob = b"".join(row_blobs)

    indexes = build_indexes(columns)
    postings: List[int] = []
    key_tables: Dict[str, Dict[str, List[int]]] = {}
    for index_name, index in indexes.items():
        table: Dict[str, List[int]] = {}
        for key, rows in index.items():
            start = len(postings)
            postings.extend(rows)
            table[key] = [start, len(postings)]
        key_tables[index_name] = table
    postings_array = np.asarray(postings, dtype="<i8")

    header: Dict[str, Any] = {
        "n_rows": n_rows,
        "position": int(position),
        "shard_id": shard_id,
        "indexes": key_tables,
    }
    # Two-pass layout: section offsets depend on the header length, which
    # depends on the offsets — resolved by measuring a draft header whose
    # offset digits are placeholders of the final width.
    sections = (
        "marginals",
        "interval_lo",
        "interval_hi",
        "pre_sorted",
        "pre_order",
        "row_offsets",
        "postings",
        "rows_blob",
    )
    sizes = {
        "marginals": marginals.nbytes,
        "interval_lo": interval_lo.nbytes,
        "interval_hi": interval_hi.nbytes,
        "pre_sorted": pre_sorted.nbytes,
        "pre_order": pre_order.nbytes,
        "row_offsets": row_offsets.nbytes,
        "postings": postings_array.nbytes,
        "rows_blob": len(rows_blob),
    }
    for name in sections:
        header[name] = [0, sizes[name]]
    prefix_len = len(ARENA_MAGIC) + 8
    for _ in range(3):
        header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        offset = _aligned(prefix_len + len(header_bytes))
        changed = False
        for name in sections:
            if header[name][0] != offset:
                header[name][0] = offset
                changed = True
            offset = _aligned(offset + sizes[name])
        if not changed:
            break

    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    total = max(
        header[name][0] + sizes[name] for name in sections
    ) if sections else prefix_len + len(header_bytes)
    buffer = bytearray(total)
    buffer[: len(ARENA_MAGIC)] = ARENA_MAGIC
    buffer[len(ARENA_MAGIC) : prefix_len] = len(header_bytes).to_bytes(8, "little")
    buffer[prefix_len : prefix_len + len(header_bytes)] = header_bytes
    for name, array in (
        ("marginals", marginals),
        ("interval_lo", interval_lo),
        ("interval_hi", interval_hi),
        ("pre_sorted", pre_sorted),
        ("pre_order", pre_order),
        ("row_offsets", row_offsets),
        ("postings", postings_array),
    ):
        start = header[name][0]
        buffer[start : start + array.nbytes] = array.tobytes()
    start = header["rows_blob"][0]
    buffer[start : start + len(rows_blob)] = rows_blob
    atomic_write_bytes(arena_path, bytes(buffer))


class MmapSegment:
    """One immutable segment consumed in place through ``mmap``.

    Interface-compatible with the heap :class:`~repro.kb.store.Segment`
    where the store and snapshot need it: ``match``/``row``/``row_bytes``,
    ``n_rows``, ``relation_counts``, ``filename``/``position``/``shard_id``.
    Only the index *key tables* (string -> postings slice) live on this
    process's heap; marginals, postings and row payloads stay file-backed.
    """

    _EMPTY = np.zeros(0, dtype=np.int64)

    def __init__(self, arena_path: Path, filename: str) -> None:
        self.filename = filename
        with open(arena_path, "rb") as handle:
            self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        view = memoryview(self._mmap)
        if view[: len(ARENA_MAGIC)] != ARENA_MAGIC:
            raise ValueError(f"{arena_path} is not an arena (bad magic)")
        prefix_len = len(ARENA_MAGIC) + 8
        header_len = int.from_bytes(view[len(ARENA_MAGIC) : prefix_len], "little")
        try:
            header = json.loads(bytes(view[prefix_len : prefix_len + header_len]))
        except json.JSONDecodeError as error:
            raise ValueError(f"{arena_path} has an unreadable header: {error}") from None
        self.n_rows = int(header["n_rows"])
        self.position = int(header["position"])
        self.shard_id = str(header["shard_id"])
        self._tables: Dict[str, Dict[str, tuple]] = {
            name: {key: (span[0], span[1]) for key, span in table.items()}
            for name, table in header["indexes"].items()
        }

        def section(name: str, dtype: str) -> np.ndarray:
            start, nbytes = header[name]
            return np.frombuffer(view[start : start + nbytes], dtype=dtype)

        self.marginals = section("marginals", "<f8")
        self.interval_lo = section("interval_lo", "<i8")
        self.interval_hi = section("interval_hi", "<i8")
        self._pre_sorted = section("pre_sorted", "<i8")
        self._pre_order = section("pre_order", "<i8")
        self._row_offsets = section("row_offsets", "<i8")
        self._postings = section("postings", "<i8")
        start, nbytes = header["rows_blob"]
        self._rows_blob = view[start : start + nbytes]

    # ------------------------------------------------------------- indexes
    def _lookup(self, index_name: str, key: str) -> np.ndarray:
        span = self._tables[index_name].get(key)
        if span is None:
            return self._EMPTY
        return self._postings[span[0] : span[1]]

    def match(self, query: KBQuery) -> np.ndarray:
        """Local row ids satisfying the query, ascending (storage order)."""
        selected: Optional[np.ndarray] = None
        if query.relation is not None:
            selected = self._lookup("relation", query.relation)
        if query.doc is not None:
            rows = self._lookup("doc", query.doc)
            selected = rows if selected is None else np.intersect1d(selected, rows)
        if query.entity is not None:
            rows = self._lookup("ngram", normalize_entity(query.entity))
            selected = rows if selected is None else np.intersect1d(selected, rows)
        if selected is None:
            selected = np.arange(self.n_rows, dtype=np.int64)
        bounds = query.within_bounds()
        if bounds is not None:
            lo, hi = bounds
            # Binary-search the sorted lower bounds: rows with interval_lo in
            # [lo, hi], then keep those whose upper bound also fits.  The
            # -1 sentinel of interval-less rows sorts below any valid lo >= 0,
            # so unrecorded rows are excluded automatically.
            start = int(np.searchsorted(self._pre_sorted, lo, side="left"))
            end = int(np.searchsorted(self._pre_sorted, hi, side="right"))
            rows = self._pre_order[start:end]
            rows = np.sort(rows[self.interval_hi[rows] <= hi])
            selected = np.intersect1d(selected, rows)
        if query.min_marginal is not None or query.max_marginal is not None:
            values = self.marginals[selected]
            mask = np.ones(len(selected), dtype=bool)
            if query.min_marginal is not None:
                mask &= values >= query.min_marginal
            if query.max_marginal is not None:
                mask &= values <= query.max_marginal
            selected = selected[mask]
        return selected

    # ---------------------------------------------------------------- rows
    def row_bytes(self, local_row: int) -> bytes:
        """The pre-serialized JSON of one row (spliced, never re-encoded)."""
        start = int(self._row_offsets[local_row])
        end = int(self._row_offsets[local_row + 1])
        return bytes(self._rows_blob[start:end])

    def row(self, local_row: int) -> Dict[str, Any]:
        """One tuple with its provenance, as a JSON-ready dict."""
        return json.loads(self.row_bytes(local_row))

    def relation_counts(self) -> Dict[str, int]:
        """Tuple count per relation (drives ``/v1/stats``)."""
        return {
            key: span[1] - span[0]
            for key, span in self._tables["relation"].items()
        }
