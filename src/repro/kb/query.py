"""Query surface of the KB store: the stable public request/response schema.

One :class:`KBQuery` expresses every filter the serving layer accepts —
relation name, source document (name or corpus-relative path), entity ngram,
marginal range, structural containment (``within``, a pre-order interval of
the document's node table) — plus pagination.  The same object drives the in-process API
(:meth:`repro.kb.store.KBSnapshot.query`), the versioned HTTP endpoint
(:mod:`repro.kb.server`, ``GET /v1/query``), the Python client
(:class:`repro.kb.client.KBClient`) and the ``python -m repro query`` CLI,
so all four surfaces answer identically.

Pagination is **cursor-based** on the public API: each page carries an
opaque ``next_cursor`` token encoding ``(segment position, offset within
that segment's matches)``, resumable in O(segments) instead of re-skipping
``offset`` rows.  The raw ``offset`` parameter survives for the in-process
API and the deprecated pre-``/v1`` HTTP paths only.

Cache canonicalization
----------------------
:meth:`KBQuery.canonical_key` is the serving tier's response-cache key:
sorted fields, defaults omitted, the ``entity`` filter normalized exactly
like the index lookup normalizes it — so ``?entity=ALPHA%20beta`` and
``?entity=alpha+beta`` (or any query-string ordering) share one cache entry.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Default and maximum page sizes of the serving layer.
DEFAULT_LIMIT = 50
MAX_LIMIT = 1000


class DeadlineExceeded(RuntimeError):
    """A query ran past its per-request deadline.

    Raised from inside :meth:`repro.kb.store.KBSnapshot.query`'s segment
    loop (checked between segments, so the overshoot is bounded by one
    segment's scan time); the HTTP layer maps it to ``504``.
    """


def normalize_entity(value: str) -> str:
    """Entity-level normalization (mirrors ``KnowledgeBase.normalize``)."""
    return " ".join(str(value).strip().lower().split())


def encode_cursor(segment: int, offset: int) -> str:
    """Encode a resume position as an opaque, URL-safe token.

    ``segment`` is the shard position of the segment the next page starts
    in; ``offset`` is how many of *that segment's* matches earlier pages
    already consumed.  The token is base64 so clients treat it as opaque —
    its layout may change without a client-visible API break.
    """
    payload = json.dumps({"s": int(segment), "o": int(offset)}, separators=(",", ":"))
    return base64.urlsafe_b64encode(payload.encode("ascii")).decode("ascii").rstrip("=")


def decode_cursor(token: str) -> Tuple[int, int]:
    """Decode a cursor token back to ``(segment, offset)``; raises ValueError."""
    try:
        padded = token + "=" * (-len(token) % 4)
        payload = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
        segment, offset = int(payload["s"]), int(payload["o"])
    except (binascii.Error, ValueError, KeyError, TypeError, UnicodeEncodeError):
        raise ValueError(f"Malformed cursor {token!r}") from None
    if segment < 0 or offset < 0:
        raise ValueError(f"Malformed cursor {token!r}")
    return segment, offset


@dataclass
class KBQuery:
    """One filtered, paginated lookup against a KB snapshot.

    Every filter is optional and they compose conjunctively.  ``entity``
    matches via the entity-ngram hash index: a single word matches any tuple
    whose entities contain that word; a multi-word value matches tuples with
    that exact (normalized) entity string.

    ``cursor`` and ``offset`` are mutually exclusive ways to start a page:
    ``cursor`` is the public, O(segments) resume token from a previous
    page's ``next_cursor``; ``offset`` is the legacy row-skip kept for the
    in-process API and the deprecated HTTP paths.
    """

    relation: Optional[str] = None
    doc: Optional[str] = None
    entity: Optional[str] = None
    #: Structural containment filter: ``"LO-HI"``, a container's pre-order
    #: interval in its document's node table (see
    #: :mod:`repro.data_model.nodes`).  Matches tuples whose recorded span
    #: interval lies inside ``[LO, HI]`` — "tuples extracted from inside this
    #: table/section".  Requires ``doc`` (pre ranks are per-document).
    within: Optional[str] = None
    min_marginal: Optional[float] = None
    max_marginal: Optional[float] = None
    offset: int = 0
    limit: int = DEFAULT_LIMIT
    cursor: Optional[str] = None

    def within_bounds(self) -> Optional[Tuple[int, int]]:
        """The parsed ``(lo, hi)`` of the ``within`` filter, or ``None``.

        Raises :class:`ValueError` on a malformed value — two ``-``-separated
        non-negative integers with ``lo <= hi`` are required.
        """
        if self.within is None:
            return None
        parts = str(self.within).split("-")
        try:
            if len(parts) != 2:
                raise ValueError
            lo, hi = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"within must be 'LO-HI' (two non-negative integers), "
                f"got {self.within!r}"
            ) from None
        if lo < 0 or hi < lo:
            raise ValueError(
                f"within bounds must satisfy 0 <= LO <= HI, got {self.within!r}"
            )
        return lo, hi

    def validate(self) -> "KBQuery":
        if self.offset < 0:
            raise ValueError("offset must be non-negative")
        if self.within_bounds() is not None and self.doc is None:
            raise ValueError(
                "within requires a doc filter: pre-order ranks are "
                "per-document, so a container interval only identifies a "
                "subtree together with its document"
            )
        if not 1 <= self.limit <= MAX_LIMIT:
            raise ValueError(f"limit must lie in [1, {MAX_LIMIT}]")
        for name in ("min_marginal", "max_marginal"):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.cursor is not None:
            if self.offset:
                raise ValueError("cursor and offset are mutually exclusive")
            decode_cursor(self.cursor)
        return self

    @classmethod
    def from_params(
        cls, params: Dict[str, str], allow_offset: bool = True
    ) -> "KBQuery":
        """Build a query from string parameters (HTTP query string / CLI).

        Unknown parameters raise — a typo like ``?relaton=`` silently
        matching everything is how serving bugs hide.  The versioned API
        passes ``allow_offset=False``: cursor pagination replaced raw
        offsets there, and a client sending one gets a clear error instead
        of silently inconsistent pages.
        """
        known = {
            "relation",
            "doc",
            "entity",
            "within",
            "min_marginal",
            "max_marginal",
            "offset",
            "limit",
            "cursor",
        }
        unknown = set(params) - known
        if unknown:
            raise ValueError(f"Unknown query parameter(s): {', '.join(sorted(unknown))}")
        if not allow_offset and "offset" in params:
            raise ValueError(
                "offset is not supported on /v1; paginate with the cursor "
                "token from the previous page's next_cursor"
            )
        query = cls(
            relation=params.get("relation"),
            doc=params.get("doc"),
            entity=params.get("entity"),
            within=params.get("within"),
            cursor=params.get("cursor"),
        )
        try:
            if "min_marginal" in params:
                query.min_marginal = float(params["min_marginal"])
            if "max_marginal" in params:
                query.max_marginal = float(params["max_marginal"])
            if "offset" in params:
                query.offset = int(params["offset"])
            if "limit" in params:
                query.limit = int(params["limit"])
        except ValueError as error:
            raise ValueError(f"Malformed numeric query parameter: {error}") from None
        return query.validate()

    def to_params(self) -> Dict[str, str]:
        """The query-string form of this query (inverse of ``from_params``).

        Defaults are omitted, so a round-trip through a URL reproduces the
        same canonical key.  Used by :class:`repro.kb.client.KBClient` and
        the benchmark clients.
        """
        params: Dict[str, str] = {}
        for name in ("relation", "doc", "entity", "within", "cursor"):
            value = getattr(self, name)
            if value is not None:
                params[name] = str(value)
        for name in ("min_marginal", "max_marginal"):
            value = getattr(self, name)
            if value is not None:
                params[name] = repr(float(value))
        if self.offset:
            params["offset"] = str(self.offset)
        if self.limit != DEFAULT_LIMIT:
            params["limit"] = str(self.limit)
        return params

    def canonical_key(self) -> str:
        """A serialization under which semantically equal queries collide.

        Field order is fixed (sorted), defaults are omitted, floats are
        serialized via ``repr`` (stable across processes), and ``entity``
        is normalized exactly like the ngram index normalizes it — the
        lookups for ``"ALPHA  beta"`` and ``"alpha beta"`` are the same
        lookup, so they must share one response-cache entry.
        """
        parts: Dict[str, Any] = {}
        if self.relation is not None:
            parts["relation"] = self.relation
        if self.doc is not None:
            parts["doc"] = self.doc
        if self.entity is not None:
            parts["entity"] = normalize_entity(self.entity)
        if self.within is not None:
            # Canonicalize through the parsed bounds: "03-7" and "3-7" are
            # the same interval and must share one response-cache entry.
            lo, hi = self.within_bounds()
            parts["within"] = f"{lo}-{hi}"
        if self.min_marginal is not None:
            parts["min_marginal"] = repr(float(self.min_marginal))
        if self.max_marginal is not None:
            parts["max_marginal"] = repr(float(self.max_marginal))
        if self.offset:
            parts["offset"] = self.offset
        if self.cursor is not None:
            parts["cursor"] = self.cursor
        parts["limit"] = self.limit
        return json.dumps(parts, sort_keys=True, separators=(",", ":"))


@dataclass
class QueryResult:
    """One page of matches plus the totals pagination needs.

    ``version`` is the snapshot version the page was served from — a client
    paginating across pages can detect a republication between requests by
    watching it change.  ``next_cursor`` resumes the scan at the following
    match (``None`` on the last page).
    """

    version: int
    total: int
    offset: int
    limit: int
    rows: List[Dict[str, Any]] = field(default_factory=list)
    next_cursor: Optional[str] = None

    @property
    def has_more(self) -> bool:
        return self.next_cursor is not None

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "total": self.total,
            "offset": self.offset,
            "limit": self.limit,
            "has_more": self.has_more,
            "next_cursor": self.next_cursor,
            "rows": self.rows,
        }
