"""Query surface of the KB store: filters, pagination, result envelope.

One :class:`KBQuery` expresses every filter the serving layer accepts —
relation name, source document (name or corpus-relative path), entity ngram,
marginal range — plus offset/limit pagination.  The same object drives the
in-process API (:meth:`repro.kb.store.KBSnapshot.query`), the HTTP endpoint
(:mod:`repro.kb.server`) and the ``python -m repro query`` CLI, so all three
surfaces answer identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Default and maximum page sizes of the serving layer.
DEFAULT_LIMIT = 50
MAX_LIMIT = 1000


class DeadlineExceeded(RuntimeError):
    """A query ran past its per-request deadline.

    Raised from inside :meth:`repro.kb.store.KBSnapshot.query`'s segment
    loop (checked between segments, so the overshoot is bounded by one
    segment's scan time); the HTTP layer maps it to ``504``.
    """


def normalize_entity(value: str) -> str:
    """Entity-level normalization (mirrors ``KnowledgeBase.normalize``)."""
    return " ".join(str(value).strip().lower().split())


@dataclass
class KBQuery:
    """One filtered, paginated lookup against a KB snapshot.

    Every filter is optional and they compose conjunctively.  ``entity``
    matches via the entity-ngram hash index: a single word matches any tuple
    whose entities contain that word; a multi-word value matches tuples with
    that exact (normalized) entity string.
    """

    relation: Optional[str] = None
    doc: Optional[str] = None
    entity: Optional[str] = None
    min_marginal: Optional[float] = None
    max_marginal: Optional[float] = None
    offset: int = 0
    limit: int = DEFAULT_LIMIT

    def validate(self) -> "KBQuery":
        if self.offset < 0:
            raise ValueError("offset must be non-negative")
        if not 1 <= self.limit <= MAX_LIMIT:
            raise ValueError(f"limit must lie in [1, {MAX_LIMIT}]")
        for name in ("min_marginal", "max_marginal"):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        return self

    @classmethod
    def from_params(cls, params: Dict[str, str]) -> "KBQuery":
        """Build a query from string parameters (HTTP query string / CLI).

        Unknown parameters raise — a typo like ``?relaton=`` silently
        matching everything is how serving bugs hide.
        """
        known = {
            "relation",
            "doc",
            "entity",
            "min_marginal",
            "max_marginal",
            "offset",
            "limit",
        }
        unknown = set(params) - known
        if unknown:
            raise ValueError(f"Unknown query parameter(s): {', '.join(sorted(unknown))}")
        query = cls(
            relation=params.get("relation"),
            doc=params.get("doc"),
            entity=params.get("entity"),
        )
        try:
            if "min_marginal" in params:
                query.min_marginal = float(params["min_marginal"])
            if "max_marginal" in params:
                query.max_marginal = float(params["max_marginal"])
            if "offset" in params:
                query.offset = int(params["offset"])
            if "limit" in params:
                query.limit = int(params["limit"])
        except ValueError as error:
            raise ValueError(f"Malformed numeric query parameter: {error}") from None
        return query.validate()


@dataclass
class QueryResult:
    """One page of matches plus the totals pagination needs.

    ``version`` is the snapshot version the page was served from — a client
    paginating across pages can detect a republication between requests by
    watching it change.
    """

    version: int
    total: int
    offset: int
    limit: int
    rows: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def has_more(self) -> bool:
        return self.offset + len(self.rows) < self.total

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "total": self.total,
            "offset": self.offset,
            "limit": self.limit,
            "has_more": self.has_more,
            "rows": self.rows,
        }
