"""The queryable KB store: versioned, columnar, snapshot-isolated.

The paper's end product is a *knowledge base* served to users ("serves heavy
traffic from millions of users" is the ROADMAP north star), yet the pipeline
used to stop at per-shard classification slabs.  This module is the missing
read side: a :class:`KBStore` persists the classified relation mentions —
with full provenance (document path, mention spans, marginal, shard id) — in
a layout built for concurrent reads and incremental republication.

Layout under the store's root::

    kb/
      snapshot.json                  # the atomically-swapped snapshot pointer
      segments/
        seg-00000-<contenthash>.json # immutable per-shard columnar segment
        seg-00001-<contenthash>.json

Segments are **immutable**: a segment file is named by the content hash of
its payload and never rewritten.  A re-run that changes one shard's extracted
tuples writes one *new* segment file; everything the other shards contributed
is reused byte-for-byte.  The snapshot pointer is the only mutable file — it
lists the current segment set (with the classify cache key each segment was
computed under) and is replaced via
:func:`~repro.storage.atomic.atomic_write`, so readers see the old complete
snapshot or the new complete snapshot and nothing in between.

Snapshot isolation
------------------
:meth:`KBStore.snapshot` returns a :class:`KBSnapshot` whose segment objects
are fully loaded at construction.  A snapshot is therefore an immutable value:
concurrent upserts publish *new* pointers and *new* segment files without
touching anything a live snapshot references, so a reader paginating through
results mid-upsert keeps a consistent view for as long as it holds the
snapshot object.  Loaded segments are cached in a shared
:class:`~repro.storage.lru.BoundedLRU` keyed by (immutable) file name, so
consecutive snapshots share the segments that did not change.

Incremental republication
-------------------------
:meth:`KBStore.begin_update` opens a :class:`KBUpdate`.  For each shard the
caller either proves the existing segment current (its recorded classify key
matches the key derived from this run's cache-key chain —
:meth:`KBUpdate.reuse_if_current`) or supplies the shard's classified tuples
(:meth:`KBUpdate.upsert`), which writes a segment file only when the content
actually changed.  :meth:`KBUpdate.publish` swaps the pointer and prunes
segment files no snapshot references (keeping the immediately previous
generation as a grace set for concurrent cross-process readers).

Query surface
-------------
Each segment builds hash indexes over relation name, document (name and
path) and entity *ngrams* (word unigrams plus the full normalized entity
string), so the common lookups — "all tuples of relation R", "what was
extracted from document D", "tuples mentioning 'xc9536'" — resolve in O(1)
per segment without scanning rows.  See :mod:`repro.kb.query` for the filter
/ pagination semantics and :mod:`repro.kb.server` for the HTTP face.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.engine.fingerprint import stable_fingerprint
from repro.kb.query import KBQuery, QueryResult, normalize_entity
from repro.storage.atomic import atomic_write_text
from repro.storage.lru import BoundedLRU, resolve_bound

#: Version of the on-disk KB layout; a pointer written under a different
#: version is ignored (safe rebuild).  Participates in the KBOp fingerprint,
#: so a layout change re-publishes every segment instead of silently reusing
#: files written under the old schema.
KB_SCHEMA_VERSION = 1

SNAPSHOT_FILE = "snapshot.json"
SEGMENTS_DIR = "segments"

#: The columnar layout of one segment: parallel arrays, one entry per tuple.
SEGMENT_COLUMNS = (
    "relation",
    "doc_name",
    "doc_path",
    "entities",
    "spans",
    "marginal",
    "candidate",
)


class Segment:
    """One immutable columnar segment plus its hash indexes.

    ``columns`` holds the parallel arrays; the three indexes map a key to a
    sorted array of local row ids.  Indexes are built once at load time —
    segments are immutable, so they can never go stale.
    """

    def __init__(
        self,
        filename: str,
        position: int,
        shard_id: str,
        columns: Dict[str, List[Any]],
    ) -> None:
        self.filename = filename
        self.position = position
        self.shard_id = shard_id
        self.columns = columns
        self.n_rows = len(columns["marginal"])
        self.marginals = np.asarray(columns["marginal"], dtype=np.float64)
        by_relation: Dict[str, List[int]] = {}
        by_doc: Dict[str, List[int]] = {}
        by_ngram: Dict[str, List[int]] = {}
        for row in range(self.n_rows):
            by_relation.setdefault(columns["relation"][row], []).append(row)
            by_doc.setdefault(columns["doc_name"][row], []).append(row)
            doc_path = columns["doc_path"][row]
            if doc_path and doc_path != columns["doc_name"][row]:
                by_doc.setdefault(doc_path, []).append(row)
            for entity in columns["entities"][row]:
                normalized = normalize_entity(entity)
                seen_keys = {normalized}
                seen_keys.update(normalized.split())
                for key in seen_keys:
                    rows = by_ngram.setdefault(key, [])
                    if not rows or rows[-1] != row:
                        rows.append(row)
        self.by_relation = {k: np.asarray(v, dtype=np.int64) for k, v in by_relation.items()}
        self.by_doc = {k: np.asarray(v, dtype=np.int64) for k, v in by_doc.items()}
        self.by_ngram = {k: np.asarray(v, dtype=np.int64) for k, v in by_ngram.items()}

    # -------------------------------------------------------------- querying
    _EMPTY = np.zeros(0, dtype=np.int64)

    def match(self, query: KBQuery) -> np.ndarray:
        """Local row ids satisfying the query, ascending (storage order)."""
        selected: Optional[np.ndarray] = None
        if query.relation is not None:
            selected = self.by_relation.get(query.relation, self._EMPTY)
        if query.doc is not None:
            rows = self.by_doc.get(query.doc, self._EMPTY)
            selected = rows if selected is None else np.intersect1d(selected, rows)
        if query.entity is not None:
            rows = self.by_ngram.get(normalize_entity(query.entity), self._EMPTY)
            selected = rows if selected is None else np.intersect1d(selected, rows)
        if selected is None:
            selected = np.arange(self.n_rows, dtype=np.int64)
        if query.min_marginal is not None or query.max_marginal is not None:
            values = self.marginals[selected]
            mask = np.ones(len(selected), dtype=bool)
            if query.min_marginal is not None:
                mask &= values >= query.min_marginal
            if query.max_marginal is not None:
                mask &= values <= query.max_marginal
            selected = selected[mask]
        return selected

    def row(self, local_row: int) -> Dict[str, Any]:
        """One tuple with its provenance, as a JSON-ready dict."""
        columns = self.columns
        return {
            "relation": columns["relation"][local_row],
            "entities": list(columns["entities"][local_row]),
            "doc_name": columns["doc_name"][local_row],
            "doc_path": columns["doc_path"][local_row],
            "spans": [list(span) for span in columns["spans"][local_row]],
            "marginal": float(columns["marginal"][local_row]),
            "candidate": int(columns["candidate"][local_row]),
            "shard_id": self.shard_id,
            "shard": self.position,
        }


class KBSnapshot:
    """An immutable, fully-loaded view of the KB at one published version.

    Everything a query touches — the segment list, each segment's columns and
    indexes — is referenced (not re-read) for the lifetime of the snapshot
    object, so queries against it are consistent regardless of concurrent
    publishes.
    """

    def __init__(self, version: int, records: List[Dict[str, Any]], segments: List[Segment]) -> None:
        self.version = version
        self.records = records
        self.segments = segments
        self.n_tuples = sum(segment.n_rows for segment in segments)

    def query(self, query: Optional[KBQuery] = None, **kwargs: Any) -> QueryResult:
        """Filter + paginate over the snapshot (see :class:`KBQuery`).

        Matches are ordered globally: segments in shard-position order, rows
        in storage (candidate) order within a segment — the stable order
        pagination relies on.
        """
        if query is None:
            query = KBQuery(**kwargs)
        elif kwargs:
            raise TypeError("Pass either a KBQuery or keyword filters, not both")
        query.validate()
        rows: List[Dict[str, Any]] = []
        total = 0
        remaining_offset = query.offset
        for segment in self.segments:
            matches = segment.match(query)
            total += len(matches)
            if len(rows) >= query.limit:
                continue
            for local_row in matches:
                if remaining_offset > 0:
                    remaining_offset -= 1
                    continue
                if len(rows) >= query.limit:
                    break
                rows.append(segment.row(int(local_row)))
        return QueryResult(
            version=self.version,
            total=total,
            offset=query.offset,
            limit=query.limit,
            rows=rows,
        )

    def iter_rows(self) -> Iterator[Dict[str, Any]]:
        """Every tuple in global order (used by rebuild-equivalence tests)."""
        for segment in self.segments:
            for local_row in range(segment.n_rows):
                yield segment.row(local_row)

    def stats(self) -> Dict[str, Any]:
        """Summary the ``/stats`` endpoint serves."""
        relations: Dict[str, int] = {}
        for segment in self.segments:
            for relation, rows in segment.by_relation.items():
                relations[relation] = relations.get(relation, 0) + len(rows)
        return {
            "version": self.version,
            "n_tuples": self.n_tuples,
            "n_segments": len(self.segments),
            "relations": relations,
            "segments": [
                {
                    "shard": segment.position,
                    "shard_id": segment.shard_id,
                    "file": segment.filename,
                    "n_tuples": segment.n_rows,
                }
                for segment in self.segments
            ],
        }


class KBStore:
    """Disk-resident queryable KB with snapshot-pointer versioning.

    Thread-safe: :meth:`snapshot` may be called from any number of serving
    threads while another thread runs a :class:`KBUpdate`; each call returns
    the latest *published* snapshot.  Cross-process works too — the pointer
    file is re-read (and changed segments re-loaded) whenever its version
    advances, which is what lets ``python -m repro serve`` pick up a
    re-published KB without restarting.
    """

    def __init__(self, root: Any, max_cached_segments: int = 16) -> None:
        # No mkdir here: opening a store is a read-side operation (query,
        # serve), and a mistyped path must read as "nothing published", not
        # silently materialize an empty store tree.  KBUpdate creates the
        # directories when something is actually written.
        self.root = Path(root)
        self.segments_dir = self.root / SEGMENTS_DIR
        self.pointer_path = self.root / SNAPSHOT_FILE
        self._lock = threading.RLock()
        # filename -> Segment; filenames are content hashes, so entries can
        # never go stale — the bound only caps memory across republishes.
        self._segments = BoundedLRU(resolve_bound(max_cached_segments))
        self._snapshot: Optional[KBSnapshot] = None

    # -------------------------------------------------------------- pointer
    def read_pointer(self) -> Optional[Dict[str, Any]]:
        """Parse the snapshot pointer; ``None`` when absent/invalid/other-schema."""
        try:
            payload = json.loads(self.pointer_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema_version") != KB_SCHEMA_VERSION:
            return None
        return payload

    @property
    def version(self) -> int:
        """The currently published snapshot version (0 = nothing published)."""
        pointer = self.read_pointer()
        return int(pointer["version"]) if pointer else 0

    # ------------------------------------------------------------- snapshot
    def _load_segment(self, record: Dict[str, Any]) -> Segment:
        filename = str(record["file"])

        def load() -> Segment:
            payload = json.loads((self.segments_dir / filename).read_text())
            return Segment(
                filename=filename,
                position=int(record["position"]),
                shard_id=str(record["shard_id"]),
                columns=payload["columns"],
            )

        return self._segments.get_or_load(filename, load)

    def snapshot(self) -> KBSnapshot:
        """The latest published snapshot (an immutable, fully-loaded view).

        Robust against a *cross-process* publish racing the load: if a
        writer in another process publishes twice between our pointer read
        and the segment loads (exhausting the one-generation prune grace), a
        referenced file may be gone — the pointer is simply re-read and the
        load retried, and the newer pointer's files are guaranteed present.
        """
        last_error: Optional[FileNotFoundError] = None
        for _ in range(5):
            with self._lock:
                pointer = self.read_pointer()
                if pointer is None:
                    if self._snapshot is None or self._snapshot.version != 0:
                        self._snapshot = KBSnapshot(0, [], [])
                    return self._snapshot
                version = int(pointer["version"])
                if self._snapshot is not None and self._snapshot.version == version:
                    return self._snapshot
                records = sorted(pointer["segments"], key=lambda r: int(r["position"]))
                try:
                    segments = [self._load_segment(record) for record in records]
                except FileNotFoundError as error:
                    last_error = error
                    continue
                self._snapshot = KBSnapshot(version, records, segments)
                return self._snapshot
        raise last_error  # pragma: no cover - needs 5 racing publishes

    # --------------------------------------------------------------- update
    def begin_update(self) -> "KBUpdate":
        """Open an incremental update against the current pointer."""
        return KBUpdate(self)

    def rebuild(self) -> "KBUpdate":
        """Open an update that ignores the current pointer (full rebuild).

        Every shard must be upserted; reuse-by-key is disabled.  Segment
        files are still content-addressed, so a rebuild that derives the
        same tuples produces byte-identical segment files (the property the
        rebuild-equivalence tests pin down).
        """
        update = KBUpdate(self)
        update._base_records = {}
        return update


class KBUpdate:
    """One incremental republication: reuse, upsert, publish.

    Accounting mirrors the engine's resume counters so the cache-key tests
    can assert *exactly* which shards were touched:

    ``n_reused``
        segments proven current by classify-key match — tuples never even
        recomputed by the caller;
    ``n_unchanged``
        shards whose tuples were recomputed but hash to the segment file
        already on disk — nothing written;
    ``n_written``
        new segment files actually written.
    """

    def __init__(self, store: KBStore) -> None:
        self._store = store
        store.segments_dir.mkdir(parents=True, exist_ok=True)
        pointer = store.read_pointer() or {"version": 0, "segments": []}
        self._base_version = int(pointer["version"])
        self._base_records: Dict[int, Dict[str, Any]] = {
            int(record["position"]): record for record in pointer["segments"]
        }
        self._base_files = {str(record["file"]) for record in pointer["segments"]}
        self._records: Dict[int, Dict[str, Any]] = {}
        self.n_reused = 0
        self.n_unchanged = 0
        self.n_written = 0
        self._published = False

    # ---------------------------------------------------------------- steps
    def reuse_if_current(self, position: int, key: str) -> bool:
        """Keep the existing segment when its classify key matches ``key``.

        Requires the recorded key *and* the segment file on disk (a manually
        deleted segment reads as stale, like a deleted slab in the shard
        store), so a crash can never resurrect a half-published state.
        """
        record = self._base_records.get(position)
        if (
            record is None
            or record.get("key") != key
            or not (self._store.segments_dir / str(record["file"])).exists()
        ):
            return False
        self._records[position] = dict(record)
        self.n_reused += 1
        return True

    def adopt(
        self, position: int, shard_id: str, key: str, filename: str, n_rows: int
    ) -> bool:
        """Adopt a segment recorded *outside* the pointer (checkpoint resume).

        The streaming pipeline checkpoints each shard's published segment in
        the shard's own durable ``stages.json`` the moment it is written —
        before the end-of-run pointer swap — so a run killed between a KB
        boundary and ``publish`` resumes those shards instead of refiltering
        them.  Adoption still requires the segment file on disk.
        """
        if not (self._store.segments_dir / filename).exists():
            return False
        self._records[position] = {
            "position": position,
            "shard_id": shard_id,
            "key": key,
            "file": filename,
            "n_rows": int(n_rows),
        }
        self.n_reused += 1
        return True

    def upsert(
        self,
        position: int,
        shard_id: str,
        key: str,
        rows: Sequence[Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Write one shard's classified tuples as an immutable segment.

        ``rows`` are dicts with the :data:`SEGMENT_COLUMNS` fields.  Returns
        the pointer record of the segment; when the content hash matched a
        file already on disk (e.g. a threshold edit that did not change this
        shard's above-threshold set) the existing file is adopted unchanged
        (``n_unchanged`` instead of ``n_written``).
        """
        columns: Dict[str, List[Any]] = {name: [] for name in SEGMENT_COLUMNS}
        for row in rows:
            for name in SEGMENT_COLUMNS:
                columns[name].append(row[name])
        payload = {
            "schema_version": KB_SCHEMA_VERSION,
            "shard_id": shard_id,
            "columns": columns,
        }
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        filename = f"seg-{position:05d}-{stable_fingerprint(body)[:16]}.json"
        path = self._store.segments_dir / filename
        if not path.exists():
            atomic_write_text(path, body)
            self.n_written += 1
        else:
            self.n_unchanged += 1
        record = {
            "position": position,
            "shard_id": shard_id,
            "key": key,
            "file": filename,
            "n_rows": len(rows),
        }
        self._records[position] = record
        return record

    def publish(self, meta: Optional[Dict[str, Any]] = None) -> KBSnapshot:
        """Atomically swap the snapshot pointer to this update's segment set.

        Prunes segment files referenced by neither the new pointer nor the
        one it replaced — the previous generation survives one publish as a
        grace set for readers in *other processes* that loaded the old
        pointer moments ago (in-process readers hold fully-loaded snapshot
        objects and never re-read files).
        """
        if self._published:
            raise RuntimeError("KBUpdate.publish may only be called once")
        store = self._store
        with store._lock:
            records = [self._records[p] for p in sorted(self._records)]
            pointer = {
                "schema_version": KB_SCHEMA_VERSION,
                "version": self._base_version + 1,
                "total_rows": sum(int(r["n_rows"]) for r in records),
                "segments": records,
                "meta": meta or {},
            }
            atomic_write_text(
                store.pointer_path, json.dumps(pointer, indent=2, sort_keys=True)
            )
            keep = {str(r["file"]) for r in records} | self._base_files
            for stale in store.segments_dir.glob("seg-*.json"):
                if stale.name not in keep:
                    stale.unlink(missing_ok=True)
                    store._segments.pop(stale.name)
            self._published = True
            store._snapshot = None
            return store.snapshot()
