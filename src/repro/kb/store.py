"""The queryable KB store: versioned, columnar, snapshot-isolated.

The paper's end product is a *knowledge base* served to users ("serves heavy
traffic from millions of users" is the ROADMAP north star), yet the pipeline
used to stop at per-shard classification slabs.  This module is the missing
read side: a :class:`KBStore` persists the classified relation mentions —
with full provenance (document path, mention spans, marginal, shard id) — in
a layout built for concurrent reads and incremental republication.

Layout under the store's root::

    kb/
      snapshot.json                  # the atomically-swapped snapshot pointer
      segments/
        seg-00000-<contenthash>.json # immutable per-shard columnar segment
        seg-00001-<contenthash>.json

Segments are **immutable**: a segment file is named by the content hash of
its payload and never rewritten.  A re-run that changes one shard's extracted
tuples writes one *new* segment file; everything the other shards contributed
is reused byte-for-byte.  The snapshot pointer is the only mutable file — it
lists the current segment set (with the classify cache key each segment was
computed under) and is replaced via
:func:`~repro.storage.atomic.atomic_write`, so readers see the old complete
snapshot or the new complete snapshot and nothing in between.

Snapshot isolation
------------------
:meth:`KBStore.snapshot` returns a :class:`KBSnapshot` whose segment objects
are fully loaded at construction.  A snapshot is therefore an immutable value:
concurrent upserts publish *new* pointers and *new* segment files without
touching anything a live snapshot references, so a reader paginating through
results mid-upsert keeps a consistent view for as long as it holds the
snapshot object.  Loaded segments are cached in a shared
:class:`~repro.storage.lru.BoundedLRU` keyed by (immutable) file name, so
consecutive snapshots share the segments that did not change.

Incremental republication
-------------------------
:meth:`KBStore.begin_update` opens a :class:`KBUpdate`.  For each shard the
caller either proves the existing segment current (its recorded classify key
matches the key derived from this run's cache-key chain —
:meth:`KBUpdate.reuse_if_current`) or supplies the shard's classified tuples
(:meth:`KBUpdate.upsert`), which writes a segment file only when the content
actually changed.  :meth:`KBUpdate.publish` swaps the pointer and prunes
segment files no snapshot references (keeping the immediately previous
generation as a grace set for concurrent cross-process readers).

Query surface
-------------
Each segment builds hash indexes over relation name, document (name and
path) and entity *ngrams* (word unigrams plus the full normalized entity
string), so the common lookups — "all tuples of relation R", "what was
extracted from document D", "tuples mentioning 'xc9536'" — resolve in O(1)
per segment without scanning rows.  See :mod:`repro.kb.query` for the filter
/ pagination semantics and :mod:`repro.kb.server` for the HTTP face.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.fingerprint import stable_fingerprint
from repro.kb.arena import MmapSegment, arena_path_for, build_arena, build_indexes
from repro.kb.query import (
    DeadlineExceeded,
    KBQuery,
    QueryResult,
    decode_cursor,
    encode_cursor,
    normalize_entity,
)
from repro.storage.atomic import atomic_write_text
from repro.storage.integrity import (
    QUARANTINE_DIR,
    CorruptArtifactError,
    quarantine_count,
    quarantine_file,
)
from repro.storage.lru import BoundedLRU, resolve_bound

#: Version of the on-disk KB layout; a pointer written under a different
#: version is ignored (safe rebuild).  Participates in the KBOp fingerprint,
#: so a layout change re-publishes every segment instead of silently reusing
#: files written under the old schema.
KB_SCHEMA_VERSION = 1

SNAPSHOT_FILE = "snapshot.json"
#: The last-good pointer generation, written just before every pointer swap.
#: Serving falls back to it when the live pointer (or a segment it
#: references) is corrupt — degraded but answering, never 500s.
PREV_SNAPSHOT_FILE = "snapshot.prev.json"
SEGMENTS_DIR = "segments"

#: The columnar layout of one segment: parallel arrays, one entry per tuple.
#: ``interval`` is the tuple's ``[lo, hi]`` span interval in its document's
#: pre/post-order node table (``[-1, -1]`` when unrecorded) — the column the
#: structural ``within`` filter evaluates.  Optional on read: segments
#: published before the column existed load with the sentinel, so the schema
#: version stays 1.
SEGMENT_COLUMNS = (
    "relation",
    "doc_name",
    "doc_path",
    "entities",
    "spans",
    "interval",
    "marginal",
    "candidate",
)


class Segment:
    """One immutable columnar segment plus its hash indexes.

    ``columns`` holds the parallel arrays; the three indexes map a key to a
    sorted array of local row ids.  Indexes are built once at load time —
    segments are immutable, so they can never go stale.
    """

    def __init__(
        self,
        filename: str,
        position: int,
        shard_id: str,
        columns: Dict[str, List[Any]],
    ) -> None:
        self.filename = filename
        self.position = position
        self.shard_id = shard_id
        self.columns = columns
        self.n_rows = len(columns["marginal"])
        self.marginals = np.asarray(columns["marginal"], dtype=np.float64)
        # Span intervals as two flat columns; segments published before the
        # interval column existed load with the [-1, -1] sentinel (matched
        # by no within filter).
        intervals = columns.get("interval")
        if intervals:
            self.interval_lo = np.asarray(
                [interval[0] for interval in intervals], dtype=np.int64
            )
            self.interval_hi = np.asarray(
                [interval[1] for interval in intervals], dtype=np.int64
            )
        else:
            self.interval_lo = np.full(self.n_rows, -1, dtype=np.int64)
            self.interval_hi = np.full(self.n_rows, -1, dtype=np.int64)
        indexes = build_indexes(columns)
        self.by_relation = {
            k: np.asarray(v, dtype=np.int64) for k, v in indexes["relation"].items()
        }
        self.by_doc = {k: np.asarray(v, dtype=np.int64) for k, v in indexes["doc"].items()}
        self.by_ngram = {
            k: np.asarray(v, dtype=np.int64) for k, v in indexes["ngram"].items()
        }

    # -------------------------------------------------------------- querying
    _EMPTY = np.zeros(0, dtype=np.int64)

    def match(self, query: KBQuery) -> np.ndarray:
        """Local row ids satisfying the query, ascending (storage order)."""
        selected: Optional[np.ndarray] = None
        if query.relation is not None:
            selected = self.by_relation.get(query.relation, self._EMPTY)
        if query.doc is not None:
            rows = self.by_doc.get(query.doc, self._EMPTY)
            selected = rows if selected is None else np.intersect1d(selected, rows)
        if query.entity is not None:
            rows = self.by_ngram.get(normalize_entity(query.entity), self._EMPTY)
            selected = rows if selected is None else np.intersect1d(selected, rows)
        if selected is None:
            selected = np.arange(self.n_rows, dtype=np.int64)
        bounds = query.within_bounds()
        if bounds is not None:
            lo, hi = bounds
            row_lo = self.interval_lo[selected]
            mask = (row_lo >= lo) & (row_lo >= 0) & (self.interval_hi[selected] <= hi)
            selected = selected[mask]
        if query.min_marginal is not None or query.max_marginal is not None:
            values = self.marginals[selected]
            mask = np.ones(len(selected), dtype=bool)
            if query.min_marginal is not None:
                mask &= values >= query.min_marginal
            if query.max_marginal is not None:
                mask &= values <= query.max_marginal
            selected = selected[mask]
        return selected

    def row(self, local_row: int) -> Dict[str, Any]:
        """One tuple with its provenance, as a JSON-ready dict."""
        columns = self.columns
        return {
            "relation": columns["relation"][local_row],
            "entities": list(columns["entities"][local_row]),
            "doc_name": columns["doc_name"][local_row],
            "doc_path": columns["doc_path"][local_row],
            "spans": [list(span) for span in columns["spans"][local_row]],
            "interval": [
                int(self.interval_lo[local_row]),
                int(self.interval_hi[local_row]),
            ],
            "marginal": float(columns["marginal"][local_row]),
            "candidate": int(columns["candidate"][local_row]),
            "shard_id": self.shard_id,
            "shard": self.position,
        }

    def relation_counts(self) -> Dict[str, int]:
        """Tuple count per relation (drives ``/v1/stats``)."""
        return {key: len(rows) for key, rows in self.by_relation.items()}


class KBSnapshot:
    """An immutable, fully-loaded view of the KB at one published version.

    Everything a query touches — the segment list, each segment's columns and
    indexes — is referenced (not re-read) for the lifetime of the snapshot
    object, so queries against it are consistent regardless of concurrent
    publishes.
    """

    def __init__(self, version: int, records: List[Dict[str, Any]], segments: List[Any]) -> None:
        self.version = version
        self.records = records
        self.segments = segments
        self.n_tuples = sum(segment.n_rows for segment in segments)
        # The content-addressed generation token: segment filenames embed
        # their payload hashes, so this token pins the exact served content,
        # and the version prefix guarantees every republication rotates it.
        # The serving tier's response cache is keyed on it — republication
        # invalidates by key rotation, never by eviction.
        content = "|".join(str(record["file"]) for record in records)
        self.generation = f"{version}-{stable_fingerprint(content)[:12]}"

    def query(
        self,
        query: Optional[KBQuery] = None,
        deadline: Optional[float] = None,
        **kwargs: Any,
    ) -> QueryResult:
        """Filter + paginate over the snapshot (see :class:`KBQuery`).

        Matches are ordered globally: segments in shard-position order, rows
        in storage (candidate) order within a segment — the stable order
        pagination relies on.

        ``deadline`` is an absolute :func:`time.monotonic` timestamp; it is
        checked between segments, raising
        :class:`~repro.kb.query.DeadlineExceeded` (HTTP 504 at the serving
        layer) rather than holding a request thread indefinitely.
        """
        if query is None:
            query = KBQuery(**kwargs)
        elif kwargs:
            raise TypeError("Pass either a KBQuery or keyword filters, not both")
        query.validate()
        start_segment, start_offset = (0, 0)
        if query.cursor is not None:
            start_segment, start_offset = decode_cursor(query.cursor)
        rows: List[Dict[str, Any]] = []
        total = 0
        remaining_offset = query.offset
        # Where the next page starts: (segment position, matches of that
        # segment already consumed).  Set the moment the page fills while a
        # match remains, so ``resume is not None`` *is* ``has_more``.
        resume: Optional[Tuple[int, int]] = None
        for segment in self.segments:
            if deadline is not None and time.monotonic() > deadline:
                raise DeadlineExceeded(
                    f"query exceeded its deadline after {total} matches"
                )
            matches = segment.match(query)
            total += len(matches)
            if resume is not None or segment.position < start_segment:
                continue
            consumed = (
                min(start_offset, len(matches))
                if segment.position == start_segment
                else 0
            )
            if remaining_offset > 0:
                skip = min(remaining_offset, len(matches) - consumed)
                consumed += skip
                remaining_offset -= skip
            while consumed < len(matches):
                if len(rows) >= query.limit:
                    resume = (segment.position, consumed)
                    break
                rows.append(segment.row(int(matches[consumed])))
                consumed += 1
        return QueryResult(
            version=self.version,
            total=total,
            offset=query.offset,
            limit=query.limit,
            rows=rows,
            next_cursor=encode_cursor(*resume) if resume is not None else None,
        )

    def iter_rows(self) -> Iterator[Dict[str, Any]]:
        """Every tuple in global order (used by rebuild-equivalence tests)."""
        for segment in self.segments:
            for local_row in range(segment.n_rows):
                yield segment.row(local_row)

    def stats(self) -> Dict[str, Any]:
        """Summary the ``/stats`` endpoint serves."""
        relations: Dict[str, int] = {}
        for segment in self.segments:
            for relation, count in segment.relation_counts().items():
                relations[relation] = relations.get(relation, 0) + count
        return {
            "version": self.version,
            "generation": self.generation,
            "n_tuples": self.n_tuples,
            "n_segments": len(self.segments),
            "relations": relations,
            "segments": [
                {
                    "shard": segment.position,
                    "shard_id": segment.shard_id,
                    "file": segment.filename,
                    "n_tuples": segment.n_rows,
                }
                for segment in self.segments
            ],
        }


class KBStore:
    """Disk-resident queryable KB with snapshot-pointer versioning.

    Thread-safe: :meth:`snapshot` may be called from any number of serving
    threads while another thread runs a :class:`KBUpdate`; each call returns
    the latest *published* snapshot.  Cross-process works too — the pointer
    file is re-read (and changed segments re-loaded) whenever its version
    advances, which is what lets ``python -m repro serve`` pick up a
    re-published KB without restarting.
    """

    def __init__(
        self,
        root: Any,
        max_cached_segments: int = 16,
        segment_mode: str = "heap",
    ) -> None:
        # No mkdir here: opening a store is a read-side operation (query,
        # serve), and a mistyped path must read as "nothing published", not
        # silently materialize an empty store tree.  KBUpdate creates the
        # directories when something is actually written.
        if segment_mode not in ("heap", "mmap"):
            raise ValueError(f"segment_mode must be 'heap' or 'mmap', got {segment_mode!r}")
        self.segment_mode = segment_mode
        self.root = Path(root)
        self.segments_dir = self.root / SEGMENTS_DIR
        self.pointer_path = self.root / SNAPSHOT_FILE
        self.prev_pointer_path = self.root / PREV_SNAPSHOT_FILE
        self.quarantine_dir = self.root / QUARANTINE_DIR
        self._lock = threading.RLock()
        # filename -> Segment; filenames are content hashes, so entries can
        # never go stale — the bound only caps memory across republishes.
        self._segments = BoundedLRU(resolve_bound(max_cached_segments))
        self._snapshot: Optional[KBSnapshot] = None
        # (pointer stat signature, snapshot) — the serving hot path: while
        # the pointer file is untouched on disk, snapshot() answers with one
        # os.stat and no pointer read/parse.  Set only on the healthy load
        # path, so degraded serving always re-examines the pointer.
        self._fast: Optional[Tuple[Tuple[int, int, int], KBSnapshot]] = None
        # ---- integrity / degradation state ----------------------------
        # Non-None while serving a rolled-back (previous) generation after
        # pointer or segment corruption; cleared when a strictly newer
        # version publishes (or is observed from another process).
        self.degraded_reason: Optional[str] = None
        self._degraded_since = 0
        self.integrity_events: List[Dict[str, Any]] = []
        self.n_corrupt = 0

    # -------------------------------------------------------------- pointer
    def _pointer_signature(self) -> Optional[Tuple[int, int, int]]:
        """(inode, mtime_ns, size) of the pointer file, or None when absent.

        Taken *before* the pointer is read wherever both happen: if a
        publication races in between, the stale signature simply fails to
        match on the next call and the slow path re-reads — never the other
        way around (a fresh signature paired with stale contents).
        """
        try:
            st = os.stat(self.pointer_path)
        except OSError:
            return None
        return (st.st_ino, st.st_mtime_ns, st.st_size)

    def _pointer_state(self) -> tuple:
        """(payload, state) with state in {"ok", "absent", "corrupt", "schema"}.

        Distinguishing *corrupt* from *absent* is what makes graceful
        degradation possible: absent means "nothing published" (serve an
        empty KB), corrupt means "something was published and is damaged"
        (roll back to the last-good generation instead of serving nothing).
        """
        try:
            text = self.pointer_path.read_text()
        except OSError:
            return None, "absent"
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return None, "corrupt"
        if not isinstance(payload, dict):
            return None, "corrupt"
        if payload.get("schema_version") != KB_SCHEMA_VERSION:
            return None, "schema"
        return payload, "ok"

    def read_pointer(self) -> Optional[Dict[str, Any]]:
        """Parse the snapshot pointer; ``None`` when absent/invalid/other-schema."""
        payload, _ = self._pointer_state()
        return payload

    def _note_corruption(
        self, artifact: str, reason: str, quarantined_to: Optional[Path]
    ) -> None:
        self.n_corrupt += 1
        self.integrity_events.append(
            {
                "artifact": artifact,
                "reason": reason,
                "quarantined_to": str(quarantined_to) if quarantined_to else None,
            }
        )

    def _restore_previous_pointer(self) -> bool:
        """Roll the live pointer back to the last-good generation.

        Returns False when no valid previous generation exists.  On success
        the store is marked degraded until a strictly newer version is
        published — the rollback keeps the KB answering, it does not undo
        the data loss.
        """
        try:
            text = self.prev_pointer_path.read_text()
            payload = json.loads(text)
        except (OSError, json.JSONDecodeError):
            return False
        if (
            not isinstance(payload, dict)
            or payload.get("schema_version") != KB_SCHEMA_VERSION
        ):
            return False
        atomic_write_text(self.pointer_path, text)
        version = int(payload.get("version", 0))
        self.degraded_reason = (
            f"snapshot pointer lost or corrupt; rolled back to last-good "
            f"version {version}"
        )
        self._degraded_since = version
        return True

    @property
    def version(self) -> int:
        """The currently published snapshot version (0 = nothing published)."""
        pointer = self.read_pointer()
        return int(pointer["version"]) if pointer else 0

    # ------------------------------------------------------------- snapshot
    @staticmethod
    def _filename_hash(filename: str) -> Optional[str]:
        """The content hash embedded in ``seg-#####-<hash>.json``, or None."""
        stem = filename[: -len(".json")] if filename.endswith(".json") else filename
        parts = stem.split("-")
        return parts[-1] if len(parts) >= 3 else None

    def _load_segment(self, record: Dict[str, Any]) -> Any:
        filename = str(record["file"])

        def load_mmap() -> Any:
            """Open (building if needed) the mmap arena for this segment.

            Arenas are derived, content-addressed caches of the verified
            JSON payload: when one already exists its name pins the source
            content, so it is opened directly — no JSON read, no index
            rebuild, and its pages are shared with every other worker that
            mapped it.  Any failure falls back to the heap path (which
            performs full verification and rebuilds the arena).
            """
            path = self.segments_dir / filename
            arena_path = arena_path_for(path)
            if arena_path.exists():
                try:
                    return MmapSegment(arena_path, filename)
                except (OSError, ValueError, KeyError):
                    arena_path.unlink(missing_ok=True)
            segment = load()  # full verification + quarantine semantics
            try:
                build_arena(
                    arena_path,
                    segment.columns,
                    int(record["position"]),
                    str(record["shard_id"]),
                )
                return MmapSegment(arena_path, filename)
            except (OSError, ValueError, KeyError):
                return segment

        def load() -> Segment:
            path = self.segments_dir / filename
            text = path.read_text()
            # Segments are content-addressed: the filename embeds the hash
            # of the exact bytes written, so verification needs no side
            # metadata.  Runs once per cache miss (segments are immutable).
            expected = self._filename_hash(filename)
            if expected is not None and stable_fingerprint(text)[:16] != expected:
                reason = "content does not match content-addressed filename"
                dest = quarantine_file(path, self.quarantine_dir)
                self._note_corruption(filename, reason, dest)
                raise CorruptArtifactError(path, reason, quarantined_to=dest)
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as error:
                reason = f"unreadable segment: {error}"
                dest = quarantine_file(path, self.quarantine_dir)
                self._note_corruption(filename, reason, dest)
                raise CorruptArtifactError(path, reason, quarantined_to=dest)
            return Segment(
                filename=filename,
                position=int(record["position"]),
                shard_id=str(record["shard_id"]),
                columns=payload["columns"],
            )

        loader = load_mmap if self.segment_mode == "mmap" else load
        return self._segments.get_or_load(filename, loader)

    def _previous_snapshot(self) -> Optional[KBSnapshot]:
        """Load the last-good generation directly (no pointer rollback)."""
        try:
            payload = json.loads(self.prev_pointer_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema_version") != KB_SCHEMA_VERSION
        ):
            return None
        records = sorted(payload["segments"], key=lambda r: int(r["position"]))
        try:
            segments = [self._load_segment(record) for record in records]
        except (OSError, CorruptArtifactError, KeyError):
            return None
        return KBSnapshot(int(payload["version"]), records, segments)

    def snapshot(self) -> KBSnapshot:
        """The latest published snapshot (an immutable, fully-loaded view).

        Robust against a *cross-process* publish racing the load: if a
        writer in another process publishes twice between our pointer read
        and the segment loads (exhausting the one-generation prune grace), a
        referenced file may be gone — the pointer is simply re-read and the
        load retried, and the newer pointer's files are guaranteed present.

        Robust against corruption too: a corrupt pointer is quarantined and
        the last-good generation restored in its place; a corrupt (or
        persistently missing) segment degrades to serving the previous
        generation directly.  Either way the store answers — marked
        ``degraded`` until a strictly newer version publishes — instead of
        crashing the serving layer.
        """
        # Fast path (lock-free): one os.stat against the pointer file.  The
        # signature (inode, mtime_ns, size) pins the exact pointer bytes —
        # atomic publication replaces the file (new inode), so an unchanged
        # signature proves the cached snapshot is still the published one.
        fast = self._fast
        if fast is not None:
            signature = self._pointer_signature()
            if signature is not None and signature == fast[0]:
                return fast[1]
        last_error: Optional[Exception] = None
        for _ in range(5):
            with self._lock:
                signature = self._pointer_signature()
                pointer, state = self._pointer_state()
                if state != "ok":
                    self._fast = None
                if state == "corrupt":
                    dest = quarantine_file(self.pointer_path, self.quarantine_dir)
                    self._note_corruption(SNAPSHOT_FILE, "pointer unreadable", dest)
                    if self._restore_previous_pointer():
                        continue
                    self.degraded_reason = (
                        "snapshot pointer corrupt and no previous generation; "
                        "serving empty KB"
                    )
                    self._degraded_since = 0
                    pointer = None
                if pointer is None:
                    # Absent pointer *with* a surviving previous generation
                    # means the pointer was lost (e.g. quarantined by
                    # another process): restore rather than serve nothing.
                    if state != "schema" and self._restore_previous_pointer():
                        continue
                    if self._snapshot is None or self._snapshot.version != 0:
                        self._snapshot = KBSnapshot(0, [], [])
                    return self._snapshot
                version = int(pointer["version"])
                if self._snapshot is not None and self._snapshot.version == version:
                    if signature is not None:
                        self._fast = (signature, self._snapshot)
                    return self._snapshot
                records = sorted(pointer["segments"], key=lambda r: int(r["position"]))
                try:
                    segments = [self._load_segment(record) for record in records]
                except FileNotFoundError as error:
                    last_error = error
                    continue
                except CorruptArtifactError as error:
                    last_error = error
                    fallback = self._previous_snapshot()
                    if fallback is not None:
                        self.degraded_reason = (
                            f"serving previous generation {fallback.version}: {error}"
                        )
                        self._degraded_since = fallback.version
                        return fallback
                    raise
                if self.degraded_reason is not None and version > self._degraded_since:
                    self.degraded_reason = None
                self._snapshot = KBSnapshot(version, records, segments)
                if signature is not None:
                    self._fast = (signature, self._snapshot)
                return self._snapshot
        # Retries exhausted: a referenced segment is persistently missing
        # (not a racing publish).  Fall back to the last-good generation.
        fallback = self._previous_snapshot()
        if fallback is not None:
            self.degraded_reason = (
                f"serving previous generation {fallback.version}: {last_error}"
            )
            self._degraded_since = fallback.version
            return fallback
        raise last_error

    def integrity_report(self) -> Dict[str, Any]:
        """Degradation/corruption telemetry for ``/health`` and the tests."""
        return {
            "degraded": self.degraded_reason is not None,
            "reason": self.degraded_reason,
            "n_corrupt": self.n_corrupt,
            "n_quarantined": quarantine_count(self.root),
            "events": list(self.integrity_events),
        }

    def verify_segments(self) -> Dict[str, Any]:
        """Read-only check of pointer + every referenced segment.

        ``repro verify`` runs this alongside the shard store's
        :meth:`~repro.storage.shards.ShardStore.verify_artifacts`; nothing is
        quarantined or repaired here (repair for KB artifacts is re-running
        the publish, which re-derives segments from the shard slabs).
        """
        pointer, state = self._pointer_state()
        report: Dict[str, Any] = {
            "pointer": state,
            "n_segments": 0,
            "n_ok": 0,
            "corrupt": [],
        }
        if pointer is None:
            return report
        for record in pointer.get("segments", []):
            filename = str(record.get("file", ""))
            report["n_segments"] += 1
            path = self.segments_dir / filename
            if not path.exists():
                report["corrupt"].append({"file": filename, "reason": "missing"})
                continue
            expected = self._filename_hash(filename)
            text = path.read_text()
            if expected is not None and stable_fingerprint(text)[:16] != expected:
                report["corrupt"].append(
                    {
                        "file": filename,
                        "reason": "content does not match content-addressed filename",
                    }
                )
                continue
            report["n_ok"] += 1
        return report

    # --------------------------------------------------------------- update
    def begin_update(self) -> "KBUpdate":
        """Open an incremental update against the current pointer."""
        return KBUpdate(self)

    def rebuild(self) -> "KBUpdate":
        """Open an update that ignores the current pointer (full rebuild).

        Every shard must be upserted; reuse-by-key is disabled.  Segment
        files are still content-addressed, so a rebuild that derives the
        same tuples produces byte-identical segment files (the property the
        rebuild-equivalence tests pin down).
        """
        update = KBUpdate(self)
        update._base_records = {}
        return update


class KBUpdate:
    """One incremental republication: reuse, upsert, publish.

    Accounting mirrors the engine's resume counters so the cache-key tests
    can assert *exactly* which shards were touched:

    ``n_reused``
        segments proven current by classify-key match — tuples never even
        recomputed by the caller;
    ``n_unchanged``
        shards whose tuples were recomputed but hash to the segment file
        already on disk — nothing written;
    ``n_written``
        new segment files actually written.
    """

    def __init__(self, store: KBStore) -> None:
        self._store = store
        store.segments_dir.mkdir(parents=True, exist_ok=True)
        pointer = store.read_pointer() or {"version": 0, "segments": []}
        self._base_version = int(pointer["version"])
        self._base_records: Dict[int, Dict[str, Any]] = {
            int(record["position"]): record for record in pointer["segments"]
        }
        self._base_files = {str(record["file"]) for record in pointer["segments"]}
        self._records: Dict[int, Dict[str, Any]] = {}
        self.n_reused = 0
        self.n_unchanged = 0
        self.n_written = 0
        self._published = False

    # ---------------------------------------------------------------- steps
    def reuse_if_current(self, position: int, key: str) -> bool:
        """Keep the existing segment when its classify key matches ``key``.

        Requires the recorded key *and* the segment file on disk (a manually
        deleted segment reads as stale, like a deleted slab in the shard
        store), so a crash can never resurrect a half-published state.
        """
        record = self._base_records.get(position)
        if (
            record is None
            or record.get("key") != key
            or not (self._store.segments_dir / str(record["file"])).exists()
        ):
            return False
        self._records[position] = dict(record)
        self.n_reused += 1
        return True

    def adopt(
        self, position: int, shard_id: str, key: str, filename: str, n_rows: int
    ) -> bool:
        """Adopt a segment recorded *outside* the pointer (checkpoint resume).

        The streaming pipeline checkpoints each shard's published segment in
        the shard's own durable ``stages.json`` the moment it is written —
        before the end-of-run pointer swap — so a run killed between a KB
        boundary and ``publish`` resumes those shards instead of refiltering
        them.  Adoption still requires the segment file on disk.
        """
        if not (self._store.segments_dir / filename).exists():
            return False
        self._records[position] = {
            "position": position,
            "shard_id": shard_id,
            "key": key,
            "file": filename,
            "n_rows": int(n_rows),
        }
        self.n_reused += 1
        return True

    def upsert(
        self,
        position: int,
        shard_id: str,
        key: str,
        rows: Sequence[Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Write one shard's classified tuples as an immutable segment.

        ``rows`` are dicts with the :data:`SEGMENT_COLUMNS` fields.  Returns
        the pointer record of the segment; when the content hash matched a
        file already on disk (e.g. a threshold edit that did not change this
        shard's above-threshold set) the existing file is adopted unchanged
        (``n_unchanged`` instead of ``n_written``).
        """
        columns: Dict[str, List[Any]] = {name: [] for name in SEGMENT_COLUMNS}
        for row in rows:
            for name in SEGMENT_COLUMNS:
                if name == "interval":
                    # Optional on write too: callers predating span intervals
                    # (or synthetic rows in tests) publish the sentinel.
                    columns[name].append(list(row.get("interval", (-1, -1))))
                else:
                    columns[name].append(row[name])
        payload = {
            "schema_version": KB_SCHEMA_VERSION,
            "shard_id": shard_id,
            "columns": columns,
        }
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        filename = f"seg-{position:05d}-{stable_fingerprint(body)[:16]}.json"
        path = self._store.segments_dir / filename
        existing: Optional[str] = None
        if path.exists():
            try:
                existing = path.read_text()
            except OSError:
                existing = None
        if existing == body:
            self.n_unchanged += 1
        else:
            if existing is not None:
                # A file already sits at this content-addressed name with
                # *different* bytes: it is corrupt, and adopting it here
                # would launder the corruption into the new pointer.
                dest = quarantine_file(path, self._store.quarantine_dir)
                self._store._note_corruption(
                    filename, "content does not match content-addressed filename", dest
                )
                self._store._segments.pop(filename)
            atomic_write_text(path, body)
            self.n_written += 1
        record = {
            "position": position,
            "shard_id": shard_id,
            "key": key,
            "file": filename,
            "n_rows": len(rows),
        }
        self._records[position] = record
        return record

    def publish(self, meta: Optional[Dict[str, Any]] = None) -> KBSnapshot:
        """Atomically swap the snapshot pointer to this update's segment set.

        Prunes segment files referenced by neither the new pointer nor the
        one it replaced — the previous generation survives one publish as a
        grace set for readers in *other processes* that loaded the old
        pointer moments ago (in-process readers hold fully-loaded snapshot
        objects and never re-read files).
        """
        if self._published:
            raise RuntimeError("KBUpdate.publish may only be called once")
        store = self._store
        with store._lock:
            records = [self._records[p] for p in sorted(self._records)]
            pointer = {
                "schema_version": KB_SCHEMA_VERSION,
                "version": self._base_version + 1,
                "total_rows": sum(int(r["n_rows"]) for r in records),
                "segments": records,
                "meta": meta or {},
            }
            # Preserve the generation being replaced as the last-good
            # fallback *before* the swap; its segment files are exactly the
            # base set the prune below keeps, so the fallback stays loadable
            # until the next publish supersedes it.
            try:
                current_text = store.pointer_path.read_text()
                json.loads(current_text)
            except (OSError, json.JSONDecodeError):
                pass
            else:
                atomic_write_text(store.prev_pointer_path, current_text)
            atomic_write_text(
                store.pointer_path, json.dumps(pointer, indent=2, sort_keys=True)
            )
            keep = {str(r["file"]) for r in records} | self._base_files
            for stale in store.segments_dir.glob("seg-*.json"):
                if stale.name not in keep:
                    stale.unlink(missing_ok=True)
                    # The derived mmap arena is content-addressed to the
                    # same stem: it dies with its segment.
                    arena_path_for(stale).unlink(missing_ok=True)
                    store._segments.pop(stale.name)
            self._published = True
            store._snapshot = None
            store._fast = None
            return store.snapshot()
