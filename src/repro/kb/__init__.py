"""The queryable knowledge-base store and its concurrent serving tier.

The write side of the pipeline (parse → candidates → featurize → label →
marginals → train → classify) ends in per-shard slabs; this subpackage is the
read side the paper's deployments sit on:

* :mod:`repro.kb.store` — :class:`KBStore`: immutable per-shard columnar
  segments behind an atomically-swapped snapshot pointer, with per-segment
  hash indexes and snapshot-isolated concurrent reads;
* :mod:`repro.kb.query` — :class:`KBQuery` filters + cursor pagination, the
  stable public schema shared by every query surface;
* :mod:`repro.kb.arena` — mmap segment arenas, the no-copy representation
  multi-process serving workers share;
* :mod:`repro.kb.server` — the non-blocking HTTP serving tier behind
  ``python -m repro serve`` (versioned ``/v1`` API, keep-alive, multi-process
  workers, response cache, metrics);
* :mod:`repro.kb.client` — :class:`KBClient`, the keep-alive Python client
  of the ``/v1`` API.

The engine-facing half (the :class:`~repro.engine.operators.KBOp` whose
derived keys chain each shard's classify inputs) lives with the other
operators in :mod:`repro.engine.operators`; the streaming pipeline publishes
into the store from its classification tail
(:meth:`~repro.pipeline.fonduer.FonduerPipeline.run_streaming`).

See docs/SERVING.md for the API reference, store layout and snapshot
semantics.
"""

from repro.kb.client import KBAPIError, KBClient
from repro.kb.query import (
    DEFAULT_LIMIT,
    MAX_LIMIT,
    KBQuery,
    QueryResult,
    decode_cursor,
    encode_cursor,
)
from repro.kb.server import KBServer, create_server
from repro.kb.store import (
    KB_SCHEMA_VERSION,
    KBSnapshot,
    KBStore,
    KBUpdate,
    Segment,
)

__all__ = [
    "DEFAULT_LIMIT",
    "KB_SCHEMA_VERSION",
    "KBAPIError",
    "KBClient",
    "KBQuery",
    "KBServer",
    "KBSnapshot",
    "KBStore",
    "KBUpdate",
    "MAX_LIMIT",
    "QueryResult",
    "Segment",
    "create_server",
    "decode_cursor",
    "encode_cursor",
]
