"""``KBClient``: the keep-alive Python client of the ``/v1`` serving API.

One client object holds one persistent HTTP connection to a running
``python -m repro serve`` endpoint and speaks the versioned envelope —
unwrapping ``data``, keeping the last ``meta`` (generation, server-side
``took_ms``) inspectable, and raising :class:`KBAPIError` with the server's
structured error code on failures.  Connection reuse is what lets a single
client sustain thousands of queries per second: the per-request TCP
handshake of one-shot ``urlopen`` calls costs more than the query itself.

The client is deliberately thin: request construction is
:meth:`~repro.kb.query.KBQuery.to_params` and response parsing is
:class:`~repro.kb.query.QueryResult` — the same stable schema the server,
the CLI and the in-process API share.

Usage::

    with KBClient("http://127.0.0.1:8080") as client:
        page = client.query(relation="has_current", limit=100)
        while page.has_more:
            page = client.query(cursor=page.next_cursor, limit=100)

or, paging handled for you::

    for page in client.query_pages(relation="has_current"):
        consume(page.rows)
"""

from __future__ import annotations

import http.client
import json
from dataclasses import replace
from typing import Any, Dict, Iterator, Optional
from urllib.parse import urlencode, urlsplit

from repro.kb.query import KBQuery, QueryResult


class KBAPIError(RuntimeError):
    """A structured error answered by the serving API.

    Carries the HTTP ``status`` and the machine-readable ``code`` from the
    error envelope (``bad_request``, ``overloaded``, ``deadline_exceeded``,
    ``not_found``, ``internal``) so callers can branch without parsing
    message text — retry policies treat ``status`` 502/503/504 as transient.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message


class KBClient:
    """A persistent-connection client bound to one serving endpoint."""

    def __init__(self, url: str, timeout: float = 10.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"KBClient speaks plain http, got {url!r}")
        if not parts.hostname:
            raise ValueError(f"No host in server url {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None
        #: The ``meta`` object of the most recent successful response.
        self.last_meta: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------ transport
    def _get(self, path: str, params: Optional[Dict[str, str]] = None) -> Any:
        target = f"{path}?{urlencode(params)}" if params else path
        body: Optional[bytes] = None
        status = 0
        # One silent reconnect: a keep-alive connection the server idled out
        # (or a restarted server) surfaces as a failure on the first write
        # or read after the close — never as a half-answered request, since
        # the API is read-only GET.
        for attempt in (0, 1):
            conn = self._conn
            if conn is None:
                conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
                self._conn = conn
            try:
                conn.request("GET", target)
                response = conn.getresponse()
                status = response.status
                body = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                self.close()
                if attempt:
                    raise
        assert body is not None
        try:
            envelope = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise KBAPIError(
                status, "internal", f"unparseable response body: {body[:200]!r}"
            ) from None
        self.last_meta = envelope.get("meta")
        error = envelope.get("error")
        if error is not None:
            raise KBAPIError(
                status,
                str(error.get("code", "internal")),
                str(error.get("message", "")),
            )
        return envelope.get("data")

    # -------------------------------------------------------------- queries
    def query_params(self, params: Dict[str, str]) -> Dict[str, Any]:
        """One ``/v1/query`` with raw string parameters; returns the data dict."""
        return self._get("/v1/query", params)

    def query(self, query: Optional[KBQuery] = None, **filters: Any) -> QueryResult:
        """One page of matches for a :class:`KBQuery` (or its field kwargs)."""
        if query is None:
            query = KBQuery(**filters)
        elif filters:
            raise TypeError("pass a KBQuery or field kwargs, not both")
        data = self.query_params(query.validate().to_params())
        return QueryResult(
            version=data["version"],
            total=data["total"],
            offset=data.get("offset", 0),
            limit=data["limit"],
            rows=data["rows"],
            next_cursor=data.get("next_cursor"),
        )

    def query_pages(
        self, query: Optional[KBQuery] = None, **filters: Any
    ) -> Iterator[QueryResult]:
        """Iterate every page of a query, following ``next_cursor``.

        Pages are snapshot-consistent individually; a republication between
        pages is detectable by the ``version`` changing across yields.
        """
        if query is None:
            query = KBQuery(**filters)
        page = self.query(query)
        yield page
        while page.next_cursor is not None:
            page = self.query(replace(query, offset=0, cursor=page.next_cursor))
            yield page

    # ---------------------------------------------------------- diagnostics
    def stats(self) -> Dict[str, Any]:
        return self._get("/v1/stats")

    def health(self) -> Dict[str, Any]:
        return self._get("/v1/health")

    def metrics(self) -> Dict[str, Any]:
        return self._get("/v1/metrics")

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "KBClient":
        return self

    def __exit__(self, *_: Any) -> None:
        self.close()
