"""The concurrent serving layer: a stdlib-HTTP face over a :class:`KBStore`.

``python -m repro serve`` starts a :class:`ThreadingHTTPServer` (one thread
per in-flight request, no third-party dependencies) whose handlers answer
from KB snapshots:

``GET /query``
    Filtered, paginated tuple lookup.  Accepts the :class:`~repro.kb.query.KBQuery`
    parameters as a query string (``relation``, ``doc``, ``entity``,
    ``min_marginal``, ``max_marginal``, ``offset``, ``limit``) and returns a
    JSON :class:`~repro.kb.query.QueryResult` envelope.
``GET /stats``
    Snapshot version, tuple/segment counts, per-relation totals.
``GET /health``
    Liveness probe (also reports the served snapshot version).

Consistency under concurrent upserts comes from the store, not the server:
each request takes ``store.snapshot()`` once and answers entirely from that
immutable object, so a republication landing mid-request can never mix two
versions inside one response.  Requests arriving *after* a publish see the
new version — the snapshot call re-reads the pointer when its version
advanced, which is also what makes a re-run in another process visible to a
long-lived server without a restart.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.kb.query import KBQuery
from repro.kb.store import KBStore


class KBRequestHandler(BaseHTTPRequestHandler):
    """Routes one request against the owning server's store."""

    server: "KBServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        try:
            if url.path == "/query":
                params = dict(parse_qsl(url.query))
                query = KBQuery.from_params(params)
                result = self.server.store.snapshot().query(query)
                self._send_json(200, result.to_json())
            elif url.path == "/stats":
                self._send_json(200, self.server.store.snapshot().stats())
            elif url.path == "/health":
                self._send_json(
                    200,
                    {"status": "ok", "version": self.server.store.snapshot().version},
                )
            else:
                self._send_json(404, {"error": f"Unknown path {url.path!r}"})
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
        except Exception as error:  # pragma: no cover - defensive: 500 not
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})


class KBServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`KBStore`."""

    daemon_threads = True

    def __init__(
        self,
        store: KBStore,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.store = store
        self.verbose = verbose
        super().__init__((host, port), KBRequestHandler)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolves when 0 was requested."""
        return self.server_address[0], self.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"


def create_server(
    kb_root: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    store: Optional[KBStore] = None,
) -> KBServer:
    """Build a server over ``kb_root`` (a :class:`KBStore` directory)."""
    return KBServer(store or KBStore(kb_root), host=host, port=port, verbose=verbose)
