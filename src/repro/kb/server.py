"""The concurrent serving layer: a stdlib-HTTP face over a :class:`KBStore`.

``python -m repro serve`` starts a :class:`ThreadingHTTPServer` (one thread
per in-flight request, no third-party dependencies) whose handlers answer
from KB snapshots:

``GET /query``
    Filtered, paginated tuple lookup.  Accepts the :class:`~repro.kb.query.KBQuery`
    parameters as a query string (``relation``, ``doc``, ``entity``,
    ``min_marginal``, ``max_marginal``, ``offset``, ``limit``) and returns a
    JSON :class:`~repro.kb.query.QueryResult` envelope.
``GET /stats``
    Snapshot version, tuple/segment counts, per-relation totals.
``GET /health``
    Liveness probe (also reports the served snapshot version).

Consistency under concurrent upserts comes from the store, not the server:
each request takes ``store.snapshot()`` once and answers entirely from that
immutable object, so a republication landing mid-request can never mix two
versions inside one response.  Requests arriving *after* a publish see the
new version — the snapshot call re-reads the pointer when its version
advanced, which is also what makes a re-run in another process visible to a
long-lived server without a restart.

Overload and failure behaviour (``docs/RELIABILITY.md``):

* **Load shedding** — when more than ``max_inflight`` requests are already
  being answered, new ones get an immediate ``503`` with ``Retry-After``
  instead of queueing unboundedly behind a slow store.
* **Per-request deadlines** — ``request_deadline`` seconds per query;
  overrunning requests get ``504`` instead of holding a thread forever.
* **Degraded serving** — a corrupt snapshot pointer or segment makes the
  store fall back to the last-good generation; ``/health`` then reports
  ``"degraded"`` (with the reason and quarantine count) while ``/query``
  keeps answering.
* **Client disconnects** — a peer that hangs up mid-response is logged and
  dropped, never a handler crash or a second response on the same socket.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.kb.query import DeadlineExceeded, KBQuery
from repro.kb.store import KBStore


class KBRequestHandler(BaseHTTPRequestHandler):
    """Routes one request against the owning server's store."""

    server: "KBServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """Send one JSON response, tolerating a vanished client.

        ``_responded`` guards the error paths in :meth:`do_GET`: once a
        response's status line went out, a later failure must tear the
        connection down rather than write a *second* response onto the same
        socket (which the next pipelined request would read as its answer).
        A client that disconnected mid-write surfaces as
        ``BrokenPipeError``/``ConnectionResetError`` — logged and swallowed;
        the thread just finishes.
        """
        if self._responded:
            self.close_connection = True
            return
        body = json.dumps(payload).encode("utf-8")
        try:
            self._responded = True
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.log_message("client disconnected mid-response (%s)", self.path)
            self.close_connection = True

    def handle_one_request(self) -> None:
        self._responded = False
        try:
            super().handle_one_request()
        except (BrokenPipeError, ConnectionResetError):
            # The peer hung up between accept and response (or mid-read).
            self.close_connection = True

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        server = self.server
        if not server.acquire_slot():
            # Over the in-flight bound: shed immediately with a retry hint
            # instead of queueing behind however many slow requests built up.
            self._send_json(
                503,
                {"error": "server overloaded; retry shortly"},
                extra_headers={"Retry-After": str(server.retry_after)},
            )
            return
        try:
            deadline = (
                time.monotonic() + server.request_deadline
                if server.request_deadline is not None
                else None
            )
            if url.path == "/query":
                params = dict(parse_qsl(url.query))
                query = KBQuery.from_params(params)
                result = server.store.snapshot().query(query, deadline=deadline)
                self._send_json(200, result.to_json())
            elif url.path == "/stats":
                self._send_json(200, server.store.snapshot().stats())
            elif url.path == "/health":
                self._send_json(200, server.health())
            else:
                self._send_json(404, {"error": f"Unknown path {url.path!r}"})
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
        except DeadlineExceeded as error:
            server.note_deadline_exceeded()
            self._send_json(504, {"error": str(error)})
        except (BrokenPipeError, ConnectionResetError):
            self.log_message("client disconnected (%s)", self.path)
            self.close_connection = True
        except Exception as error:  # pragma: no cover - defensive: 500 not
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
        finally:
            server.release_slot()

    def _reject_method(self) -> None:
        """JSON ``405`` (not the stdlib's HTML 501) for non-GET methods."""
        self._send_json(
            405,
            {"error": f"Method {self.command} not allowed; this API is read-only"},
            extra_headers={"Allow": "GET"},
        )

    do_POST = _reject_method  # noqa: N815 (http.server API)
    do_PUT = _reject_method  # noqa: N815
    do_DELETE = _reject_method  # noqa: N815
    do_PATCH = _reject_method  # noqa: N815


class KBServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`KBStore`.

    Parameters
    ----------
    max_inflight:
        Load-shedding bound: requests beyond this many concurrently
        in-flight are answered ``503`` + ``Retry-After`` immediately.
    request_deadline:
        Per-request soft deadline in seconds (``None`` disables); overruns
        answer ``504``.
    """

    daemon_threads = True

    #: Retry-After hint (seconds) sent with shed requests.
    retry_after = 1

    def __init__(
        self,
        store: KBStore,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        max_inflight: int = 64,
        request_deadline: Optional[float] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.store = store
        self.verbose = verbose
        self.max_inflight = max_inflight
        self.request_deadline = request_deadline
        self._inflight = 0
        self._counter_lock = threading.Lock()
        self.n_shed = 0
        self.n_deadline_exceeded = 0
        super().__init__((host, port), KBRequestHandler)

    # ------------------------------------------------------- overload state
    def acquire_slot(self) -> bool:
        with self._counter_lock:
            if self._inflight >= self.max_inflight:
                self.n_shed += 1
                return False
            self._inflight += 1
            return True

    def release_slot(self) -> None:
        with self._counter_lock:
            self._inflight -= 1

    def note_deadline_exceeded(self) -> None:
        with self._counter_lock:
            self.n_deadline_exceeded += 1

    def health(self) -> Dict[str, Any]:
        """The ``/health`` payload: liveness plus degradation detail."""
        # Take the snapshot *first*: loading it is what detects corruption
        # and flips the store into its degraded state, so a health probe
        # must observe the store's report only afterwards.
        version = self.store.snapshot().version
        report = self.store.integrity_report()
        payload = {
            "status": "degraded" if report["degraded"] else "ok",
            "version": version,
            "n_quarantined": report["n_quarantined"],
            "n_shed": self.n_shed,
            "n_deadline_exceeded": self.n_deadline_exceeded,
        }
        if report["reason"]:
            payload["reason"] = report["reason"]
        return payload

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolves when 0 was requested."""
        return self.server_address[0], self.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"


def create_server(
    kb_root: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    store: Optional[KBStore] = None,
    max_inflight: int = 64,
    request_deadline: Optional[float] = None,
) -> KBServer:
    """Build a server over ``kb_root`` (a :class:`KBStore` directory)."""
    return KBServer(
        store or KBStore(kb_root),
        host=host,
        port=port,
        verbose=verbose,
        max_inflight=max_inflight,
        request_deadline=request_deadline,
    )
