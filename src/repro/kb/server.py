"""The high-concurrency serving tier: a non-blocking HTTP face over a KBStore.

``python -m repro serve`` exposes the published KB through a **versioned
public API** under ``/v1/``:

``GET /v1/query``
    Filtered tuple lookup with cursor pagination.  Accepts the
    :class:`~repro.kb.query.KBQuery` parameters as a query string
    (``relation``, ``doc``, ``entity``, ``min_marginal``, ``max_marginal``,
    ``limit``, ``cursor``) and answers with the uniform envelope.
``GET /v1/stats``
    Snapshot version + generation, tuple/segment counts, per-relation totals.
``GET /v1/health``
    Liveness + degradation detail (shed/deadline counters, quarantine count).
``GET /v1/metrics``
    Serving telemetry: request counts by endpoint, latency histogram, cache
    hit ratio, in-flight gauge, connection counts, per-worker stats.

Every ``/v1`` response is one JSON envelope::

    {"data": ..., "error": null, "meta": {"generation": ..., "took_ms": ...}}

and errors are machine-readable objects (``{"code": "bad_request",
"message": ...}``).  The pre-``/v1`` paths (``/query``, ``/stats``,
``/health``) keep answering with their original payload shapes for one
release, marked with a ``Deprecation`` header and a ``Link`` to their
successor.

Architecture — why this is not the thread-per-request server it replaced
------------------------------------------------------------------------
* **Event-loop core.**  Each worker runs one asyncio event loop with a
  hand-rolled HTTP/1.1 protocol: persistent connections (keep-alive) and
  pipelined requests are parsed straight out of the receive buffer, and
  queries are answered inline — a KB lookup is tens of microseconds, so the
  thread hand-off, per-connection thread stack and accept-per-request costs
  of the old server dominated its latency and collapsed its p99 under
  concurrency.
* **Multi-process workers** (``--workers N``).  The parent binds the
  listening socket, then forks N workers that all ``accept`` from it (the
  kernel load-balances).  Workers open the same immutable KB segments
  through the mmap arenas (:mod:`repro.kb.arena`), so worker N+1 adds only
  its small per-process key tables — not another heap copy of the KB.
  Dead workers are reaped and respawned; shutdown is an EOF broadcast on a
  shared pipe (no signals, safe under threaded embedders).
* **Response cache.**  A per-worker :class:`~repro.storage.lru.BoundedLRU`
  keyed on ``(snapshot generation, canonical query)``.  Generations are
  content-addressed (:attr:`~repro.kb.store.KBSnapshot.generation`), so
  republication *rotates the key prefix* and invalidation costs nothing;
  canonicalization (:meth:`~repro.kb.query.KBQuery.canonical_key`) makes
  semantically identical queries share one entry.
* **Shared-memory telemetry.**  Counters and latency histograms live in an
  anonymous shared mmap written one-row-per-worker and aggregated by
  whichever worker answers ``/v1/metrics``.

Degradation behaviour (``docs/RELIABILITY.md``) is carried over from the
threaded server unchanged: load shedding (``503`` + ``Retry-After`` beyond
``max_inflight``), per-request deadlines (``504``), corrupt-pointer rollback
with ``/health`` reporting ``degraded``, JSON ``405`` for write methods, and
client disconnects never wedge a worker.
"""

from __future__ import annotations

import asyncio
import json
import mmap
import os
import select
import socket
import sys
import threading
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl

import numpy as np

from repro.kb.query import DeadlineExceeded, KBQuery
from repro.kb.store import KBStore
from repro.storage.lru import BoundedLRU

#: Latency histogram bucket upper bounds, milliseconds (last bucket = +inf).
LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Deprecation headers attached to every pre-/v1 response.
_DEPRECATION_HEADERS = (
    ("Deprecation", "true"),
    ("Link", '</v1/query>; rel="successor-version"'),
)

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 1024 * 1024


class _Metrics:
    """One shared-memory telemetry board: one int64 row per worker.

    Created before workers fork, so every process writes its own row of the
    same physical pages (single writer per row — no locks needed) and any
    worker can aggregate the whole board for ``/v1/metrics``.
    """

    COUNTERS = (
        "pid",
        "n_requests",
        "n_query",
        "n_stats",
        "n_health",
        "n_metrics",
        "n_errors",
        "n_bad_requests",
        "n_shed",
        "n_deadline_exceeded",
        "cache_hits",
        "cache_misses",
        "inflight",
        "n_connections",
        "connections_open",
        "rss_anon_kb",
    )
    N_BUCKETS = len(LATENCY_BUCKETS_MS) + 1
    ROW_WIDTH = len(COUNTERS) + N_BUCKETS

    def __init__(self, n_workers: int) -> None:
        self.n_workers = n_workers
        self._mmap = mmap.mmap(-1, n_workers * self.ROW_WIDTH * 8)
        self.rows = np.frombuffer(self._mmap, dtype=np.int64).reshape(
            n_workers, self.ROW_WIDTH
        )
        self._index = {name: i for i, name in enumerate(self.COUNTERS)}

    def row(self, worker: int) -> np.ndarray:
        return self.rows[worker]

    def slot(self, name: str) -> int:
        return self._index[name]

    def total(self, name: str) -> int:
        return int(self.rows[:, self._index[name]].sum())

    def record_latency(self, row: np.ndarray, took_ms: float) -> None:
        bucket = 0
        for bound in LATENCY_BUCKETS_MS:
            if took_ms <= bound:
                break
            bucket += 1
        row[len(self.COUNTERS) + bucket] += 1

    def histogram(self) -> Dict[str, Any]:
        counts = self.rows[:, len(self.COUNTERS):].sum(axis=0)
        return {
            "bucket_upper_ms": list(LATENCY_BUCKETS_MS) + ["inf"],
            "counts": [int(c) for c in counts],
        }

    def per_worker(self) -> List[Dict[str, int]]:
        reports = []
        for worker in range(self.n_workers):
            row = self.rows[worker]
            report = {"worker": worker}
            report.update(
                {name: int(row[i]) for i, name in enumerate(self.COUNTERS)}
            )
            reports.append(report)
        return reports


class _Result:
    """One handler outcome, pre-envelope.

    ``data`` is the already-serialized JSON of the payload (for ``/v1/query``
    these bytes come straight from the response cache); the surrounding
    envelope — whose ``meta.took_ms`` is per-request — is assembled by
    :meth:`KBServer._render` at write time by byte concatenation.
    """

    __slots__ = ("status", "data", "error", "generation")

    def __init__(
        self,
        status: int,
        data: bytes = b"null",
        error: Optional[Dict[str, str]] = None,
        generation: Optional[str] = None,
    ) -> None:
        self.status = status
        self.data = data
        self.error = error
        self.generation = generation


def _rss_anon_kb() -> int:
    """Anonymous (heap) RSS of this process in KiB; 0 where unsupported.

    ``RssAnon`` specifically *excludes* file-backed mappings: the mmap'd
    segment arenas never show up here no matter how many pages are resident,
    which is exactly the "no per-worker heap copies" property the worker
    tests measure.
    """
    try:
        with open("/proc/self/status", "r") as handle:
            for line in handle:
                if line.startswith("RssAnon:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


class _HTTPProtocol(asyncio.Protocol):
    """One keep-alive connection: buffer, parse, dispatch, repeat.

    Requests are handled inline and strictly in arrival order, so pipelined
    requests get pipelined responses.  A peer that vanishes mid-anything
    surfaces as ``connection_lost`` — never an exception out of the loop.
    """

    def __init__(self, server: "KBServer") -> None:
        self.server = server
        self.transport: Optional[asyncio.Transport] = None
        self.buffer = bytearray()
        self.peer: Optional[Tuple[str, int]] = None
        self.last_activity = time.monotonic()

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        peer = transport.get_extra_info("peername")
        self.peer = tuple(peer[:2]) if peer else None
        self.server._connections.add(self)
        row = self.server._row
        row[self.server._slot("n_connections")] += 1
        row[self.server._slot("connections_open")] += 1

    def connection_lost(self, exc: Optional[Exception]) -> None:
        self.server._connections.discard(self)
        self.server._row[self.server._slot("connections_open")] -= 1

    def data_received(self, data: bytes) -> None:
        self.last_activity = time.monotonic()
        self.buffer += data
        self._drain()

    def _drain(self) -> None:
        transport = self.transport
        while transport is not None and not transport.is_closing():
            head_end = self.buffer.find(b"\r\n\r\n")
            if head_end < 0:
                if len(self.buffer) > _MAX_HEADER_BYTES:
                    self._reject(400, "request headers too large")
                return
            try:
                head = bytes(self.buffer[:head_end]).decode("latin-1")
                lines = head.split("\r\n")
                method, target, version = lines[0].split(" ")
            except ValueError:
                self._reject(400, "malformed request line")
                return
            headers: Dict[str, str] = {}
            for line in lines[1:]:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            try:
                body_length = int(headers.get("content-length") or 0)
            except ValueError:
                self._reject(400, "malformed Content-Length")
                return
            if body_length > _MAX_BODY_BYTES:
                self._reject(413, "request body too large")
                return
            total = head_end + 4 + body_length
            if len(self.buffer) < total:
                return  # wait for the body (discarded, but framing matters)
            del self.buffer[:total]
            keep_alive = version != "HTTP/1.0"
            connection = headers.get("connection", "").lower()
            if "close" in connection:
                keep_alive = False
            elif version == "HTTP/1.0" and "keep-alive" in connection:
                keep_alive = True
            self.server._handle_request(self, method, target, keep_alive)
            if not keep_alive:
                transport.close()
                return

    def _reject(self, status: int, message: str) -> None:
        """Unparseable framing: answer once, then drop the connection."""
        self.server._write_response(
            self, status, [], json.dumps({"error": message}).encode(), keep_alive=False
        )
        if self.transport is not None:
            self.transport.close()


class KBServer:
    """The non-blocking serving tier bound to one :class:`KBStore`.

    Parameters
    ----------
    workers:
        Worker processes accepting from the shared listening socket.  ``1``
        (default) serves from an event loop in the calling thread; ``N > 1``
        forks N workers (requires ``os.fork``), each with its own loop and
        response cache, sharing KB segment pages via the mmap arenas and one
        telemetry board.
    max_inflight:
        Per-worker load-shedding bound: requests beyond this many
        concurrently in flight are answered ``503`` + ``Retry-After``.
    request_deadline:
        Per-request soft deadline in seconds (``None`` disables); overruns
        answer ``504``.
    cache_entries:
        Bound of the per-worker response cache (``0`` disables caching).
    """

    #: Retry-After hint (seconds) sent with shed requests.
    retry_after = 1

    def __init__(
        self,
        store: KBStore,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        max_inflight: int = 64,
        request_deadline: Optional[float] = None,
        workers: int = 1,
        cache_entries: int = 1024,
        keepalive_timeout: float = 75.0,
        log_handler: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if workers > 1 and not hasattr(os, "fork"):
            warnings.warn(
                "multi-worker serving requires os.fork; falling back to one worker",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
        self.store = store
        self.verbose = verbose
        self.max_inflight = max_inflight
        self.request_deadline = request_deadline
        self.workers = workers
        self.keepalive_timeout = keepalive_timeout
        self.log_handler = log_handler
        self.metrics = _Metrics(workers)
        self.response_cache = BoundedLRU(cache_entries) if cache_entries > 0 else None
        # Raw-query-string -> parsed (KBQuery, canonical key).  Clients
        # repeat byte-identical query strings, so this skips re-parsing and
        # re-canonicalizing on the hot path; parse errors are never cached.
        self._parsed_queries = BoundedLRU(2048)
        self._worker_index = 0
        self._row = self.metrics.row(0)
        self._row[self.metrics.slot("pid")] = os.getpid()
        self._started_at = time.time()
        self._connections: set = set()
        self._listen_sock = socket.create_server((host, port), backlog=1024)
        # Shutdown is "close the write end of this pipe": EOF fans out to
        # the parent's reaper loop and every worker's event loop at once —
        # no signal handlers, so serving works from embedder threads too.
        self._shutdown_rd, self._shutdown_wr = os.pipe()
        self._shutdown_lock = threading.Lock()
        self._shutdown_sent = False
        self._done = threading.Event()
        self._serving = False
        self._worker_pids: List[int] = []
        self._closed = False

    # ------------------------------------------------------------ telemetry
    def _slot(self, name: str) -> int:
        return self.metrics.slot(name)

    def acquire_slot(self) -> bool:
        row = self._row
        if row[self._slot("inflight")] >= self.max_inflight:
            row[self._slot("n_shed")] += 1
            return False
        row[self._slot("inflight")] += 1
        return True

    def release_slot(self) -> None:
        self._row[self._slot("inflight")] -= 1

    def note_deadline_exceeded(self) -> None:
        self._row[self._slot("n_deadline_exceeded")] += 1

    @property
    def n_shed(self) -> int:
        return self.metrics.total("n_shed")

    @property
    def n_deadline_exceeded(self) -> int:
        return self.metrics.total("n_deadline_exceeded")

    # -------------------------------------------------------------- payloads
    def health(self) -> Dict[str, Any]:
        """The health payload: liveness plus degradation detail."""
        # Take the snapshot *first*: loading it is what detects corruption
        # and flips the store into its degraded state, so a health probe
        # must observe the store's report only afterwards.
        snapshot = self.store.snapshot()
        report = self.store.integrity_report()
        payload = {
            "status": "degraded" if report["degraded"] else "ok",
            "version": snapshot.version,
            "generation": snapshot.generation,
            "workers": self.workers,
            "n_quarantined": report["n_quarantined"],
            "n_shed": self.n_shed,
            "n_deadline_exceeded": self.n_deadline_exceeded,
        }
        if report["reason"]:
            payload["reason"] = report["reason"]
        return payload

    def metrics_payload(self) -> Dict[str, Any]:
        """The ``/v1/metrics`` payload, aggregated across every worker."""
        self._row[self._slot("rss_anon_kb")] = _rss_anon_kb()
        metrics = self.metrics
        hits = metrics.total("cache_hits")
        misses = metrics.total("cache_misses")
        return {
            "uptime_s": round(time.time() - self._started_at, 3),
            "workers": self.workers,
            "n_requests": metrics.total("n_requests"),
            "requests_by_endpoint": {
                "query": metrics.total("n_query"),
                "stats": metrics.total("n_stats"),
                "health": metrics.total("n_health"),
                "metrics": metrics.total("n_metrics"),
            },
            "n_errors": metrics.total("n_errors"),
            "n_bad_requests": metrics.total("n_bad_requests"),
            "n_shed": metrics.total("n_shed"),
            "n_deadline_exceeded": metrics.total("n_deadline_exceeded"),
            "inflight": metrics.total("inflight"),
            "connections": {
                "total": metrics.total("n_connections"),
                "open": metrics.total("connections_open"),
            },
            "response_cache": {
                "hits": hits,
                "misses": misses,
                "hit_ratio": round(hits / (hits + misses), 4) if hits + misses else 0.0,
                "max_entries": (
                    self.response_cache.max_entries if self.response_cache else 0
                ),
            },
            "latency_ms": metrics.histogram(),
            "per_worker": metrics.per_worker(),
        }

    # -------------------------------------------------------------- routing
    def _handle_request(
        self, protocol: _HTTPProtocol, method: str, target: str, keep_alive: bool
    ) -> None:
        began = time.perf_counter()
        row = self._row
        row[self._slot("n_requests")] += 1
        path, _, query_string = target.partition("?")
        v1 = path.startswith("/v1/")
        surface = "v1" if v1 else "legacy"
        extra_headers: List[Tuple[str, str]] = []
        if not v1 and path in ("/query", "/stats", "/health"):
            extra_headers.extend(_DEPRECATION_HEADERS)

        if method != "GET":
            result = _Result(
                405,
                error={
                    "code": "method_not_allowed",
                    "message": f"Method {method} not allowed; this API is read-only",
                },
            )
            extra_headers.append(("Allow", "GET"))
        elif not self.acquire_slot():
            # Over the in-flight bound: shed immediately with a retry hint
            # instead of queueing behind however many slow requests built up.
            result = _Result(
                503,
                error={
                    "code": "overloaded",
                    "message": "server overloaded; retry shortly",
                },
            )
            extra_headers.append(("Retry-After", str(self.retry_after)))
        else:
            try:
                result = self._dispatch(path, query_string)
            finally:
                self.release_slot()

        status = result.status
        took_ms = (time.perf_counter() - began) * 1000.0
        self.metrics.record_latency(row, took_ms)
        if status >= 500:
            row[self._slot("n_errors")] += 1
        elif status >= 400 and status != 503:
            row[self._slot("n_bad_requests")] += 1
        body = self._render(surface, result, took_ms)
        # Log before writing: once the response bytes hit the socket a client
        # may observe the request as complete, and the log record must not
        # lag that (observability hooks are asserted synchronously in tests).
        if self.log_handler is not None or self.verbose:
            record = {
                "ts": round(time.time(), 6),
                "worker": self._worker_index,
                "pid": os.getpid(),
                "client": f"{protocol.peer[0]}:{protocol.peer[1]}" if protocol.peer else None,
                "method": method,
                "path": path,
                "status": status,
                "took_ms": round(took_ms, 3),
                "bytes": len(body),
            }
            if self.log_handler is not None:
                self.log_handler(record)
            else:
                print(json.dumps(record, sort_keys=True), file=sys.stderr)
        self._write_response(protocol, status, extra_headers, body, keep_alive)

    def _dispatch(self, path: str, query_string: str) -> _Result:
        row = self._row
        try:
            if path in ("/v1/query", "/query"):
                row[self._slot("n_query")] += 1
                return self._answer_query(path == "/query", query_string)
            if path in ("/v1/stats", "/stats"):
                row[self._slot("n_stats")] += 1
                snapshot = self.store.snapshot()
                return _Result(
                    200,
                    data=json.dumps(snapshot.stats()).encode("utf-8"),
                    generation=snapshot.generation,
                )
            if path in ("/v1/health", "/health"):
                row[self._slot("n_health")] += 1
                payload = self.health()
                return _Result(
                    200,
                    data=json.dumps(payload).encode("utf-8"),
                    generation=payload["generation"],
                )
            if path == "/v1/metrics":
                row[self._slot("n_metrics")] += 1
                try:
                    generation = self.store.snapshot().generation
                except Exception:
                    generation = None
                return _Result(
                    200,
                    data=json.dumps(self.metrics_payload()).encode("utf-8"),
                    generation=generation,
                )
            return _Result(
                404,
                error={"code": "not_found", "message": f"Unknown path {path!r}"},
            )
        except ValueError as error:
            return _Result(400, error={"code": "bad_request", "message": str(error)})
        except DeadlineExceeded as error:
            self.note_deadline_exceeded()
            return _Result(
                504, error={"code": "deadline_exceeded", "message": str(error)}
            )
        except Exception as error:  # defensive: a handler bug must surface as
            return _Result(  # a 500 response, never tear down the event loop
                500,
                error={
                    "code": "internal",
                    "message": f"{type(error).__name__}: {error}",
                },
            )

    def _parse_query(self, allow_offset: bool, query_string: str) -> Tuple[KBQuery, str]:
        parsed = self._parsed_queries.get((allow_offset, query_string))
        if parsed is None:
            params = dict(parse_qsl(query_string, keep_blank_values=True))
            # Cursor pagination replaced raw offsets on the public API; the
            # deprecated path keeps accepting offsets in its grace release.
            query = KBQuery.from_params(params, allow_offset=allow_offset)
            parsed = (query, query.canonical_key())
            self._parsed_queries.put((allow_offset, query_string), parsed)
        return parsed

    def _answer_query(self, allow_offset: bool, query_string: str) -> _Result:
        query, canonical_key = self._parse_query(allow_offset, query_string)
        snapshot = self.store.snapshot()
        deadline = (
            time.monotonic() + self.request_deadline
            if self.request_deadline is not None
            else None
        )
        cache = self.response_cache
        if cache is None:
            data = json.dumps(snapshot.query(query, deadline=deadline).to_json())
            return _Result(200, data=data.encode("utf-8"), generation=snapshot.generation)
        # Generations are content-addressed, so the key prefix rotating on
        # republication *is* the invalidation; canonicalization folds every
        # equivalent parameter spelling onto one entry.
        data = cache.get_or_load(
            (snapshot.generation, canonical_key),
            lambda: json.dumps(
                snapshot.query(query, deadline=deadline).to_json()
            ).encode("utf-8"),
        )
        row = self._row
        row[self._slot("cache_hits")] = cache.hits
        row[self._slot("cache_misses")] = cache.loads
        return _Result(200, data=data, generation=snapshot.generation)

    def _render(self, surface: str, result: _Result, took_ms: float) -> bytes:
        """Final response bytes: raw payload (legacy) or the /v1 envelope."""
        if surface == "legacy":
            if result.error is not None:
                return json.dumps({"error": result.error["message"]}).encode("utf-8")
            return result.data
        meta = (
            f'{{"generation":{json.dumps(result.generation)},'
            f'"took_ms":{took_ms:.3f}}}'
        ).encode("utf-8")
        if result.error is not None:
            error = json.dumps(result.error, sort_keys=True).encode("utf-8")
            return b'{"data":null,"error":' + error + b',"meta":' + meta + b"}"
        return b'{"data":' + result.data + b',"error":null,"meta":' + meta + b"}"

    # ------------------------------------------------------------ transport
    def _write_response(
        self,
        protocol: _HTTPProtocol,
        status: int,
        extra_headers: List[Tuple[str, str]],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        transport = protocol.transport
        if transport is None or transport.is_closing():
            return
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        )
        for name, value in extra_headers:
            head += f"{name}: {value}\r\n"
        transport.write(head.encode("latin-1") + b"\r\n" + body)

    # -------------------------------------------------------------- serving
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolves when 0 was requested."""
        name = self._listen_sock.getsockname()
        return name[0], name[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking; run from any thread)."""
        self._serving = True
        self._done.clear()
        try:
            if self.workers > 1:
                self._serve_multiprocess()
            else:
                self._serve_event_loop(0)
        finally:
            self._serving = False
            self._done.set()

    def _serve_event_loop(self, worker_index: int) -> None:
        self._worker_index = worker_index
        self._row = self.metrics.row(worker_index)
        self._row[self.metrics.slot("pid")] = os.getpid()
        loop = asyncio.new_event_loop()
        task = loop.create_task(self._serve_async(loop))
        try:
            loop.run_until_complete(task)
        except KeyboardInterrupt:
            # Ctrl-C interrupts the loop, not the serve coroutine — which is
            # left suspended holding the listener and the sweeper task.  Send
            # the shutdown signal and drain it while the loop is still open
            # (otherwise teardown runs against a closed loop and spews
            # "Exception ignored" / "Task was destroyed" to stderr), then let
            # the interrupt propagate for the conventional 130 exit.
            with self._shutdown_lock:
                if not self._shutdown_sent:
                    self._shutdown_sent = True
                    os.close(self._shutdown_wr)
            loop.run_until_complete(task)
            raise
        finally:
            loop.close()

    async def _serve_async(self, loop: asyncio.AbstractEventLoop) -> None:
        stop = asyncio.Event()
        loop.add_reader(self._shutdown_rd, stop.set)
        server = await loop.create_server(
            lambda: _HTTPProtocol(self), sock=self._listen_sock, start_serving=True
        )
        sweeper = loop.create_task(self._sweep_idle_connections())
        try:
            await stop.wait()
        finally:
            loop.remove_reader(self._shutdown_rd)
            sweeper.cancel()
            server.close()
            for protocol in list(self._connections):
                if protocol.transport is not None:
                    protocol.transport.close()
            try:
                await server.wait_closed()
            except (OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _sweep_idle_connections(self) -> None:
        """Close keep-alive connections idle past the timeout (and refresh
        this worker's RSS gauge while we're here)."""
        if not self.keepalive_timeout:
            return
        interval = max(1.0, min(self.keepalive_timeout / 2, 10.0))
        while True:
            await asyncio.sleep(interval)
            self._row[self._slot("rss_anon_kb")] = _rss_anon_kb()
            horizon = time.monotonic() - self.keepalive_timeout
            for protocol in list(self._connections):
                if protocol.last_activity < horizon and protocol.transport is not None:
                    protocol.transport.close()

    # ----------------------------------------------------- multi-process
    def _spawn_worker(self, index: int) -> int:
        pid = os.fork()
        if pid != 0:
            return pid
        # Worker: drop the write end so the parent's close is the only
        # thing keeping the shutdown pipe open — EOF is the stop signal.
        status = 0
        try:
            os.close(self._shutdown_wr)
            self._serve_event_loop(index)
        except BaseException:  # noqa: BLE001 - nothing may escape a fork
            status = 1
        finally:
            os._exit(status)

    def _serve_multiprocess(self) -> None:
        self._worker_pids = [self._spawn_worker(i) for i in range(self.workers)]
        try:
            while True:
                readable, _, _ = select.select([self._shutdown_rd], [], [], 0.2)
                if readable:
                    break
                # Reap and respawn dead workers: the serving tier stays at
                # strength through a worker crash (same self-healing stance
                # as the executor pool).
                for slot, pid in enumerate(self._worker_pids):
                    done, _ = os.waitpid(pid, os.WNOHANG)
                    if done:
                        self._worker_pids[slot] = self._spawn_worker(slot)
        finally:
            for pid in self._worker_pids:
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:  # pragma: no cover
                    pass
            self._worker_pids = []

    # ------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Stop serving (thread-safe; blocks until the serve loop exits)."""
        with self._shutdown_lock:
            if not self._shutdown_sent:
                self._shutdown_sent = True
                os.close(self._shutdown_wr)
        if self._serving:
            self._done.wait(timeout=10)

    def server_close(self) -> None:
        """Release the listening socket and the shutdown pipe."""
        if self._closed:
            return
        self._closed = True
        self._listen_sock.close()
        with self._shutdown_lock:
            if not self._shutdown_sent:
                self._shutdown_sent = True
                os.close(self._shutdown_wr)
        try:
            os.close(self._shutdown_rd)
        except OSError:  # pragma: no cover
            pass


def create_server(
    kb_root: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    store: Optional[KBStore] = None,
    max_inflight: int = 64,
    request_deadline: Optional[float] = None,
    workers: int = 1,
    cache_entries: int = 1024,
    keepalive_timeout: float = 75.0,
    log_handler: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> KBServer:
    """Build a server over ``kb_root`` (a :class:`KBStore` directory).

    When no ``store`` is supplied one is opened in ``mmap`` segment mode —
    the representation multi-worker serving shares between processes.
    """
    return KBServer(
        store or KBStore(Path(kb_root), segment_mode="mmap"),
        host=host,
        port=port,
        verbose=verbose,
        max_inflight=max_inflight,
        request_deadline=request_deadline,
        workers=workers,
        cache_entries=cache_entries,
        keepalive_timeout=keepalive_timeout,
        log_handler=log_handler,
    )
