"""Error-analysis helpers for the iterative development loop.

The paper's programming model alternates between supervision and classification
"over several iterations as users develop a KBC application ... To support
efficient error analysis, Fonduer enables users to easily inspect the resulting
candidates" (Section 3.3).  This module provides that inspection surface:

* bucket candidates into true/false positives/negatives at a marginal threshold;
* break quality down per document (which documents are dragging quality down);
* attribute disagreements to labeling functions (which LF mislabels which
  bucket most often) so the user knows which rule to fix next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.candidates.mentions import Candidate
from repro.evaluation.metrics import EvaluationResult, evaluate_binary
from repro.supervision.labeling import LabelingFunction


@dataclass
class CandidateError:
    """One misclassified candidate with the context a user needs to debug it."""

    candidate: Candidate
    marginal: float
    gold: int
    bucket: str  # "false_positive" or "false_negative"

    @property
    def document_name(self) -> str:
        document = self.candidate.document
        return document.name if document is not None else ""

    def describe(self) -> str:
        mentions = ", ".join(f"{m.entity_type}={m.text!r}" for m in self.candidate.mentions)
        return (
            f"[{self.bucket}] doc={self.document_name} marginal={self.marginal:.2f} "
            f"({mentions})"
        )


@dataclass
class ErrorAnalysis:
    """The full error-analysis report for one development iteration."""

    metrics: EvaluationResult
    true_positives: List[Candidate] = field(default_factory=list)
    false_positives: List[CandidateError] = field(default_factory=list)
    false_negatives: List[CandidateError] = field(default_factory=list)
    per_document: Dict[str, EvaluationResult] = field(default_factory=dict)
    lf_disagreements: Dict[str, int] = field(default_factory=dict)

    @property
    def n_errors(self) -> int:
        return len(self.false_positives) + len(self.false_negatives)

    def worst_documents(self, limit: int = 5) -> List[Tuple[str, EvaluationResult]]:
        """Documents sorted by ascending F1 (the ones to look at first)."""
        ranked = sorted(self.per_document.items(), key=lambda item: item[1].f1)
        return ranked[:limit]

    def most_disagreeing_lfs(self, limit: int = 5) -> List[Tuple[str, int]]:
        """Labeling functions that most often voted against the gold label."""
        ranked = sorted(self.lf_disagreements.items(), key=lambda item: -item[1])
        return ranked[:limit]

    def summary_lines(self) -> List[str]:
        """A compact textual report (what a notebook user would print)."""
        lines = [
            f"candidates analysed: {self.metrics.true_positives + self.metrics.false_positives + self.metrics.false_negatives}",
            f"precision={self.metrics.precision:.2f} recall={self.metrics.recall:.2f} f1={self.metrics.f1:.2f}",
            f"false positives: {len(self.false_positives)}   false negatives: {len(self.false_negatives)}",
        ]
        if self.per_document:
            worst = self.worst_documents(3)
            lines.append(
                "worst documents: "
                + ", ".join(f"{name} (F1={result.f1:.2f})" for name, result in worst)
            )
        if self.lf_disagreements:
            lines.append(
                "LFs most often disagreeing with gold: "
                + ", ".join(f"{name} ({count})" for name, count in self.most_disagreeing_lfs(3))
            )
        return lines


def analyse_errors(
    candidates: Sequence[Candidate],
    marginals: Sequence[float],
    gold: Sequence[int],
    threshold: float = 0.5,
    labeling_functions: Optional[Sequence[LabelingFunction]] = None,
    label_matrix: Optional[np.ndarray] = None,
) -> ErrorAnalysis:
    """Build an :class:`ErrorAnalysis` for one iteration.

    ``gold`` holds labels in {-1, +1} aligned with ``candidates``.  When both
    ``labeling_functions`` and their dense ``label_matrix`` are supplied, each
    LF's disagreements with the gold labels are counted, pointing the user at
    the rules that most need attention.
    """
    if not (len(candidates) == len(marginals) == len(gold)):
        raise ValueError("candidates, marginals and gold must align")
    marginals = np.asarray(marginals, dtype=float)
    gold = np.asarray(gold)
    predictions = np.where(marginals > threshold, 1, -1)
    metrics = evaluate_binary(predictions, gold)

    analysis = ErrorAnalysis(metrics=metrics)
    per_document_counts: Dict[str, List[int]] = {}

    for index, candidate in enumerate(candidates):
        predicted, actual = int(predictions[index]), int(gold[index])
        document = candidate.document
        document_name = document.name if document is not None else ""
        counts = per_document_counts.setdefault(document_name, [0, 0, 0])  # tp, fp, fn
        if predicted == 1 and actual == 1:
            analysis.true_positives.append(candidate)
            counts[0] += 1
        elif predicted == 1 and actual == -1:
            analysis.false_positives.append(
                CandidateError(candidate, float(marginals[index]), actual, "false_positive")
            )
            counts[1] += 1
        elif predicted == -1 and actual == 1:
            analysis.false_negatives.append(
                CandidateError(candidate, float(marginals[index]), actual, "false_negative")
            )
            counts[2] += 1

    from repro.evaluation.metrics import precision_recall_f1

    for document_name, (tp, fp, fn) in per_document_counts.items():
        analysis.per_document[document_name] = precision_recall_f1(tp, fp, fn)

    if labeling_functions is not None and label_matrix is not None:
        if label_matrix.shape != (len(candidates), len(labeling_functions)):
            raise ValueError("label_matrix shape does not match candidates x labeling functions")
        for column, lf in enumerate(labeling_functions):
            votes = label_matrix[:, column]
            disagreements = int(np.sum((votes != 0) & (votes != gold)))
            analysis.lf_disagreements[lf.name] = disagreements

    return analysis
