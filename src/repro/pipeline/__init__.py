"""The end-to-end Fonduer pipeline and its programming model."""

from repro.pipeline.config import FonduerConfig
from repro.pipeline.error_analysis import ErrorAnalysis, analyse_errors
from repro.pipeline.fonduer import FonduerPipeline, PipelineResult, StreamingResult

__all__ = [
    "ErrorAnalysis",
    "FonduerConfig",
    "FonduerPipeline",
    "PipelineResult",
    "StreamingResult",
    "analyse_errors",
]
