"""Pipeline configuration.

Collects every knob of the three-phase pipeline in one dataclass so the
ablation studies (context scope, feature modalities, supervision modalities,
throttling, model choice) can be expressed as config variations while the rest
of the code stays fixed — mirroring the paper's "change one component and hold
the others constant" methodology (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.candidates.extractor import ContextScope
from repro.features.featurizer import FeatureConfig
from repro.learning.doc_rnn import DocumentRNNConfig
from repro.learning.logistic import LogisticConfig
from repro.learning.multimodal_lstm import MultimodalLSTMConfig
from repro.learning.registry import available_models
from repro.storage.integrity import INTEGRITY_POLICIES
from repro.supervision.label_model import LabelModelConfig


@dataclass
class FonduerConfig:
    """Configuration of one end-to-end pipeline run.

    Parameters
    ----------
    context_scope:
        Maximum context the mentions of one candidate may span (Figure 6 knob).
    feature_config:
        Which feature modalities to generate (Figure 7 knob).
    model:
        Discriminative model, resolved through the string-keyed registry
        (:mod:`repro.learning.registry`): ``"lstm"`` (the paper's multimodal
        LSTM), ``"logistic"`` (the human-tuned feature baseline / a fast
        head; the only model trainable out-of-core), ``"bilstm_only"`` (the
        textual-only Bi-LSTM baseline of Table 4) or ``"doc_rnn"`` (the
        document-level RNN baseline of Table 6).
    threshold:
        Marginal-probability threshold for classification (Phase 3).
    train_split:
        Fraction of candidates used for training; the rest form the test split
        used for end-to-end evaluation.
    seed:
        The *single* source of randomness of a run: it is threaded into the
        train/test split, every model config
        (``lstm_config``/``logistic_config``/``doc_rnn_config`` get their
        ``seed`` field overwritten with this value) and the training
        runtime's epoch shuffling — so two runs under an identical config are
        byte-identical end to end.
    lstm_config / logistic_config / doc_rnn_config:
        Hyperparameters of the registered models (epoch schedules included;
        they participate in the training stage's cache fingerprint, so
        editing one re-runs training alone).
    batch_size:
        Mini-batch size of the unified training runtime
        (:class:`~repro.learning.trainer.Trainer`).
    executor:
        Execution strategy for the document-parallel phases: ``"serial"``,
        ``"thread"``, ``"process"`` or ``"pool"`` (see
        :mod:`repro.engine.executors`).  Every strategy produces identical
        results; this is a throughput knob.  Both process-based strategies
        run streaming shard stages through the persistent fork-once worker
        pool (:mod:`repro.engine.pool`); for in-memory runs ``"pool"``
        behaves like ``"process"`` (fork-per-map, the documented fallback
        for non-shard maps).
    n_workers:
        Worker count for the thread/process/pool executors.
    chunk_size:
        Documents per process-pool task (``None`` = latency-feedback
        autotuning; see :class:`~repro.engine.pool.LatencyAutotuner`).
    use_index:
        Run the hot paths against the per-document columnar
        :class:`~repro.data_model.index.DocumentIndex`: scope-partitioned
        candidate cross-products, O(1) traversal lookups during
        featurization/throttling/labeling, and the vectorized label-model
        M-step.  ``False`` selects the legacy object-walking implementations
        throughout (the two paths produce identical candidates, features and
        marginals; this is a throughput knob, benchmarked by
        ``benchmarks/bench_hotpaths.py``).
    incremental:
        Keep the engine's per-document stage cache between runs, so
        development-mode iteration re-executes only the dirty stages and
        re-running on a corpus with a few changed documents reprocesses only
        those documents.
    cache_max_entries:
        LRU bound on the engine cache (entries are per document per stage;
        stale document/config versions accumulate under new keys until
        evicted).  ``None`` keeps every entry.
    shard_size:
        Documents per shard in streaming mode
        (:meth:`~repro.pipeline.fonduer.FonduerPipeline.run_streaming`).
        Shards are the unit of disk spill, checkpointing and incremental
        invalidation: editing one document re-processes exactly its shard.
    max_resident_shards:
        At most this many shards' parsed documents/candidates are held in
        memory by the :class:`~repro.storage.shards.ShardStore` LRU; older
        shards are evicted and re-read from their on-disk slabs when needed.
        This is the streaming mode's memory bound: peak residency is
        ``O(shard_size * max_resident_shards)`` documents regardless of
        corpus size.  Streaming *training* respects the same bound — the
        slab-backed batch source keeps at most this many shards' feature and
        marginal slabs resident.
    integrity:
        Verify-on-read policy of the streaming shard store: ``"off"`` (trust
        the filesystem), ``"sample"`` (verify every Nth slab read — the
        default: cheap steady-state coverage) or ``"always"`` (verify every
        read; what ``python -m repro verify`` uses).  Corrupt slabs are
        quarantined and re-derived through the stage key chain (see
        ``docs/RELIABILITY.md``).
    worker_deadline:
        Per-chunk hard floor (seconds) for the pooled executor's hung-worker
        watchdog.  ``None`` keeps the adaptive default (a generous multiple
        of the autotuner's per-item latency estimate); setting it also bounds
        the first, cold-start chunk.
    """

    context_scope: ContextScope = ContextScope.DOCUMENT
    feature_config: FeatureConfig = field(default_factory=FeatureConfig)
    model: str = "logistic"
    threshold: float = 0.5
    train_split: float = 0.7
    seed: int = 0
    lstm_config: MultimodalLSTMConfig = field(default_factory=MultimodalLSTMConfig)
    logistic_config: LogisticConfig = field(default_factory=LogisticConfig)
    doc_rnn_config: DocumentRNNConfig = field(default_factory=DocumentRNNConfig)
    label_model_config: LabelModelConfig = field(default_factory=LabelModelConfig)
    batch_size: int = 32
    executor: str = "serial"
    n_workers: int = 4
    chunk_size: Optional[int] = None
    use_index: bool = True
    incremental: bool = True
    cache_max_entries: Optional[int] = None
    shard_size: int = 8
    max_resident_shards: int = 4
    integrity: str = "sample"
    worker_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.use_index:
            # One switch selects the legacy path end to end: the nested
            # configs carry the per-stage flags (and the engine fingerprints
            # derive from them), so they must agree with the master knob.
            # Replaced copies, not in-place mutation — a caller-supplied
            # FeatureConfig/LabelModelConfig may be shared with other
            # pipelines that must keep their indexed defaults.
            self.feature_config = replace(self.feature_config, use_index=False)
            self.label_model_config = replace(self.label_model_config, vectorized=False)
        # One seed to rule the run: the pipeline seed overrides the per-model
        # seeds (replaced copies again), so split, weight init and epoch
        # shuffling all derive from this single value and repeated runs are
        # byte-identical.
        if self.lstm_config.seed != self.seed:
            self.lstm_config = replace(self.lstm_config, seed=self.seed)
        if self.logistic_config.seed != self.seed:
            self.logistic_config = replace(self.logistic_config, seed=self.seed)
        if self.doc_rnn_config.seed != self.seed:
            self.doc_rnn_config = replace(self.doc_rnn_config, seed=self.seed)
        if self.model not in available_models():
            raise ValueError(
                f"Unknown model {self.model!r}; registered models: "
                f"{', '.join(available_models())}"
            )
        if not 0.0 < self.train_split < 1.0:
            raise ValueError("train_split must lie strictly between 0 and 1")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.executor not in ("serial", "thread", "process", "pool"):
            raise ValueError(
                f"Unknown executor {self.executor!r}; expected 'serial', "
                "'thread', 'process' or 'pool'"
            )
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be positive (or None for automatic)")
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ValueError("cache_max_entries must be positive (or None for unbounded)")
        if self.shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        if self.max_resident_shards < 1:
            raise ValueError("max_resident_shards must be at least 1")
        if self.integrity not in INTEGRITY_POLICIES:
            raise ValueError(
                f"Unknown integrity policy {self.integrity!r}; expected one of "
                f"{', '.join(INTEGRITY_POLICIES)}"
            )
        if self.worker_deadline is not None and self.worker_deadline <= 0:
            raise ValueError("worker_deadline must be positive (or None for adaptive)")

    def model_config(self):
        """The active registry model's hyperparameter config."""
        if self.model == "logistic":
            return self.logistic_config
        if self.model == "doc_rnn":
            return self.doc_rnn_config
        return self.lstm_config
