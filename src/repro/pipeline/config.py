"""Pipeline configuration.

Collects every knob of the three-phase pipeline in one dataclass so the
ablation studies (context scope, feature modalities, supervision modalities,
throttling, model choice) can be expressed as config variations while the rest
of the code stays fixed — mirroring the paper's "change one component and hold
the others constant" methodology (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.candidates.extractor import ContextScope
from repro.features.featurizer import FeatureConfig
from repro.learning.multimodal_lstm import MultimodalLSTMConfig
from repro.supervision.label_model import LabelModelConfig


@dataclass
class FonduerConfig:
    """Configuration of one end-to-end pipeline run.

    Parameters
    ----------
    context_scope:
        Maximum context the mentions of one candidate may span (Figure 6 knob).
    feature_config:
        Which feature modalities to generate (Figure 7 knob).
    model:
        Discriminative model: ``"lstm"`` (the paper's multimodal LSTM),
        ``"logistic"`` (the human-tuned feature baseline / a fast head), or
        ``"bilstm_only"`` (the textual-only Bi-LSTM baseline of Table 4).
    threshold:
        Marginal-probability threshold for classification (Phase 3).
    train_split:
        Fraction of candidates used for training; the rest form the test split
        used for end-to-end evaluation.
    """

    context_scope: ContextScope = ContextScope.DOCUMENT
    feature_config: FeatureConfig = field(default_factory=FeatureConfig)
    model: str = "logistic"
    threshold: float = 0.5
    train_split: float = 0.7
    seed: int = 0
    lstm_config: MultimodalLSTMConfig = field(default_factory=MultimodalLSTMConfig)
    label_model_config: LabelModelConfig = field(default_factory=LabelModelConfig)

    def __post_init__(self) -> None:
        if self.model not in ("lstm", "logistic", "bilstm_only"):
            raise ValueError(f"Unknown model {self.model!r}")
        if not 0.0 < self.train_split < 1.0:
            raise ValueError("train_split must lie strictly between 0 and 1")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
