"""The end-to-end Fonduer pipeline (paper Figure 2, Section 3.2).

Phase 1 — KBC initialization: the user supplies the relation schema; the
corpus parser turns raw documents into data-model instances.

Phase 2 — candidate generation: matchers define mentions, throttlers prune the
cross-product, candidates are materialized.

Phase 3 — supervision and classification: candidates are featurized
(multimodal feature library), labeling functions are applied, the generative
label model denoises them into marginals, the discriminative model (multimodal
LSTM or a logistic head) is trained on the training split, and candidates
above the marginal threshold are written into the knowledge base.

The pipeline supports the two modes of operation of the programming model
(Section 3.3): ``development`` (labels are re-applied and the discriminative
step re-run on the cached candidates/features when LFs change) and
``production`` (one full run).

Since every phase is embarrassingly parallel at document granularity, the
pipeline is a thin driver over the execution engine (:mod:`repro.engine`): it
compiles the phases into per-document operators, runs them through the
configured executor (serial, thread pool or process pool — all strategies
produce identical results), and fronts every stage with an incremental cache
keyed by content hashes, so development-mode iteration re-executes only the
stages whose inputs or configuration actually changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.candidates.extractor import CandidateExtractor, ExtractionResult
from repro.candidates.matchers import Matcher
from repro.candidates.mentions import Candidate
from repro.candidates.ngrams import MentionNgrams
from repro.candidates.throttlers import Throttler
from repro.data_model.context import Document
from repro.engine.cache import IncrementalCache
from repro.engine.dag import PipelineEngine, StageStats
from repro.engine.executors import create_executor
from repro.engine.operators import CandidateOp, FeaturizeOp, LabelOp, ParseOp
from repro.evaluation.metrics import EvaluationResult, evaluate_entity_tuples
from repro.features.featurizer import Featurizer
from repro.learning.logistic import SparseLogisticRegression
from repro.learning.multimodal_lstm import MultimodalLSTM, MultimodalLSTMConfig
from repro.parsing.corpus import CorpusParser, RawDocument
from repro.pipeline.config import FonduerConfig
from repro.storage.kb import KnowledgeBase, RelationSchema
from repro.storage.sparse import COOMatrix, CSRMatrix, LILMatrix
from repro.supervision.gold import GoldTuples
from repro.supervision.label_model import LabelModel, MajorityVoter
from repro.supervision.labeling import LabelingFunction, LFApplier

ExtractedEntry = Tuple[str, Tuple[str, ...]]


@dataclass
class PipelineResult:
    """Everything one end-to-end run produces."""

    kb: KnowledgeBase
    extracted_entries: Set[ExtractedEntry]
    metrics: Optional[EvaluationResult]
    n_candidates: int
    n_train: int
    n_test: int
    marginals: np.ndarray
    extraction: ExtractionResult
    stage_stats: Dict[str, StageStats] = field(default_factory=dict)


class FonduerPipeline:
    """Programmable end-to-end KBC pipeline for one relation."""

    def __init__(
        self,
        schema: RelationSchema,
        matchers: Dict[str, Matcher],
        labeling_functions: Sequence[LabelingFunction],
        throttlers: Optional[Sequence[Throttler]] = None,
        mention_space: Optional[MentionNgrams] = None,
        config: Optional[FonduerConfig] = None,
    ) -> None:
        if set(matchers) != set(schema.entity_types):
            raise ValueError(
                "Matchers must be provided for exactly the schema's entity types; "
                f"expected {schema.entity_types}, got {tuple(matchers)}"
            )
        self.schema = schema
        self.config = config or FonduerConfig()
        # Preserve schema order for the matchers dict.
        ordered_matchers = {t: matchers[t] for t in schema.entity_types}
        self.extractor = CandidateExtractor(
            schema.name,
            ordered_matchers,
            mention_space=mention_space,
            throttlers=throttlers,
            context_scope=self.config.context_scope,
            use_index=self.config.use_index,
        )
        self.labeling_functions = list(labeling_functions)
        self.featurizer = Featurizer(self.config.feature_config)

        # The execution engine: one executor and one incremental cache shared
        # by every stage across the lifetime of the pipeline (that persistence
        # is what makes development-mode iteration cheap).
        self.engine = PipelineEngine(
            executor=create_executor(
                self.config.executor, self.config.n_workers, self.config.chunk_size
            ),
            cache=IncrementalCache(
                enabled=self.config.incremental,
                max_entries=self.config.cache_max_entries,
            ),
        )

        # Cached state for development mode: per-document stage outputs plus
        # their cache keys, and the flattened corpus-order views.
        self._doc_extractions: List[ExtractionResult] = []
        self._doc_keys: List[str] = []
        self._candidates: List[Candidate] = []
        self._feature_rows: List[Dict[str, float]] = []
        self._feature_fingerprint: Optional[str] = None
        self._extraction: Optional[ExtractionResult] = None
        self._stage_stats: Dict[str, StageStats] = {}

    # ------------------------------------------------------------- phase 1
    def parse_documents(
        self,
        raw_documents: Sequence[RawDocument],
        parser: Optional[CorpusParser] = None,
    ) -> List[Document]:
        """Phase 1: parse raw documents through the engine (parallel, cached)."""
        parse_op = ParseOp(parser)
        output = self.engine.run_stage(
            parse_op,
            list(raw_documents),
            [parse_op.unit_fingerprint(raw) for raw in raw_documents],
        )
        self._stage_stats["parse"] = output.stats
        return output.results

    # ------------------------------------------------------------- phase 2/3
    def generate_candidates(self, documents: Sequence[Document]) -> ExtractionResult:
        """Phase 2: extract and cache candidates from parsed documents."""
        documents = list(documents)
        candidate_op = CandidateOp(self.extractor)
        output = self.engine.run_stage(
            candidate_op,
            documents,
            [candidate_op.unit_fingerprint(document) for document in documents],
        )
        self._doc_extractions = output.results
        self._doc_keys = output.keys
        # Fresh accounting for the new run, but keep the parse stage recorded
        # by an immediately preceding parse_documents (run_from_raw's Phase 1).
        parse_stats = self._stage_stats.get("parse")
        self._stage_stats = {"candidates": output.stats}
        if parse_stats is not None:
            self._stage_stats["parse"] = parse_stats
        self._extraction = self._assemble_extraction(output.results)
        self._candidates = self._extraction.candidates
        self._feature_rows = []
        self._feature_fingerprint = None
        return self._extraction

    def _assemble_extraction(
        self, doc_extractions: Sequence[ExtractionResult]
    ) -> ExtractionResult:
        """Concatenate per-document extractions in corpus order.

        Candidate ids are renumbered positionally so every executor strategy
        (and every cached re-run) yields identical ids for identical corpora.
        """
        merged = ExtractionResult.merge(doc_extractions)
        for entity_type in self.extractor.matchers:
            merged.mentions_by_type.setdefault(entity_type, 0)
        for position, candidate in enumerate(merged.candidates):
            candidate.id = position
        return merged

    def featurize(self) -> List[Dict[str, float]]:
        """Multimodal featurization of the cached candidates (cached itself)."""
        if self._extraction is None:
            raise RuntimeError("generate_candidates must be called before featurize")
        if self.featurizer.config is not self.config.feature_config:
            # The feature config object was swapped on the live pipeline
            # (ablation-style reconfiguration); rebuild the featurizer.
            self.featurizer = Featurizer(self.config.feature_config)
        featurize_op = FeaturizeOp(self.featurizer)
        fingerprint = featurize_op.fingerprint()
        if self._feature_rows and fingerprint == self._feature_fingerprint:
            # Memo hit: account it as a fully cached stage execution.
            self._stage_stats["featurize"] = StageStats(
                name="featurize",
                n_units=len(self._doc_extractions),
                n_cached=len(self._doc_extractions),
            )
            return self._feature_rows
        output = self.engine.run_stage(featurize_op, self._doc_extractions, self._doc_keys)
        self._stage_stats["featurize"] = output.stats
        self._feature_rows = [row for doc_rows in output.results for row in doc_rows]
        self._feature_fingerprint = fingerprint
        return self._feature_rows

    def apply_labeling_functions(self) -> np.ndarray:
        """Apply the current LF set to the cached candidates (dense label matrix)."""
        if self._extraction is None:
            raise RuntimeError("generate_candidates must be called before labeling")
        if not self.labeling_functions:
            raise ValueError("At least one labeling function is required")
        label_op = LabelOp(self.labeling_functions, use_index=self.config.use_index)
        output = self.engine.run_stage(label_op, self._doc_extractions, self._doc_keys)
        self._stage_stats["label"] = output.stats
        blocks = output.results
        if not blocks:
            return label_op.applier.empty_dense()
        return np.vstack(blocks)

    def compute_marginals(self, label_matrix: Optional[np.ndarray] = None) -> np.ndarray:
        """Denoise LF output into per-candidate marginals via the label model."""
        L = label_matrix if label_matrix is not None else self.apply_labeling_functions()
        if L.shape[1] == 1:
            # A single LF carries no agreement structure; use its votes directly.
            return MajorityVoter().predict_proba(L)
        model = LabelModel(self.config.label_model_config)
        return model.fit_predict_proba(L)

    # ------------------------------------------------------------------ runs
    def _split(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.config.seed)
        order = rng.permutation(n)
        n_train = max(1, int(round(self.config.train_split * n)))
        if n_train >= n:
            n_train = n - 1 if n > 1 else n
        return order[:n_train], order[n_train:]

    def _build_model(self):
        if self.config.model == "logistic":
            return SparseLogisticRegression()
        lstm_config = self.config.lstm_config
        if self.config.model == "bilstm_only":
            # Textual-only: same LSTM, but the feature rows passed in are empty.
            return MultimodalLSTM(self.schema.arity, lstm_config)
        return MultimodalLSTM(self.schema.arity, lstm_config)

    def run(
        self,
        documents: Sequence[Document],
        gold: Optional[Iterable[ExtractedEntry]] = None,
        reuse_candidates: bool = False,
    ) -> PipelineResult:
        """Execute the full pipeline on parsed documents.

        When ``gold`` (an iterable of (document, entity tuple) pairs) is given,
        end-to-end precision/recall/F1 are computed against it over the full
        corpus, as in Table 2.  ``reuse_candidates`` skips Phase 2 and reuses
        the cached candidates/features (development-mode iteration); it is an
        error to request reuse before any extraction has happened.
        """
        if reuse_candidates:
            if self._extraction is None:
                raise RuntimeError(
                    "reuse_candidates=True but no candidates have been extracted yet; "
                    "call generate_candidates() or run() without reuse_candidates first"
                )
            # Fresh accounting: Phase 2 is skipped entirely, so the stats of
            # this run contain only the stages it actually executed.
            self._stage_stats = {}
        else:
            self.generate_candidates(documents)
        candidates = self._candidates
        if not candidates:
            kb = KnowledgeBase([self.schema])
            metrics = (
                evaluate_entity_tuples(set(), set(gold)) if gold is not None else None
            )
            return PipelineResult(
                kb=kb,
                extracted_entries=set(),
                metrics=metrics,
                n_candidates=0,
                n_train=0,
                n_test=0,
                marginals=np.zeros(0),
                extraction=self._extraction,
                stage_stats=dict(self._stage_stats),
            )

        feature_rows = self.featurize()
        marginal_targets = self.compute_marginals()

        train_index, test_index = self._split(len(candidates))
        # As in data programming, candidates on which every labeling function
        # abstained (marginal ≈ prior) carry no supervision signal; training on
        # them only drags predictions toward the prior, so they are filtered
        # out of the training split when enough labeled candidates remain.
        informative = [i for i in train_index if abs(marginal_targets[i] - 0.5) > 0.05]
        if len(informative) >= max(10, len(train_index) // 4):
            train_index = np.asarray(informative)
        train_candidates = [candidates[i] for i in train_index]
        train_rows = [feature_rows[i] for i in train_index]
        train_targets = marginal_targets[train_index]

        use_empty_features = self.config.model == "bilstm_only"
        model = self._build_model()
        if self.config.model == "logistic":
            # Freeze the feature rows into CSR once; the discriminative head
            # trains on the row slices and predicts via one sparse mat-vec.
            features_csr = CSRMatrix.from_rows(feature_rows)
            model.fit(features_csr.select_positions(train_index), train_targets)
            all_marginals = model.predict_proba(features_csr)
        else:
            lstm_rows = [{} for _ in train_rows] if use_empty_features else train_rows
            model.fit(train_candidates, lstm_rows, train_targets)
            predict_rows = [{} for _ in feature_rows] if use_empty_features else feature_rows
            all_marginals = model.predict_proba(candidates, predict_rows)

        # Classification: candidates above the threshold become relation mentions.
        kb = KnowledgeBase([self.schema])
        extracted: Set[ExtractedEntry] = set()
        for candidate, marginal in zip(candidates, all_marginals):
            if marginal > self.config.threshold:
                document = candidate.document
                document_name = document.name if document is not None else ""
                extracted.add((document_name, candidate.entity_tuple))
                kb.add(self.schema.name, candidate.entity_tuple)

        metrics = evaluate_entity_tuples(extracted, set(gold)) if gold is not None else None
        return PipelineResult(
            kb=kb,
            extracted_entries=extracted,
            metrics=metrics,
            n_candidates=len(candidates),
            n_train=len(train_index),
            n_test=len(test_index),
            marginals=all_marginals,
            extraction=self._extraction,
            stage_stats=dict(self._stage_stats),
        )

    def run_from_raw(
        self,
        raw_documents: Sequence[RawDocument],
        gold: Optional[Iterable[ExtractedEntry]] = None,
        parser: Optional[CorpusParser] = None,
    ) -> PipelineResult:
        """Execute the full pipeline starting from *unparsed* documents.

        Parsing runs through the engine like every other phase, so it is
        document-parallel and incrementally cached: re-running on a corpus
        where a few raw documents changed re-parses only those documents.
        """
        documents = self.parse_documents(raw_documents, parser=parser)
        return self.run(documents, gold=gold)

    # -------------------------------------------------------- development mode
    def update_labeling_functions(
        self, labeling_functions: Sequence[LabelingFunction]
    ) -> None:
        """Replace the LF set (development mode keeps candidates and features).

        No explicit invalidation is needed: the label stage's cache keys
        incorporate the LF set's fingerprint, so the next run re-labels while
        the candidate and featurization stages keep hitting their caches.
        """
        self.labeling_functions = list(labeling_functions)

    @property
    def candidates(self) -> List[Candidate]:
        return list(self._candidates)

    @property
    def stage_stats(self) -> Dict[str, StageStats]:
        """Engine accounting of the most recent stage executions."""
        return dict(self._stage_stats)
