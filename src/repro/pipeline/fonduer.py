"""The end-to-end Fonduer pipeline (paper Figure 2, Section 3.2).

Phase 1 — KBC initialization: the user supplies the relation schema; the
corpus parser turns raw documents into data-model instances.

Phase 2 — candidate generation: matchers define mentions, throttlers prune the
cross-product, candidates are materialized.

Phase 3 — supervision and classification: candidates are featurized
(multimodal feature library), labeling functions are applied, the generative
label model denoises them into marginals, the discriminative model (multimodal
LSTM or a logistic head) is trained on the training split, and candidates
above the marginal threshold are written into the knowledge base.

The pipeline supports the two modes of operation of the programming model
(Section 3.3): ``development`` (labels are re-applied and the discriminative
step re-run on the cached candidates/features when LFs change) and
``production`` (one full run).

Since every phase is embarrassingly parallel at document granularity, the
pipeline is a thin driver over the execution engine (:mod:`repro.engine`): it
compiles the phases into per-document operators, runs them through the
configured executor (serial, thread pool or process pool — all strategies
produce identical results), and fronts every stage with an incremental cache
keyed by content hashes, so development-mode iteration re-executes only the
stages whose inputs or configuration actually changed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.candidates.extractor import CandidateExtractor, ExtractionResult
from repro.candidates.matchers import Matcher
from repro.candidates.mentions import Candidate
from repro.candidates.ngrams import MentionNgrams
from repro.candidates.throttlers import Throttler
from repro.data_model.context import Document
from repro.engine.cache import IncrementalCache
from repro.engine.dag import PipelineEngine, ShardStageStats, StageStats
from repro.engine.executors import ProcessExecutor, create_executor
from repro.engine.fingerprint import combine_keys
from repro.engine.pool import LatencyAutotuner, PersistentWorkerPool, WatchdogConfig
from repro.engine.operators import (
    CandidateOp,
    FeaturizeOp,
    KBOp,
    LabelOp,
    MarginalsOp,
    NodeTableOp,
    ParseOp,
    TrainOp,
)
from repro.evaluation.metrics import EvaluationResult, evaluate_entity_tuples
from repro.features.featurizer import Featurizer
from repro.kb.store import KBStore
from repro.learning.registry import create_model, model_spec
from repro.learning.trainer import (
    CandidateBatchSource,
    InMemoryBatchSource,
    SlabBatchSource,
    SlabLabelSource,
    Trainer,
    TrainerCheckpoint,
    TrainerConfig,
    TrainStats,
)
from repro.parsing.corpus import CorpusParser, RawDocument
from repro.pipeline.config import FonduerConfig
from repro.storage.kb import KnowledgeBase, RelationSchema
from repro.storage.shards import (
    ShardStore,
    concat_feature_slabs,
    concat_label_slabs,
)
from repro.storage.sparse import CSRMatrix
from repro.supervision.labeling import LabelingFunction

ExtractedEntry = Tuple[str, Tuple[str, ...]]


@dataclass
class PipelineResult:
    """Everything one end-to-end run produces."""

    kb: KnowledgeBase
    extracted_entries: Set[ExtractedEntry]
    metrics: Optional[EvaluationResult]
    n_candidates: int
    n_train: int
    n_test: int
    marginals: np.ndarray
    extraction: ExtractionResult
    stage_stats: Dict[str, StageStats] = field(default_factory=dict)
    #: The trained discriminative model (None when there were no candidates).
    model: Optional[object] = None


#: Progress callback of streaming mode: called once per checkpoint boundary
#: with a dict ``{"shard", "shard_id", "stage", "resumed"}`` — *after* the
#: checkpoint for that boundary has been persisted, so raising from the
#: callback models a process kill at exactly that boundary.  Per-shard stages
#: (including the KB-segment ``kb`` stage of the classification tail) fire
#: one event per shard; the corpus-global ``marginals`` stage fires a single
#: event with ``shard == -1``; the training stage fires one event per epoch
#: with ``stage == "train"`` and an additional ``"epoch"`` entry.
StreamingProgress = Callable[[Dict[str, object]], None]

#: Order in which streaming mode runs each shard through the DAG (the
#: per-shard stages; the corpus-global marginals + train stages follow).
STREAMING_STAGES = ("parse", "nodes", "candidates", "featurize", "label")


@dataclass
class StreamingResult:
    """Everything one out-of-core streaming run produces.

    The classification outputs (KB, extracted entries, metrics, marginals)
    are byte-identical to the in-memory :class:`PipelineResult` of the same
    corpus and configuration; the per-document structures stay in the shard
    store's slabs, with the global feature matrix (CSR) and label matrix
    exposed here because the final model fit needs them anyway.
    """

    kb: KnowledgeBase
    extracted_entries: Set[ExtractedEntry]
    metrics: Optional[EvaluationResult]
    n_candidates: int
    n_train: int
    n_test: int
    marginals: np.ndarray
    features: CSRMatrix
    label_matrix: np.ndarray
    n_documents: int
    n_shards: int
    mentions_by_type: Dict[str, int] = field(default_factory=dict)
    n_raw_candidates: int = 0
    n_throttled: int = 0
    stage_stats: Dict[str, ShardStageStats] = field(default_factory=dict)
    #: The trained discriminative model (restored from its checkpoint when
    #: training was resumed; None when there were no candidates).
    model: Optional[object] = None
    #: Epoch accounting of the training stage (run vs resumed epochs).
    train_stats: Optional[TrainStats] = None
    #: Where the queryable KB store was published (``workdir/kb``); serve it
    #: with ``python -m repro serve`` or query it via :class:`repro.kb.KBStore`.
    kb_dir: Optional[str] = None
    #: The snapshot version this run published.
    kb_version: int = 0
    #: Verify-on-read accounting of the shard store (policy, verified /
    #: corrupt / repaired counts, per-event detail) — the chaos suite
    #: asserts every injected fault surfaces here, never silently absorbed.
    integrity: Optional[Dict[str, object]] = None
    #: Supervision accounting of the pooled executor (worker respawns,
    #: watchdog warnings/kills); ``None`` for serial and thread runs.
    pool_stats: Optional[Dict[str, object]] = None

    @property
    def n_resumed(self) -> int:
        """Total checkpoint boundaries skipped via resume (excluding epochs)."""
        return sum(stats.n_resumed for stats in self.stage_stats.values())

    @property
    def n_computed(self) -> int:
        """Total checkpoint boundaries actually executed (excluding epochs)."""
        return sum(stats.n_computed for stats in self.stage_stats.values())


class _ShardStageWorker:
    """Slab-to-slab stage runner living inside forked pool workers.

    The persistent pool (:class:`~repro.engine.pool.PersistentWorkerPool`)
    forks once per streaming run with this handler; the store, shard
    handles and operators are inherited through process memory, so task
    messages carry only ``(shard position, stage names)``.  Each worker
    reads its inputs from the immutable slab files, computes the stage
    group, writes the output slabs itself and replies with a small stat
    dict — documents and candidates never cross a process boundary.

    Ownership split: workers write *slabs only*.  The parent alone touches
    each shard's ``stages.json`` (invalidate before dispatch, mark on
    completion, in shard order), so checkpoint records never race.

    The worker's forked copy of the store keeps its own ``BoundedLRU`` of
    resident shards; with shard-affinity scheduling the documents a worker
    parsed are still resident when its candidate stage arrives, so
    per-shard state (``DocumentIndex``, resident slabs) stays warm across
    waves.

    Candidate ids are assigned *shard-locally* here (0-based per shard)
    rather than corpus-globally as in the serial path: the global running
    offset is inherently sequential, and nothing downstream reads the ids —
    classification, features, labels and KB provenance are all positional
    (the checkpoint records carry the global offset, maintained by the
    parent in shard order).
    """

    def __init__(
        self,
        store: ShardStore,
        shards: Sequence[object],
        operators: Dict[str, object],
    ) -> None:
        self.store = store
        self.shards = list(shards)
        self.operators = operators

    def __call__(self, batch: Sequence[Tuple[int, Tuple[str, ...]]]) -> List[Dict]:
        return [self._run_entry(position, stages) for position, stages in batch]

    def _run_entry(self, position: int, stages: Tuple[str, ...]) -> Dict[str, Dict]:
        shard = self.shards[position]
        store = self.store
        out: Dict[str, Dict] = {}
        for stage_name in stages:
            start = time.perf_counter()
            operator = self.operators[stage_name]
            if stage_name == "parse":
                docs = operator.process_many(store.shard_raws(shard))
                store.write_docs(shard, docs)
                result = {"n_units": len(docs), "extra": {"n_documents": len(docs)}}
            elif stage_name == "nodes":
                docs = store.load_docs(shard)
                store.write_node_slab(shard, operator.process_many(docs))
                result = {"n_units": len(docs), "extra": {"n_documents": len(docs)}}
            elif stage_name == "candidates":
                docs = store.load_docs(shard)
                extractions = operator.process_many(docs)
                candidate_position = 0
                for extraction in extractions:
                    for candidate in extraction.candidates:
                        candidate.id = candidate_position
                        candidate_position += 1
                store.write_candidates(shard, extractions)
                result = {
                    "n_units": len(docs),
                    "extra": {"n_candidates": candidate_position},
                }
            elif stage_name == "featurize":
                extractions = store.load_candidates(shard)
                slab = store.write_feature_slab(
                    shard, operator.process_many(extractions)
                )
                result = {
                    "n_units": len(extractions),
                    "extra": {"n_rows": slab.n_rows, "n_columns": len(slab.columns)},
                }
            elif stage_name == "label":
                extractions = store.load_candidates(shard)
                blocks = operator.process_many(extractions)
                block = (
                    np.vstack(blocks) if blocks else operator.applier.empty_dense()
                )
                store.write_label_slab(shard, block)
                result = {
                    "n_units": len(extractions),
                    "extra": {
                        "n_rows": int(block.shape[0]),
                        "lf_names": operator.lf_names,
                    },
                }
            else:  # pragma: no cover - wave definitions are static
                raise ValueError(f"unknown streaming stage {stage_name!r}")
            # Ship the freshly written slabs' content hashes home: the
            # parent owns stages.json, so verify-on-read checksums must ride
            # the reply (the worker's pending-checksum map dies with it).
            result["extra"]["checksums"] = store.stage_checksums(shard, stage_name)
            result["seconds"] = time.perf_counter() - start
            out[stage_name] = result
        return out


#: Stage groups the pooled streaming path dispatches as waves: parse and
#: nodes fuse (the node slab is derived from the documents the same worker
#: just parsed and still holds resident), as do featurize and label (both
#: consume the candidate slab, so fusing halves slab reads and keeps the
#: shard resident in one worker).
_STREAMING_WAVES = (("parse", "nodes"), ("candidates",), ("featurize", "label"))


class FonduerPipeline:
    """Programmable end-to-end KBC pipeline for one relation."""

    def __init__(
        self,
        schema: RelationSchema,
        matchers: Dict[str, Matcher],
        labeling_functions: Sequence[LabelingFunction],
        throttlers: Optional[Sequence[Throttler]] = None,
        mention_space: Optional[MentionNgrams] = None,
        config: Optional[FonduerConfig] = None,
    ) -> None:
        if set(matchers) != set(schema.entity_types):
            raise ValueError(
                "Matchers must be provided for exactly the schema's entity types; "
                f"expected {schema.entity_types}, got {tuple(matchers)}"
            )
        self.schema = schema
        self.config = config or FonduerConfig()
        # Preserve schema order for the matchers dict.
        ordered_matchers = {t: matchers[t] for t in schema.entity_types}
        self.extractor = CandidateExtractor(
            schema.name,
            ordered_matchers,
            mention_space=mention_space,
            throttlers=throttlers,
            context_scope=self.config.context_scope,
            use_index=self.config.use_index,
        )
        self.labeling_functions = list(labeling_functions)
        self.featurizer = Featurizer(self.config.feature_config)

        # The execution engine: one executor and one incremental cache shared
        # by every stage across the lifetime of the pipeline (that persistence
        # is what makes development-mode iteration cheap).
        self.engine = PipelineEngine(
            executor=create_executor(
                self.config.executor, self.config.n_workers, self.config.chunk_size
            ),
            cache=IncrementalCache(
                enabled=self.config.incremental,
                max_entries=self.config.cache_max_entries,
            ),
        )

        # Cached state for development mode: per-document stage outputs plus
        # their cache keys, and the flattened corpus-order views.
        self._doc_extractions: List[ExtractionResult] = []
        self._doc_keys: List[str] = []
        self._candidates: List[Candidate] = []
        self._feature_rows: List[Dict[str, float]] = []
        self._feature_fingerprint: Optional[str] = None
        self._extraction: Optional[ExtractionResult] = None
        self._stage_stats: Dict[str, StageStats] = {}

    # ------------------------------------------------------------- phase 1
    def parse_documents(
        self,
        raw_documents: Sequence[RawDocument],
        parser: Optional[CorpusParser] = None,
    ) -> List[Document]:
        """Phase 1: parse raw documents through the engine (parallel, cached)."""
        parse_op = ParseOp(parser)
        output = self.engine.run_stage(
            parse_op,
            list(raw_documents),
            [parse_op.unit_fingerprint(raw) for raw in raw_documents],
        )
        self._stage_stats["parse"] = output.stats
        return output.results

    # ------------------------------------------------------------- phase 2/3
    def generate_candidates(self, documents: Sequence[Document]) -> ExtractionResult:
        """Phase 2: extract and cache candidates from parsed documents."""
        documents = list(documents)
        candidate_op = CandidateOp(self.extractor)
        output = self.engine.run_stage(
            candidate_op,
            documents,
            [candidate_op.unit_fingerprint(document) for document in documents],
        )
        self._doc_extractions = output.results
        self._doc_keys = output.keys
        # Fresh accounting for the new run, but keep the parse stage recorded
        # by an immediately preceding parse_documents (run_from_raw's Phase 1).
        parse_stats = self._stage_stats.get("parse")
        self._stage_stats = {"candidates": output.stats}
        if parse_stats is not None:
            self._stage_stats["parse"] = parse_stats
        self._extraction = self._assemble_extraction(output.results)
        self._candidates = self._extraction.candidates
        self._feature_rows = []
        self._feature_fingerprint = None
        return self._extraction

    def _assemble_extraction(
        self, doc_extractions: Sequence[ExtractionResult]
    ) -> ExtractionResult:
        """Concatenate per-document extractions in corpus order.

        Candidate ids are renumbered positionally so every executor strategy
        (and every cached re-run) yields identical ids for identical corpora.
        """
        merged = ExtractionResult.merge(doc_extractions)
        for entity_type in self.extractor.matchers:
            merged.mentions_by_type.setdefault(entity_type, 0)
        for position, candidate in enumerate(merged.candidates):
            candidate.id = position
        return merged

    def featurize(self) -> List[Dict[str, float]]:
        """Multimodal featurization of the cached candidates (cached itself)."""
        if self._extraction is None:
            raise RuntimeError("generate_candidates must be called before featurize")
        if self.featurizer.config is not self.config.feature_config:
            # The feature config object was swapped on the live pipeline
            # (ablation-style reconfiguration); rebuild the featurizer.
            self.featurizer = Featurizer(self.config.feature_config)
        featurize_op = FeaturizeOp(self.featurizer)
        fingerprint = featurize_op.fingerprint()
        if self._feature_rows and fingerprint == self._feature_fingerprint:
            # Memo hit: account it as a fully cached stage execution.
            self._stage_stats["featurize"] = StageStats(
                name="featurize",
                n_units=len(self._doc_extractions),
                n_cached=len(self._doc_extractions),
            )
            return self._feature_rows
        output = self.engine.run_stage(featurize_op, self._doc_extractions, self._doc_keys)
        self._stage_stats["featurize"] = output.stats
        self._feature_rows = [row for doc_rows in output.results for row in doc_rows]
        self._feature_fingerprint = fingerprint
        return self._feature_rows

    def apply_labeling_functions(self) -> np.ndarray:
        """Apply the current LF set to the cached candidates (dense label matrix)."""
        if self._extraction is None:
            raise RuntimeError("generate_candidates must be called before labeling")
        if not self.labeling_functions:
            raise ValueError("At least one labeling function is required")
        label_op = LabelOp(self.labeling_functions, use_index=self.config.use_index)
        output = self.engine.run_stage(label_op, self._doc_extractions, self._doc_keys)
        self._stage_stats["label"] = output.stats
        blocks = output.results
        if not blocks:
            return label_op.applier.empty_dense()
        return np.vstack(blocks)

    def compute_marginals(self, label_matrix: Optional[np.ndarray] = None) -> np.ndarray:
        """Denoise LF output into per-candidate marginals via the label model.

        Delegates to :class:`~repro.engine.operators.MarginalsOp` — the same
        operator (and blockwise EM) streaming mode runs over per-shard label
        slabs, so both paths produce bitwise-identical marginals.
        """
        L = label_matrix if label_matrix is not None else self.apply_labeling_functions()
        return MarginalsOp(self.config.label_model_config).process(L)

    # ------------------------------------------------------------------ runs
    def _split(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.config.seed)
        order = rng.permutation(n)
        n_train = max(1, int(round(self.config.train_split * n)))
        if n_train >= n:
            n_train = n - 1 if n > 1 else n
        return order[:n_train], order[n_train:]

    def _select_train_test(
        self, marginal_targets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Train/test split plus the informative-candidate filter.

        As in data programming, candidates on which every labeling function
        abstained (marginal ≈ prior) carry no supervision signal; training on
        them only drags predictions toward the prior, so they are filtered
        out of the training split when enough labeled candidates remain.
        Shared by the in-memory and streaming paths so both derive identical
        splits from identical marginals.
        """
        train_index, test_index = self._split(len(marginal_targets))
        informative = [i for i in train_index if abs(marginal_targets[i] - 0.5) > 0.05]
        if len(informative) >= max(10, len(train_index) // 4):
            train_index = np.asarray(informative)
        return train_index, test_index

    def _build_model(self):
        """Instantiate the configured discriminative model via the registry."""
        return create_model(self.config.model, self.schema.arity, self.config)

    def _build_trainer(self) -> Trainer:
        """The unified training runtime under this pipeline's schedule/seed."""
        return Trainer(
            TrainerConfig(
                n_epochs=self.config.model_config().n_epochs,
                batch_size=self.config.batch_size,
                seed=self.config.seed,
            )
        )

    def run(
        self,
        documents: Sequence[Document],
        gold: Optional[Iterable[ExtractedEntry]] = None,
        reuse_candidates: bool = False,
    ) -> PipelineResult:
        """Execute the full pipeline on parsed documents.

        When ``gold`` (an iterable of (document, entity tuple) pairs) is given,
        end-to-end precision/recall/F1 are computed against it over the full
        corpus, as in Table 2.  ``reuse_candidates`` skips Phase 2 and reuses
        the cached candidates/features (development-mode iteration); it is an
        error to request reuse before any extraction has happened.
        """
        if reuse_candidates:
            if self._extraction is None:
                raise RuntimeError(
                    "reuse_candidates=True but no candidates have been extracted yet; "
                    "call generate_candidates() or run() without reuse_candidates first"
                )
            # Fresh accounting: Phase 2 is skipped entirely, so the stats of
            # this run contain only the stages it actually executed.
            self._stage_stats = {}
        else:
            self.generate_candidates(documents)
        candidates = self._candidates
        if not candidates:
            kb = KnowledgeBase([self.schema])
            metrics = (
                evaluate_entity_tuples(set(), set(gold)) if gold is not None else None
            )
            return PipelineResult(
                kb=kb,
                extracted_entries=set(),
                metrics=metrics,
                n_candidates=0,
                n_train=0,
                n_test=0,
                marginals=np.zeros(0),
                extraction=self._extraction,
                stage_stats=dict(self._stage_stats),
            )

        feature_rows = self.featurize()
        marginal_targets = self.compute_marginals()

        train_index, test_index = self._select_train_test(marginal_targets)

        # Train through the unified runtime: the model choice resolves via
        # the registry, and the Trainer drives the same epoch × mini-batch
        # schedule streaming mode replays from shard slabs.
        use_empty_features = self.config.model == "bilstm_only"
        model = self._build_model()
        trainer = self._build_trainer()
        if model_spec(self.config.model).needs_candidates:
            train_candidates = [candidates[i] for i in train_index]
            train_rows = (
                None
                if use_empty_features
                else [feature_rows[i] for i in train_index]
            )
            trainer.fit(
                model,
                CandidateBatchSource(
                    train_candidates, train_rows, marginal_targets[train_index]
                ),
            )
            predict_rows = None if use_empty_features else feature_rows
            all_marginals = trainer.predict(
                model, CandidateBatchSource(candidates, predict_rows)
            )
        else:
            # Freeze the feature rows into CSR once; the sparse head trains
            # on batch-local row slices and predicts via one sparse mat-vec.
            features_csr = CSRMatrix.from_rows(feature_rows)
            trainer.fit(
                model,
                InMemoryBatchSource(
                    features_csr, marginal_targets, positions=train_index
                ),
            )
            all_marginals = model.predict_proba(features_csr)

        # Classification: candidates above the threshold become relation mentions.
        kb = KnowledgeBase([self.schema])
        extracted: Set[ExtractedEntry] = set()
        for candidate, marginal in zip(candidates, all_marginals):
            if marginal > self.config.threshold:
                document = candidate.document
                document_name = document.name if document is not None else ""
                extracted.add((document_name, candidate.entity_tuple))
                kb.add(self.schema.name, candidate.entity_tuple)

        metrics = evaluate_entity_tuples(extracted, set(gold)) if gold is not None else None
        return PipelineResult(
            kb=kb,
            extracted_entries=extracted,
            metrics=metrics,
            n_candidates=len(candidates),
            n_train=len(train_index),
            n_test=len(test_index),
            marginals=all_marginals,
            extraction=self._extraction,
            stage_stats=dict(self._stage_stats),
            model=model,
        )

    def run_from_raw(
        self,
        raw_documents: Sequence[RawDocument],
        gold: Optional[Iterable[ExtractedEntry]] = None,
        parser: Optional[CorpusParser] = None,
    ) -> PipelineResult:
        """Execute the full pipeline starting from *unparsed* documents.

        Parsing runs through the engine like every other phase, so it is
        document-parallel and incrementally cached: re-running on a corpus
        where a few raw documents changed re-parses only those documents.
        """
        documents = self.parse_documents(raw_documents, parser=parser)
        return self.run(documents, gold=gold)

    # -------------------------------------------------------------- streaming
    def run_streaming(
        self,
        corpus: Union[str, os.PathLike, Sequence[RawDocument]],
        workdir: Union[str, os.PathLike],
        gold: Optional[Iterable[ExtractedEntry]] = None,
        parser: Optional[CorpusParser] = None,
        progress: Optional[StreamingProgress] = None,
    ) -> StreamingResult:
        """Out-of-core execution: the corpus streams through disk-backed shards.

        ``corpus`` is either a corpus directory (see
        :func:`repro.datasets.base.read_corpus_dir`; its ``gold.json`` is used
        when ``gold`` is not given) or a sequence of raw documents.
        ``workdir`` hosts the :class:`~repro.storage.shards.ShardStore` —
        shard slabs plus the checkpoint manifest.

        Documents are partitioned into content-addressed shards of
        ``config.shard_size``; each shard runs parse → candidates →
        featurize → label with its outputs persisted as slabs, at most
        ``config.max_resident_shards`` shards' heavy objects resident at
        once.  After every shard × stage the manifest is checkpointed
        atomically, so killing the process anywhere and re-invoking resumes
        from the last completed boundary; a completed run's classification
        outputs are byte-identical to :meth:`run` on the same corpus.

        The learning tail runs out-of-core too: the blockwise label model
        streams the per-shard label slabs into noise-aware marginals (written
        back as per-shard marginal slabs under one corpus-global checkpoint),
        and the discriminative model trains through the unified runtime
        (:mod:`repro.learning.trainer`) on slab-backed mini-batches — feature
        rows and targets stream from the shard slabs with at most
        ``max_resident_shards`` shards' slabs resident, the model state is
        checkpointed atomically after every epoch, and a killed run resumes
        at the last epoch boundary with a bitwise-identical final model.
        Only registry models flagged streaming-capable (the sparse
        ``"logistic"`` head) can train here — the sequence models walk live
        candidate objects, which never spill to slabs.

        Cache keys chain through the tail: the marginals key combines every
        shard's label key with the label-model fingerprint, the training key
        combines the marginals key, every shard's featurize key and the
        :class:`~repro.engine.operators.TrainOp` fingerprint — so editing one
        LF re-runs label → marginals → train only, and editing one model
        hyperparameter re-runs training alone.

        The run ends by publishing the *queryable KB*
        (:class:`~repro.kb.store.KBStore` under ``workdir/kb``): each shard's
        above-threshold tuples — with document/span provenance and marginals
        — become an immutable columnar segment keyed by
        :meth:`KBOp.shard_key`, and one atomic snapshot-pointer swap makes
        the new version visible to concurrent readers (``python -m repro
        serve``).  An incremental re-run reuses every segment whose classify
        key is unchanged and rewrites only segments whose content changed.
        """
        spec = model_spec(self.config.model)
        if not spec.streaming:
            raise NotImplementedError(
                f"Streaming mode supports slab-trainable models only "
                f"(model={self.config.model!r} consumes candidate objects, "
                f"which are never all resident); use model='logistic'"
            )
        if not self.labeling_functions:
            raise ValueError("At least one labeling function is required")

        raw_loader = None
        fingerprints = None
        if isinstance(corpus, (str, os.PathLike)):
            from repro.datasets.base import (
                corpus_dir_gold,
                corpus_dir_records,
                load_record_document,
            )
            from repro.engine.fingerprint import raw_document_fingerprint

            # Stream the corpus once to content-address the shards, keeping
            # only fingerprints and metadata: one document's text is resident
            # at a time here, and the raw loader below re-reads exactly one
            # shard's files when its parse stage runs — the whole corpus's
            # raw text is never held in memory.
            records = corpus_dir_records(corpus)
            record_by_path = {str(record["path"]): record for record in records}
            raws = []
            fingerprints = []
            for record in records:
                raw = load_record_document(corpus, record)
                fingerprints.append(raw_document_fingerprint(raw))
                raws.append(
                    RawDocument(
                        name=raw.name,
                        content="",
                        format=raw.format,
                        metadata=dict(raw.metadata),
                        path=raw.path,
                    )
                )

            def raw_loader(shard, corpus=corpus, record_by_path=record_by_path):
                return [
                    load_record_document(corpus, record_by_path[doc_path])
                    for doc_path in shard.doc_paths
                ]

            if gold is None:
                gold_entries = corpus_dir_gold(corpus)
                if gold_entries:
                    gold = gold_entries
        else:
            raws = list(corpus)

        store = ShardStore(
            workdir,
            max_resident_shards=self.config.max_resident_shards,
            integrity=self.config.integrity,
        )
        shards = store.open_corpus(
            raws,
            self.config.shard_size,
            fingerprints=fingerprints,
            raw_loader=raw_loader,
        )

        parse_op = ParseOp(parser)
        nodes_op = NodeTableOp()
        candidate_op = CandidateOp(self.extractor)
        if self.featurizer.config is not self.config.feature_config:
            self.featurizer = Featurizer(self.config.feature_config)
        featurize_op = FeaturizeOp(self.featurizer)
        label_op = LabelOp(self.labeling_functions, use_index=self.config.use_index)

        # Operator fingerprints are loop invariants; keys chain per shard.
        parse_fp = parse_op.fingerprint()
        nodes_fp = nodes_op.fingerprint()
        candidates_fp = candidate_op.fingerprint()
        featurize_fp = featurize_op.fingerprint()
        label_fp = label_op.fingerprint()

        stats = {name: ShardStageStats(name) for name in STREAMING_STAGES}
        cache = self.engine.cache

        def boundary(shard, stage, resumed):
            if progress is not None:
                progress(
                    {
                        "shard": shard.position,
                        "shard_id": shard.shard_id,
                        "stage": stage,
                        "resumed": resumed,
                    }
                )

        operators = (parse_op, nodes_op, candidate_op, featurize_op, label_op)
        fingerprints = (parse_fp, nodes_fp, candidates_fp, featurize_fp, label_fp)
        # Process-based executors stream the shards through the persistent
        # fork-once worker pool (shared-memory handoff via slabs, warm
        # per-worker caches); serial and thread strategies keep the strictly
        # in-order loop.  Both produce byte-identical outputs.
        # Self-healing hook: a corrupt slab detected by verify-on-read is
        # quarantined and re-derived in place through the stage key chain
        # (recompute only that shard × stage).  The serial path registers it
        # before streaming so a mid-run detection heals inline; the pooled
        # path registers it only *after* its waves — forked workers must
        # never inherit a repairer (the parent owns stages.json; a worker
        # that detects corruption raises instead, failing its task).
        repairer = self._make_stage_repairer(store, shards, operators)
        self._last_pool_stats: Optional[Dict[str, object]] = None
        if isinstance(self.engine.executor, ProcessExecutor):
            cand_keys, feature_keys, label_keys = self._stream_stages_pooled(
                store, shards, operators, fingerprints, stats, cache, boundary
            )
            store.set_repairer(repairer)
        else:
            store.set_repairer(repairer)
            cand_keys, feature_keys, label_keys = self._stream_stages_serial(
                store, shards, operators, fingerprints, stats, cache, boundary
            )

        # ------------------------------------------------ final classification
        # Heavy per-document objects are no longer needed: from here on the
        # run works off the light candidate metadata and the flat slabs.
        store.evict_all()
        metas = [store.load_candidates_meta(shard) for shard in shards]
        entries: List[ExtractedEntry] = [
            entry for meta in metas for entry in meta["entries"]
        ]
        mentions_by_type: Dict[str, int] = {}
        for entity_type in self.extractor.matchers:
            mentions_by_type.setdefault(entity_type, 0)
        n_raw_candidates = 0
        n_throttled = 0
        for meta in metas:
            for entity_type, count in meta["mentions_by_type"].items():
                mentions_by_type[entity_type] = (
                    mentions_by_type.get(entity_type, 0) + count
                )
            n_raw_candidates += meta["n_raw_candidates"]
            n_throttled += meta["n_throttled"]

        label_matrix = concat_label_slabs(
            store.load_label_slab(shard) for shard in shards
        )
        features = concat_feature_slabs(
            store.load_feature_slab(shard) for shard in shards
        )

        kb_dir = store.workdir / "kb"

        def build_result(**kwargs) -> StreamingResult:
            return StreamingResult(
                n_documents=len(raws),
                n_shards=len(shards),
                mentions_by_type=mentions_by_type,
                n_raw_candidates=n_raw_candidates,
                n_throttled=n_throttled,
                stage_stats=dict(stats),
                features=features,
                label_matrix=label_matrix,
                kb_dir=str(kb_dir),
                integrity=store.integrity_report(),
                pool_stats=self._last_pool_stats,
                **kwargs,
            )

        def publish_kb(marginal_values: np.ndarray, train_key: str) -> int:
            """Upsert per-shard KB segments and swap the snapshot pointer.

            One boundary per shard, keyed by :meth:`KBOp.shard_key` — a
            shard whose candidates, features, model and threshold are all
            unchanged reuses its published segment without recomputing the
            tuple set; a threshold-only edit recomputes the (cheap) marginal
            filter but rewrites only segments whose content changed.  Each
            shard's segment is checkpointed in its durable ``stages.json``
            as it is written, so a run killed between a KB boundary and the
            final pointer swap resumes those shards too.
            """
            kb_op = KBOp(self.schema.name, self.config.threshold)
            kb_update = KBStore(kb_dir).begin_update()
            stage = stats.setdefault("kb", ShardStageStats("kb"))
            offset = 0
            for shard, meta, cand_key, feature_key in zip(
                shards, metas, cand_keys, feature_keys
            ):
                n_rows = len(meta["entries"])
                kb_key = kb_op.shard_key(cand_key, feature_key, train_key)
                cache.record_stage_key("kb", shard.shard_id, kb_key)
                stage.n_shards += 1
                start = time.perf_counter()
                record = shard.stages.get("kb")
                if (
                    record is not None
                    and record.get("key") == kb_key
                    and kb_update.adopt(
                        shard.position,
                        shard.shard_id,
                        kb_key,
                        str(record["file"]),
                        int(record["n_rows"]),
                    )
                ):
                    stage.n_resumed += 1
                    stage.seconds += time.perf_counter() - start
                    boundary(shard, "kb", resumed=True)
                else:
                    # Row -> source path positionally via per_doc_counts:
                    # two documents in one shard may share a *name* (the
                    # same-name collision PR 3 fixed for fingerprints), so a
                    # name->path dict would misattribute provenance.
                    path_of_row = [
                        doc_path
                        for doc_path, count in zip(
                            shard.doc_paths, meta["per_doc_counts"]
                        )
                        for _ in range(count)
                    ]
                    spans = meta["spans"]
                    intervals = meta["intervals"]
                    rows = []
                    for j in range(n_rows):
                        marginal = float(marginal_values[offset + j])
                        if marginal > self.config.threshold:
                            doc_name, entity_tuple = meta["entries"][j]
                            rows.append(
                                {
                                    "relation": self.schema.name,
                                    "doc_name": doc_name,
                                    "doc_path": (
                                        path_of_row[j]
                                        if j < len(path_of_row)
                                        else doc_name
                                    ),
                                    "entities": list(entity_tuple),
                                    "spans": spans[j] if j < len(spans) else [],
                                    "interval": (
                                        list(intervals[j])
                                        if j < len(intervals)
                                        else [-1, -1]
                                    ),
                                    "marginal": marginal,
                                    "candidate": offset + j,
                                }
                            )
                    store.invalidate_stage(shard, "kb")
                    segment = kb_update.upsert(
                        shard.position, shard.shard_id, kb_key, rows
                    )
                    store.mark_stage(
                        shard,
                        "kb",
                        kb_key,
                        extra={"file": segment["file"], "n_rows": segment["n_rows"]},
                    )
                    stage.n_computed += 1
                    stage.n_units += len(rows)
                    stage.seconds += time.perf_counter() - start
                    boundary(shard, "kb", resumed=False)
                offset += n_rows
            snapshot = kb_update.publish(
                meta={
                    "relation": self.schema.name,
                    "threshold": self.config.threshold,
                    "n_documents": len(raws),
                }
            )
            return snapshot.version

        if not entries:
            kb = KnowledgeBase([self.schema])
            metrics = (
                evaluate_entity_tuples(set(), set(gold)) if gold is not None else None
            )
            kb_version = publish_kb(np.zeros(0), train_key="untrained")
            return build_result(
                kb=kb,
                extracted_entries=set(),
                metrics=metrics,
                n_candidates=0,
                n_train=0,
                n_test=0,
                marginals=np.zeros(0),
                kb_version=kb_version,
            )

        # ---- marginals: label slabs → noise-aware marginal slabs ----------
        # Corpus-global (EM reads every shard's labels), so the stage is one
        # checkpoint boundary: all shards' marginal slabs are written and
        # marked under one derived key that chains every label key — editing
        # one LF or one document invalidates the whole stage.
        marginals_op = MarginalsOp(self.config.label_model_config)
        marginals_key = combine_keys(*label_keys, marginals_op.fingerprint())
        cache.record_stage_key("marginals", "corpus", marginals_key)
        stage = stats.setdefault("marginals", ShardStageStats("marginals"))
        start = time.perf_counter()
        stage.n_shards += 1
        if all(
            store.stage_complete(shard, "marginals", marginals_key)
            for shard in shards
        ):
            marginal_targets = np.concatenate(
                [store.load_marginal_slab(shard) for shard in shards]
            )
            stage.n_resumed += 1
            stage.seconds += time.perf_counter() - start
            boundary_event = {"shard": -1, "shard_id": "corpus", "stage": "marginals"}
            if progress is not None:
                progress({**boundary_event, "resumed": True})
        else:
            for shard in shards:
                store.invalidate_stage(shard, "marginals")
            marginal_targets = marginals_op.process(
                SlabLabelSource(
                    store, shards, max_resident=self.config.max_resident_shards
                )
            )
            offset = 0
            for shard in shards:
                n_rows = int(shard.stages["label"]["n_rows"])
                store.write_marginal_slab(
                    shard, marginal_targets[offset : offset + n_rows]
                )
                store.mark_stage(
                    shard, "marginals", marginals_key, extra={"n_rows": n_rows}
                )
                offset += n_rows
            stage.n_computed += 1
            stage.n_units += len(marginal_targets)
            stage.seconds += time.perf_counter() - start
            if progress is not None:
                progress(
                    {
                        "shard": -1,
                        "shard_id": "corpus",
                        "stage": "marginals",
                        "resumed": False,
                    }
                )

        # ---- train: feature + marginal slabs → discriminative model -------
        # Mini-batches stream from the shard slabs (bounded residency); the
        # model state checkpoints atomically after every epoch under a key
        # that chains marginals + every featurize key + the TrainOp
        # fingerprint, so resume is exact and a hyperparameter edit retrains
        # from scratch while a threshold edit retrains nothing.
        train_index, test_index = self._select_train_test(marginal_targets)
        train_op = TrainOp(
            model_name=self.config.model,
            model_config=self.config.model_config(),
            batch_size=self.config.batch_size,
            seed=self.config.seed,
            train_split=self.config.train_split,
        )
        train_key = combine_keys(marginals_key, *feature_keys, train_op.fingerprint())
        cache.record_stage_key("train", "corpus", train_key)
        model = train_op.build_model(self.schema.arity, self.config)
        trainer = train_op.build_trainer()
        checkpoint = TrainerCheckpoint(
            store.workdir / "training" / "checkpoint.pkl", key=train_key
        )

        def on_epoch(epoch: int, resumed: bool) -> None:
            if progress is not None:
                progress(
                    {
                        "shard": -1,
                        "shard_id": "corpus",
                        "stage": "train",
                        "epoch": epoch,
                        "resumed": resumed,
                    }
                )

        train_stats = trainer.fit(
            model,
            SlabBatchSource(
                store,
                shards,
                positions=train_index,
                with_targets=True,
                max_resident=self.config.max_resident_shards,
            ),
            checkpoint=checkpoint,
            on_epoch=on_epoch,
        )

        # Classification streams too: predictions per shard slab are bitwise
        # what the in-memory path computes on the concatenated CSR.
        all_marginals = trainer.predict(
            model,
            SlabBatchSource(
                store,
                shards,
                with_targets=False,
                max_resident=self.config.max_resident_shards,
            ),
        )

        kb = KnowledgeBase([self.schema])
        extracted: Set[ExtractedEntry] = set()
        for (document_name, entity_tuple), marginal in zip(entries, all_marginals):
            if marginal > self.config.threshold:
                extracted.add((document_name, entity_tuple))
                kb.add(self.schema.name, entity_tuple)

        metrics = (
            evaluate_entity_tuples(extracted, set(gold)) if gold is not None else None
        )
        # Publish the queryable KB: per-shard segments under chained classify
        # keys, behind one atomically-swapped snapshot pointer.
        kb_version = publish_kb(all_marginals, train_key=train_key)
        return build_result(
            kb=kb,
            extracted_entries=extracted,
            metrics=metrics,
            n_candidates=len(entries),
            n_train=len(train_index),
            n_test=len(test_index),
            marginals=all_marginals,
            model=model,
            train_stats=train_stats,
            kb_version=kb_version,
        )

    # ------------------------------------------------- streaming shard stages
    def _make_stage_repairer(
        self,
        store: ShardStore,
        shards: Sequence[object],
        operators: Tuple[ParseOp, NodeTableOp, CandidateOp, FeaturizeOp, LabelOp],
    ) -> Callable[[object, str], None]:
        """Self-healing hook: re-derive one corrupt shard × stage in place.

        Called by the store's verify-on-read path after it quarantined a
        corrupt slab (``docs/RELIABILITY.md``).  Each stage recomputes from
        its *inputs* exactly as the streaming loop would — the input reads
        go through the same verified loaders, so a corrupt upstream slab
        heals recursively (the store's per-(shard, stage) reentrancy guard
        bounds the recursion to the stage chain).  The stage record survives
        the repair; the store refreshes its checksums from the rewritten
        slabs and re-verifies before declaring the read healed.
        """
        parse_op, nodes_op, candidate_op, featurize_op, label_op = operators

        def repair(shard, stage: str) -> None:
            if stage == "parse":
                store.write_docs(shard, parse_op.process_many(store.shard_raws(shard)))
            elif stage == "nodes":
                docs = store.load_docs(shard)
                store.write_node_slab(shard, nodes_op.process_many(docs))
            elif stage == "candidates":
                extractions = candidate_op.process_many(store.load_docs(shard))
                # Re-assign candidate ids from the checkpointed stable-id
                # range: ids are parse-time provenance (classification is
                # positional throughout), but the rewritten slab should
                # carry the same global numbering the serial path records.
                record = shard.stages.get("candidates") or {}
                position = int(record.get("offset", 0))
                for extraction in extractions:
                    for candidate in extraction.candidates:
                        candidate.id = position
                        position += 1
                store.write_candidates(shard, extractions)
            elif stage == "featurize":
                extractions = store.load_candidates(shard)
                store.write_feature_slab(shard, featurize_op.process_many(extractions))
            elif stage == "label":
                extractions = store.load_candidates(shard)
                blocks = label_op.process_many(extractions)
                block = (
                    np.vstack(blocks) if blocks else label_op.applier.empty_dense()
                )
                store.write_label_slab(shard, block)
            elif stage == "marginals":
                # Corpus-global EM, deterministic: recompute the full vector
                # from every shard's (verified) label slab and rewrite only
                # the corrupt shard's slice.
                marginals_op = MarginalsOp(self.config.label_model_config)
                values = marginals_op.process(
                    SlabLabelSource(
                        store, shards, max_resident=self.config.max_resident_shards
                    )
                )
                offset = 0
                for other in shards:
                    n_rows = int(other.stages["label"]["n_rows"])
                    if other.shard_id == shard.shard_id:
                        store.write_marginal_slab(
                            other, values[offset : offset + n_rows]
                        )
                        break
                    offset += n_rows
            else:
                raise ValueError(f"No repairer for stage {stage!r}")

        return repair

    def _stream_stages_serial(
        self,
        store: ShardStore,
        shards: Sequence[object],
        operators: Tuple[ParseOp, NodeTableOp, CandidateOp, FeaturizeOp, LabelOp],
        fingerprints: Tuple[str, str, str, str, str],
        stats: Dict[str, ShardStageStats],
        cache: IncrementalCache,
        boundary: Callable[[object, str, bool], None],
    ) -> Tuple[List[str], List[str], List[str]]:
        """In-order per-shard stage loop (serial and thread executors)."""
        parse_op, nodes_op, candidate_op, featurize_op, label_op = operators
        parse_fp, nodes_fp, candidates_fp, featurize_fp, label_fp = fingerprints

        candidate_offset = 0
        document_offset = 0
        #: Per-shard derived keys of the candidates/featurize/label stages,
        #: collected for the corpus-global marginals/train keys and the
        #: per-shard KB classify keys of the classification tail.
        cand_keys: List[str] = []
        feature_keys: List[str] = []
        label_keys: List[str] = []
        for shard in shards:
            docs = None
            extractions = None

            # ---- parse: raw files → Document slab -------------------------
            stage = stats["parse"]
            start = time.perf_counter()
            parse_key = combine_keys(shard.shard_id, parse_fp)
            cache.record_stage_key("parse", shard.shard_id, parse_key)
            stage.n_shards += 1
            if store.stage_complete(shard, "parse", parse_key):
                stage.n_resumed += 1
                stage.seconds += time.perf_counter() - start
                boundary(shard, "parse", resumed=True)
            else:
                store.invalidate_stage(shard, "parse")
                docs = self.engine.run_shard_stage(parse_op, store.shard_raws(shard))
                store.write_docs(shard, docs)
                store.mark_stage(
                    shard,
                    "parse",
                    parse_key,
                    extra={"doc_offset": document_offset, "n_documents": len(docs)},
                )
                stage.n_computed += 1
                stage.n_units += len(docs)
                stage.seconds += time.perf_counter() - start
                boundary(shard, "parse", resumed=False)

            # ---- nodes: Document slab → interval-encoding slab ------------
            stage = stats["nodes"]
            start = time.perf_counter()
            nodes_key = combine_keys(parse_key, nodes_fp)
            cache.record_stage_key("nodes", shard.shard_id, nodes_key)
            stage.n_shards += 1
            if store.stage_complete(shard, "nodes", nodes_key):
                stage.n_resumed += 1
                stage.seconds += time.perf_counter() - start
                boundary(shard, "nodes", resumed=True)
            else:
                if docs is None:
                    docs = store.load_docs(shard)
                store.invalidate_stage(shard, "nodes")
                tables = self.engine.run_shard_stage(nodes_op, docs)
                store.write_node_slab(shard, tables)
                store.mark_stage(
                    shard, "nodes", nodes_key, extra={"n_documents": len(docs)}
                )
                stage.n_computed += 1
                stage.n_units += len(docs)
                stage.seconds += time.perf_counter() - start
                boundary(shard, "nodes", resumed=False)

            # ---- candidates: Document slab → ExtractionResult slab --------
            stage = stats["candidates"]
            start = time.perf_counter()
            cand_key = combine_keys(parse_key, candidates_fp)
            cand_keys.append(cand_key)
            cache.record_stage_key("candidates", shard.shard_id, cand_key)
            stage.n_shards += 1
            if store.stage_complete(shard, "candidates", cand_key):
                record = shard.stages["candidates"]
                shard_candidates = int(record["n_candidates"])
                if int(record.get("offset", -1)) != candidate_offset:
                    # An upstream edit shifted this shard's global candidate
                    # range: refresh the checkpointed stable-id range so the
                    # store's records stay positional truth.  The candidate
                    # ids inside candidates.pkl refresh only when this shard
                    # itself recomputes — final classification never reads
                    # them (it is positional throughout), so they are
                    # parse-time provenance, not consumed state.
                    extra = {
                        k: v for k, v in record.items() if k not in ("key", "complete")
                    }
                    extra["offset"] = candidate_offset
                    store.mark_stage(shard, "candidates", cand_key, extra=extra)
                stage.n_resumed += 1
                stage.seconds += time.perf_counter() - start
                boundary(shard, "candidates", resumed=True)
            else:
                if docs is None:
                    docs = store.load_docs(shard)
                store.invalidate_stage(shard, "candidates")
                extractions = self.engine.run_shard_stage(candidate_op, docs)
                # Global positional candidate ids, identical to the in-memory
                # path's corpus-order renumbering: shards complete strictly in
                # order, so the running offset is exact (and checkpointed as
                # this shard's stable-id range; a later resume refreshes the
                # record if upstream edits shift the range).
                position = candidate_offset
                for extraction in extractions:
                    for candidate in extraction.candidates:
                        candidate.id = position
                        position += 1
                shard_candidates = position - candidate_offset
                store.write_candidates(shard, extractions)
                store.mark_stage(
                    shard,
                    "candidates",
                    cand_key,
                    extra={
                        "offset": candidate_offset,
                        "n_candidates": shard_candidates,
                    },
                )
                stage.n_computed += 1
                stage.n_units += len(docs)
                stage.seconds += time.perf_counter() - start
                boundary(shard, "candidates", resumed=False)
            candidate_offset += shard_candidates
            document_offset += shard.n_documents

            # ---- featurize: ExtractionResult slab → CSR feature slab ------
            stage = stats["featurize"]
            start = time.perf_counter()
            feature_key = combine_keys(cand_key, featurize_fp)
            feature_keys.append(feature_key)
            cache.record_stage_key("featurize", shard.shard_id, feature_key)
            stage.n_shards += 1
            if store.stage_complete(shard, "featurize", feature_key):
                stage.n_resumed += 1
                stage.seconds += time.perf_counter() - start
                boundary(shard, "featurize", resumed=True)
            else:
                if extractions is None:
                    extractions = store.load_candidates(shard)
                store.invalidate_stage(shard, "featurize")
                per_doc_rows = self.engine.run_shard_stage(featurize_op, extractions)
                slab = store.write_feature_slab(shard, per_doc_rows)
                store.mark_stage(
                    shard,
                    "featurize",
                    feature_key,
                    extra={"n_rows": slab.n_rows, "n_columns": len(slab.columns)},
                )
                stage.n_computed += 1
                stage.n_units += len(extractions)
                stage.seconds += time.perf_counter() - start
                boundary(shard, "featurize", resumed=False)

            # ---- label: ExtractionResult slab → dense label slab ----------
            stage = stats["label"]
            start = time.perf_counter()
            label_key = combine_keys(cand_key, label_fp)
            label_keys.append(label_key)
            cache.record_stage_key("label", shard.shard_id, label_key)
            stage.n_shards += 1
            if store.stage_complete(shard, "label", label_key):
                stage.n_resumed += 1
                stage.seconds += time.perf_counter() - start
                boundary(shard, "label", resumed=True)
            else:
                if extractions is None:
                    extractions = store.load_candidates(shard)
                store.invalidate_stage(shard, "label")
                blocks = self.engine.run_shard_stage(label_op, extractions)
                block = (
                    np.vstack(blocks) if blocks else label_op.applier.empty_dense()
                )
                store.write_label_slab(shard, block)
                store.mark_stage(
                    shard,
                    "label",
                    label_key,
                    extra={"n_rows": int(block.shape[0]), "lf_names": label_op.lf_names},
                )
                stage.n_computed += 1
                stage.n_units += len(extractions)
                stage.seconds += time.perf_counter() - start
                boundary(shard, "label", resumed=False)
        return cand_keys, feature_keys, label_keys

    def _stream_stages_pooled(
        self,
        store: ShardStore,
        shards: Sequence[object],
        operators: Tuple[ParseOp, NodeTableOp, CandidateOp, FeaturizeOp, LabelOp],
        fingerprints: Tuple[str, str, str, str, str],
        stats: Dict[str, ShardStageStats],
        cache: IncrementalCache,
        boundary: Callable[[object, str, bool], None],
    ) -> Tuple[List[str], List[str], List[str]]:
        """Shard stages through the persistent fork-once worker pool.

        The pool forks after the corpus is opened and the operators are
        built, so workers inherit everything through process memory; it
        stays alive across all three waves (parse → candidates →
        featurize+label), so per-worker caches stay warm.  Workers write
        slabs and return stat dicts; the *parent* owns every ``stages.json``
        write and fires boundary events strictly in shard order — a task
        finishing out of order parks in a buffer until every earlier shard
        of the wave has been marked.  Checkpoint semantics are therefore
        unchanged: an event fires only after its boundary is durable, and a
        kill mid-wave loses at most the unmarked tasks.

        Per-shard tasks are batched by a :class:`LatencyAutotuner` (shards
        per task grow when stages are cheap), and each shard's home worker
        is ``position % n_workers`` across every wave, so the worker that
        parsed a shard usually still holds its documents when the candidate
        stage arrives.
        """
        parse_op, nodes_op, candidate_op, featurize_op, label_op = operators
        parse_fp, nodes_fp, candidates_fp, featurize_fp, label_fp = fingerprints

        parse_keys = [combine_keys(shard.shard_id, parse_fp) for shard in shards]
        nodes_keys = [combine_keys(key, nodes_fp) for key in parse_keys]
        cand_keys = [combine_keys(key, candidates_fp) for key in parse_keys]
        feature_keys = [combine_keys(key, featurize_fp) for key in cand_keys]
        label_keys = [combine_keys(key, label_fp) for key in cand_keys]
        keys_of = {
            "parse": parse_keys,
            "nodes": nodes_keys,
            "candidates": cand_keys,
            "featurize": feature_keys,
            "label": label_keys,
        }
        doc_offsets: List[int] = []
        total_docs = 0
        for shard in shards:
            doc_offsets.append(total_docs)
            total_docs += shard.n_documents

        handler = _ShardStageWorker(
            store,
            shards,
            {
                "parse": parse_op,
                "nodes": nodes_op,
                "candidates": candidate_op,
                "featurize": featurize_op,
                "label": label_op,
            },
        )
        n_workers = max(1, min(self.engine.executor.n_workers, len(shards) or 1))
        # Hung-worker supervision: the watchdog's per-chunk deadline tracks
        # the autotuner's per-item latency EMA; config.worker_deadline pins
        # the floor (and bounds the cold-start chunk, which the adaptive
        # default leaves unbounded because no estimate exists yet).
        if self.config.worker_deadline is not None:
            watchdog = WatchdogConfig(
                min_deadline=self.config.worker_deadline,
                cold_deadline=self.config.worker_deadline,
            )
        else:
            watchdog = WatchdogConfig()
        pool = PersistentWorkerPool(
            handler,
            n_workers=n_workers,
            autotuner=LatencyAutotuner(target_seconds=0.5, max_chunk=4),
            watchdog=watchdog,
        )

        candidate_offset = 0

        def bookkeep(wave: Tuple[str, ...], position: int, result) -> None:
            """Mark + fire one shard's boundaries of a wave, in stage order."""
            nonlocal candidate_offset
            shard = shards[position]
            for stage_name in wave:
                stage = stats[stage_name]
                key = keys_of[stage_name][position]
                stage_result = None if result is None else result.get(stage_name)
                if stage_result is None:  # resumed under the current key
                    if stage_name == "candidates":
                        record = shard.stages["candidates"]
                        shard_candidates = int(record["n_candidates"])
                        if int(record.get("offset", -1)) != candidate_offset:
                            # Same stable-id-range refresh as the serial path:
                            # an upstream edit shifted this shard's global
                            # candidate range.
                            extra = {
                                k: v
                                for k, v in record.items()
                                if k not in ("key", "complete")
                            }
                            extra["offset"] = candidate_offset
                            store.mark_stage(shard, "candidates", key, extra=extra)
                        candidate_offset += shard_candidates
                    stage.n_resumed += 1
                    boundary(shard, stage_name, resumed=True)
                else:
                    extra = dict(stage_result["extra"])
                    if stage_name == "parse":
                        extra["doc_offset"] = doc_offsets[position]
                    elif stage_name == "candidates":
                        extra["offset"] = candidate_offset
                        candidate_offset += int(extra["n_candidates"])
                    store.mark_stage(shard, stage_name, key, extra=extra)
                    stage.n_computed += 1
                    stage.n_units += int(stage_result["n_units"])
                    stage.seconds += float(stage_result["seconds"])
                    boundary(shard, stage_name, resumed=False)

        with pool:
            for wave in _STREAMING_WAVES:
                payloads: List[Tuple[int, Tuple[str, ...]]] = []
                affinity: List[int] = []
                pending: Set[int] = set()
                for shard in shards:
                    todo = []
                    for stage_name in wave:
                        key = keys_of[stage_name][shard.position]
                        cache.record_stage_key(stage_name, shard.shard_id, key)
                        stats[stage_name].n_shards += 1
                        if not store.stage_complete(shard, stage_name, key):
                            todo.append(stage_name)
                    if todo:
                        # Drop the stale records before dispatch (the parent
                        # owns stages.json): the slabs are about to be
                        # rewritten, and a crash must read as "incomplete".
                        for stage_name in todo:
                            store.invalidate_stage(shard, stage_name)
                        pending.add(shard.position)
                        payloads.append((shard.position, tuple(todo)))
                        affinity.append(shard.position)

                done: Dict[int, Dict] = {}
                flushed = 0

                def flush() -> None:
                    """Mark completed shards strictly in shard order."""
                    nonlocal flushed
                    while flushed < len(shards):
                        position = shards[flushed].position
                        if position in pending and position not in done:
                            break
                        bookkeep(wave, position, done.get(position))
                        flushed += 1

                for index, result, _seconds in pool.imap(payloads, affinity=affinity):
                    done[payloads[index][0]] = result
                    flush()
                flush()
            self._last_pool_stats = {
                "n_workers": n_workers,
                "n_respawns": pool.respawns,
                "watchdog_warnings": pool.watchdog_warnings,
                "watchdog_kills": pool.watchdog_kills,
                "watchdog_events": list(pool.watchdog_events),
            }
        return cand_keys, feature_keys, label_keys

    # -------------------------------------------------------- development mode
    def update_labeling_functions(
        self, labeling_functions: Sequence[LabelingFunction]
    ) -> None:
        """Replace the LF set (development mode keeps candidates and features).

        No explicit invalidation is needed: the label stage's cache keys
        incorporate the LF set's fingerprint, so the next run re-labels while
        the candidate and featurization stages keep hitting their caches.
        """
        self.labeling_functions = list(labeling_functions)

    @property
    def candidates(self) -> List[Candidate]:
        return list(self._candidates)

    @property
    def stage_stats(self) -> Dict[str, StageStats]:
        """Engine accounting of the most recent stage executions."""
        return dict(self._stage_stats)
