"""The end-to-end Fonduer pipeline (paper Figure 2, Section 3.2).

Phase 1 — KBC initialization: the user supplies the relation schema; the
corpus parser turns raw documents into data-model instances.

Phase 2 — candidate generation: matchers define mentions, throttlers prune the
cross-product, candidates are materialized.

Phase 3 — supervision and classification: candidates are featurized
(multimodal feature library), labeling functions are applied, the generative
label model denoises them into marginals, the discriminative model (multimodal
LSTM or a logistic head) is trained on the training split, and candidates
above the marginal threshold are written into the knowledge base.

The pipeline supports the two modes of operation of the programming model
(Section 3.3): ``development`` (labels are re-applied and the discriminative
step re-run on the cached candidates/features when LFs change) and
``production`` (one full run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.candidates.extractor import CandidateExtractor, ExtractionResult
from repro.candidates.matchers import Matcher
from repro.candidates.mentions import Candidate
from repro.candidates.ngrams import MentionNgrams
from repro.candidates.throttlers import Throttler
from repro.data_model.context import Document
from repro.evaluation.metrics import EvaluationResult, evaluate_entity_tuples
from repro.features.featurizer import Featurizer
from repro.learning.logistic import SparseLogisticRegression
from repro.learning.multimodal_lstm import MultimodalLSTM, MultimodalLSTMConfig
from repro.pipeline.config import FonduerConfig
from repro.storage.kb import KnowledgeBase, RelationSchema
from repro.storage.sparse import COOMatrix, LILMatrix
from repro.supervision.gold import GoldTuples
from repro.supervision.label_model import LabelModel, MajorityVoter
from repro.supervision.labeling import LabelingFunction, LFApplier

ExtractedEntry = Tuple[str, Tuple[str, ...]]


@dataclass
class PipelineResult:
    """Everything one end-to-end run produces."""

    kb: KnowledgeBase
    extracted_entries: Set[ExtractedEntry]
    metrics: Optional[EvaluationResult]
    n_candidates: int
    n_train: int
    n_test: int
    marginals: np.ndarray
    extraction: ExtractionResult


class FonduerPipeline:
    """Programmable end-to-end KBC pipeline for one relation."""

    def __init__(
        self,
        schema: RelationSchema,
        matchers: Dict[str, Matcher],
        labeling_functions: Sequence[LabelingFunction],
        throttlers: Optional[Sequence[Throttler]] = None,
        mention_space: Optional[MentionNgrams] = None,
        config: Optional[FonduerConfig] = None,
    ) -> None:
        if set(matchers) != set(schema.entity_types):
            raise ValueError(
                "Matchers must be provided for exactly the schema's entity types; "
                f"expected {schema.entity_types}, got {tuple(matchers)}"
            )
        self.schema = schema
        self.config = config or FonduerConfig()
        # Preserve schema order for the matchers dict.
        ordered_matchers = {t: matchers[t] for t in schema.entity_types}
        self.extractor = CandidateExtractor(
            schema.name,
            ordered_matchers,
            mention_space=mention_space,
            throttlers=throttlers,
            context_scope=self.config.context_scope,
        )
        self.labeling_functions = list(labeling_functions)
        self.featurizer = Featurizer(self.config.feature_config)

        # Cached state for development mode.
        self._candidates: List[Candidate] = []
        self._feature_rows: List[Dict[str, float]] = []
        self._extraction: Optional[ExtractionResult] = None

    # ------------------------------------------------------------- phase 2/3
    def generate_candidates(self, documents: Sequence[Document]) -> ExtractionResult:
        """Phase 2: extract and cache candidates from parsed documents."""
        extraction = self.extractor.extract(documents)
        self._candidates = extraction.candidates
        self._extraction = extraction
        self._feature_rows = []
        return extraction

    def featurize(self) -> List[Dict[str, float]]:
        """Multimodal featurization of the cached candidates (cached itself)."""
        if self._extraction is None:
            raise RuntimeError("generate_candidates must be called before featurize")
        if not self._feature_rows:
            self._feature_rows = [
                {name: 1.0 for name in self.featurizer.features_for_candidate(candidate)}
                for candidate in self._candidates
            ]
        return self._feature_rows

    def apply_labeling_functions(self) -> np.ndarray:
        """Apply the current LF set to the cached candidates (dense label matrix)."""
        if self._extraction is None:
            raise RuntimeError("generate_candidates must be called before labeling")
        if not self.labeling_functions:
            raise ValueError("At least one labeling function is required")
        applier = LFApplier(self.labeling_functions)
        return applier.apply_dense(self._candidates)

    def compute_marginals(self, label_matrix: Optional[np.ndarray] = None) -> np.ndarray:
        """Denoise LF output into per-candidate marginals via the label model."""
        L = label_matrix if label_matrix is not None else self.apply_labeling_functions()
        if L.shape[1] == 1:
            # A single LF carries no agreement structure; use its votes directly.
            return MajorityVoter().predict_proba(L)
        model = LabelModel(self.config.label_model_config)
        return model.fit_predict_proba(L)

    # ------------------------------------------------------------------ runs
    def _split(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.config.seed)
        order = rng.permutation(n)
        n_train = max(1, int(round(self.config.train_split * n)))
        if n_train >= n:
            n_train = n - 1 if n > 1 else n
        return order[:n_train], order[n_train:]

    def _build_model(self):
        if self.config.model == "logistic":
            return SparseLogisticRegression()
        lstm_config = self.config.lstm_config
        if self.config.model == "bilstm_only":
            # Textual-only: same LSTM, but the feature rows passed in are empty.
            return MultimodalLSTM(self.schema.arity, lstm_config)
        return MultimodalLSTM(self.schema.arity, lstm_config)

    def run(
        self,
        documents: Sequence[Document],
        gold: Optional[Iterable[ExtractedEntry]] = None,
        reuse_candidates: bool = False,
    ) -> PipelineResult:
        """Execute the full pipeline on parsed documents.

        When ``gold`` (an iterable of (document, entity tuple) pairs) is given,
        end-to-end precision/recall/F1 are computed against it over the full
        corpus, as in Table 2.  ``reuse_candidates`` skips Phase 2 and reuses
        the cached candidates/features (development-mode iteration).
        """
        if not reuse_candidates or self._extraction is None:
            self.generate_candidates(documents)
        candidates = self._candidates
        if not candidates:
            kb = KnowledgeBase([self.schema])
            metrics = (
                evaluate_entity_tuples(set(), set(gold)) if gold is not None else None
            )
            return PipelineResult(
                kb=kb,
                extracted_entries=set(),
                metrics=metrics,
                n_candidates=0,
                n_train=0,
                n_test=0,
                marginals=np.zeros(0),
                extraction=self._extraction,
            )

        feature_rows = self.featurize()
        marginal_targets = self.compute_marginals()

        train_index, test_index = self._split(len(candidates))
        # As in data programming, candidates on which every labeling function
        # abstained (marginal ≈ prior) carry no supervision signal; training on
        # them only drags predictions toward the prior, so they are filtered
        # out of the training split when enough labeled candidates remain.
        informative = [i for i in train_index if abs(marginal_targets[i] - 0.5) > 0.05]
        if len(informative) >= max(10, len(train_index) // 4):
            train_index = np.asarray(informative)
        train_candidates = [candidates[i] for i in train_index]
        train_rows = [feature_rows[i] for i in train_index]
        train_targets = marginal_targets[train_index]

        use_empty_features = self.config.model == "bilstm_only"
        model = self._build_model()
        if self.config.model == "logistic":
            model.fit(train_rows, train_targets)
            all_marginals = model.predict_proba(feature_rows)
        else:
            lstm_rows = [{} for _ in train_rows] if use_empty_features else train_rows
            model.fit(train_candidates, lstm_rows, train_targets)
            predict_rows = [{} for _ in feature_rows] if use_empty_features else feature_rows
            all_marginals = model.predict_proba(candidates, predict_rows)

        # Classification: candidates above the threshold become relation mentions.
        kb = KnowledgeBase([self.schema])
        extracted: Set[ExtractedEntry] = set()
        for candidate, marginal in zip(candidates, all_marginals):
            if marginal > self.config.threshold:
                document = candidate.document
                document_name = document.name if document is not None else ""
                extracted.add((document_name, candidate.entity_tuple))
                kb.add(self.schema.name, candidate.entity_tuple)

        metrics = evaluate_entity_tuples(extracted, set(gold)) if gold is not None else None
        return PipelineResult(
            kb=kb,
            extracted_entries=extracted,
            metrics=metrics,
            n_candidates=len(candidates),
            n_train=len(train_index),
            n_test=len(test_index),
            marginals=all_marginals,
            extraction=self._extraction,
        )

    # -------------------------------------------------------- development mode
    def update_labeling_functions(
        self, labeling_functions: Sequence[LabelingFunction]
    ) -> None:
        """Replace the LF set (development mode keeps candidates and features)."""
        self.labeling_functions = list(labeling_functions)

    @property
    def candidates(self) -> List[Candidate]:
        return list(self._candidates)
