"""Sparse logistic regression over named features.

Used as (a) the "human-tuned feature library" baseline of Table 4 — a linear
model over the multimodal feature library, exactly the feature-engineering
workflow Fonduer's learned representation replaces — and (b) as a lightweight
discriminative head elsewhere in the library.  Supports noise-aware training on
marginal (soft) labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.storage.sparse import CSRMatrix

Rows = Union[Sequence[Dict[str, float]], CSRMatrix]


@dataclass
class LogisticConfig:
    """Training hyperparameters."""

    n_epochs: int = 30
    learning_rate: float = 0.1
    l2: float = 1e-4
    seed: int = 0


class SparseLogisticRegression:
    """Logistic regression over sparse feature rows.

    Rows are either feature dicts (feature name → value) or a frozen
    :class:`~repro.storage.sparse.CSRMatrix`; feature names are interned into
    a weight vector lazily on ``fit``.  Training visits the same entries in
    the same order either way; CSR prediction additionally vectorizes the
    decision function into one sparse matrix-vector product.
    """

    def __init__(self, config: Optional[LogisticConfig] = None) -> None:
        self.config = config or LogisticConfig()
        self._feature_ids: Dict[str, int] = {}
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    # --------------------------------------------------------------- interning
    def _intern(self, feature: str, grow: bool) -> Optional[int]:
        if feature in self._feature_ids:
            return self._feature_ids[feature]
        if not grow:
            return None
        index = len(self._feature_ids)
        self._feature_ids[feature] = index
        return index

    @property
    def n_features(self) -> int:
        return len(self._feature_ids)

    def _column_map(self, csr: CSRMatrix, grow: bool) -> np.ndarray:
        """Map the CSR's column ids to this model's feature ids (-1 = unknown)."""
        mapping = np.full(csr.n_columns, -1, dtype=np.int64)
        for column_id, name in enumerate(csr.column_names):
            index = self._intern(name, grow=grow)
            if index is not None:
                mapping[column_id] = index
        return mapping

    def _indexed_rows(self, rows: Rows, grow: bool) -> List[List[tuple]]:
        """Rows as (feature id, value) pair lists, interning names as needed."""
        if isinstance(rows, CSRMatrix):
            mapping = self._column_map(rows, grow=grow)
            indexed_rows = []
            for position in range(rows.n_rows):
                columns, values = rows.row_entries(position)
                indexed_rows.append(
                    [
                        (int(mapping[c]), float(v))
                        for c, v in zip(columns, values)
                        if mapping[c] >= 0
                    ]
                )
            return indexed_rows
        indexed_rows = []
        for row in rows:
            indexed = []
            for feature, value in row.items():
                index = self._intern(feature, grow=grow)
                if index is not None:
                    indexed.append((index, value))
            indexed_rows.append(indexed)
        return indexed_rows

    # --------------------------------------------------------------------- fit
    def fit(
        self,
        rows: Rows,
        marginals: Sequence[float],
    ) -> "SparseLogisticRegression":
        """Train on feature rows against marginal targets in [0, 1]."""
        n_rows = rows.n_rows if isinstance(rows, CSRMatrix) else len(rows)
        if n_rows != len(marginals):
            raise ValueError("rows and marginals must have the same length")
        # Intern all features first so the weight vector has a fixed size.
        indexed_rows = self._indexed_rows(rows, grow=True)

        rng = np.random.default_rng(self.config.seed)
        self.weights = np.zeros(self.n_features)
        self.bias = 0.0
        targets = np.clip(np.asarray(marginals, dtype=float), 0.0, 1.0)
        order = np.arange(len(indexed_rows))

        for _ in range(self.config.n_epochs):
            rng.shuffle(order)
            for i in order:
                indexed = indexed_rows[i]
                z = self.bias + sum(self.weights[j] * v for j, v in indexed)
                p = 1.0 / (1.0 + np.exp(-z)) if z >= 0 else np.exp(z) / (1.0 + np.exp(z))
                gradient = p - targets[i]
                lr = self.config.learning_rate
                for j, v in indexed:
                    self.weights[j] -= lr * (gradient * v + self.config.l2 * self.weights[j])
                self.bias -= lr * gradient
        return self

    # ----------------------------------------------------------------- predict
    def decision_function(self, rows: Rows) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("Model must be fit before predicting")
        if isinstance(rows, CSRMatrix):
            # Vectorized: project the model weights onto the CSR's column
            # space (unknown features score 0) and take one sparse mat-vec.
            mapping = self._column_map(rows, grow=False)
            known = mapping >= 0
            projected = np.zeros(rows.n_columns)
            projected[known] = self.weights[mapping[known]]
            return rows.dot(projected) + self.bias
        scores = np.zeros(len(rows))
        for i, row in enumerate(rows):
            z = self.bias
            for feature, value in row.items():
                index = self._feature_ids.get(feature)
                if index is not None:
                    z += self.weights[index] * value
            scores[i] = z
        return scores

    def predict_proba(self, rows: Rows) -> np.ndarray:
        """Positive-class marginal probability per row."""
        scores = self.decision_function(rows)
        out = np.empty_like(scores)
        positive = scores >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-scores[positive]))
        exp_score = np.exp(scores[~positive])
        out[~positive] = exp_score / (1.0 + exp_score)
        return out

    def predict(self, rows: Rows, threshold: float = 0.5) -> np.ndarray:
        """Hard labels in {-1, +1}."""
        return np.where(self.predict_proba(rows) > threshold, 1, -1)
