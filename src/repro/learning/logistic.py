"""Sparse logistic regression over named features.

Used as (a) the "human-tuned feature library" baseline of Table 4 — a linear
model over the multimodal feature library, exactly the feature-engineering
workflow Fonduer's learned representation replaces — and (b) as a lightweight
discriminative head elsewhere in the library.  Supports noise-aware training on
marginal (soft) labels.

Training runs through the unified runtime (:mod:`repro.learning.trainer`):
``fit`` wraps a :class:`~repro.learning.trainer.Trainer` over an in-memory
batch source, and the same ``partial_fit`` path consumes slab-backed batches
in streaming mode — the model is source-agnostic, and its state
(interning + weights + bias) round-trips through ``state_dict`` for per-epoch
checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.learning.trainer import Batch, InMemoryBatchSource, Trainer, TrainerConfig
from repro.storage.sparse import CSRMatrix

Rows = Union[Sequence[Dict[str, float]], CSRMatrix]


@dataclass
class LogisticConfig:
    """Training hyperparameters (the epoch schedule lives here)."""

    n_epochs: int = 30
    learning_rate: float = 0.1
    l2: float = 1e-4
    seed: int = 0


class SparseLogisticRegression:
    """Logistic regression over sparse feature rows.

    Rows are either feature dicts (feature name → value) or a frozen
    :class:`~repro.storage.sparse.CSRMatrix`; feature names are interned into
    the weight vector as training first sees them, so the learned state is a
    function of the batch schedule alone — not of which
    :class:`~repro.learning.trainer.BatchSource` delivered the batches.
    """

    def __init__(self, config: Optional[LogisticConfig] = None) -> None:
        self.config = config or LogisticConfig()
        self._feature_ids: Dict[str, int] = {}
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    # --------------------------------------------------------------- interning
    def _intern(self, feature: str, grow: bool) -> Optional[int]:
        if feature in self._feature_ids:
            return self._feature_ids[feature]
        if not grow:
            return None
        index = len(self._feature_ids)
        self._feature_ids[feature] = index
        return index

    @property
    def n_features(self) -> int:
        return len(self._feature_ids)

    def _column_map(self, csr: CSRMatrix, grow: bool) -> np.ndarray:
        """Map the CSR's column ids to this model's feature ids (-1 = unknown)."""
        mapping = np.full(csr.n_columns, -1, dtype=np.int64)
        for column_id, name in enumerate(csr.column_names):
            index = self._intern(name, grow=grow)
            if index is not None:
                mapping[column_id] = index
        return mapping

    # -------------------------------------------------- TrainableModel protocol
    def init_state(self, source) -> None:
        """Fresh training state (the Trainer calls this on non-resumed fits)."""
        self._feature_ids = {}
        self.weights = np.zeros(0)
        self.bias = 0.0

    def partial_fit(self, batch: Batch) -> float:
        """One mini-batch of per-row SGD updates on the noise-aware loss.

        Rows within the batch are visited in batch order; the math per row is
        plain logistic SGD with L2 on the touched weights — identical update
        sequence whether batches came from memory or from shard slabs.
        """
        rows = batch.rows
        if rows is None:
            raise ValueError("SparseLogisticRegression batches must carry CSR rows")
        mapping = self._column_map(rows, grow=True)
        if len(self.weights) < self.n_features:
            self.weights = np.concatenate(
                [self.weights, np.zeros(self.n_features - len(self.weights))]
            )
        targets = np.clip(np.asarray(batch.targets, dtype=float), 0.0, 1.0)
        lr = self.config.learning_rate
        l2 = self.config.l2
        weights = self.weights
        loss = 0.0
        for position in range(rows.n_rows):
            columns, values = rows.row_entries(position)
            indexed = [(int(mapping[c]), float(v)) for c, v in zip(columns, values)]
            z = self.bias + sum(weights[j] * v for j, v in indexed)
            p = 1.0 / (1.0 + np.exp(-z)) if z >= 0 else np.exp(z) / (1.0 + np.exp(z))
            target = targets[position]
            gradient = p - target
            for j, v in indexed:
                weights[j] -= lr * (gradient * v + l2 * weights[j])
            self.bias -= lr * gradient
            # Noise-aware cross-entropy against the marginal target (reported
            # per epoch by the Trainer; clipped for the log).
            p_safe = min(max(p, 1e-12), 1.0 - 1e-12)
            loss -= target * np.log(p_safe) + (1.0 - target) * np.log(1.0 - p_safe)
        return loss

    def begin_epoch(self, epoch: int) -> None:
        pass

    def end_epoch(self, epoch: int) -> bool:
        return False

    def finalize(self) -> None:
        pass

    def predict_proba_batch(self, batch: Batch) -> np.ndarray:
        if batch.rows is None:
            raise ValueError("SparseLogisticRegression batches must carry CSR rows")
        return self.predict_proba(batch.rows)

    def state_dict(self) -> Dict[str, object]:
        return {
            "feature_names": list(self._feature_ids),
            "weights": None if self.weights is None else self.weights.copy(),
            "bias": self.bias,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        names: List[str] = list(state["feature_names"])  # type: ignore[arg-type]
        self._feature_ids = {name: index for index, name in enumerate(names)}
        weights = state["weights"]
        self.weights = None if weights is None else np.asarray(weights, dtype=float).copy()
        self.bias = float(state["bias"])  # type: ignore[arg-type]

    # --------------------------------------------------------------------- fit
    def fit(
        self,
        rows: Rows,
        marginals: Sequence[float],
    ) -> "SparseLogisticRegression":
        """Train on feature rows against marginal targets in [0, 1].

        Convenience wrapper over the unified runtime: freezes dict rows into
        CSR, then drives this model through a
        :class:`~repro.learning.trainer.Trainer` with this config's epoch
        schedule.  Dict rows and an equivalent CSR train bitwise-identically.
        """
        csr = rows if isinstance(rows, CSRMatrix) else CSRMatrix.from_rows(list(rows))
        if csr.n_rows != len(marginals):
            raise ValueError("rows and marginals must have the same length")
        source = InMemoryBatchSource(csr, np.asarray(marginals, dtype=float))
        trainer = Trainer(
            TrainerConfig(n_epochs=self.config.n_epochs, seed=self.config.seed)
        )
        trainer.fit(self, source)
        return self

    # ----------------------------------------------------------------- predict
    def decision_function(self, rows: Rows) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("Model must be fit before predicting")
        if isinstance(rows, CSRMatrix):
            # Vectorized: project the model weights onto the CSR's column
            # space (unknown features score 0) and take one sparse mat-vec.
            mapping = self._column_map(rows, grow=False)
            known = mapping >= 0
            projected = np.zeros(rows.n_columns)
            projected[known] = self.weights[mapping[known]]
            return rows.dot(projected) + self.bias
        scores = np.zeros(len(rows))
        for i, row in enumerate(rows):
            z = self.bias
            for feature, value in row.items():
                index = self._feature_ids.get(feature)
                if index is not None:
                    z += self.weights[index] * value
            scores[i] = z
        return scores

    def predict_proba(self, rows: Rows) -> np.ndarray:
        """Positive-class marginal probability per row."""
        scores = self.decision_function(rows)
        out = np.empty_like(scores)
        positive = scores >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-scores[positive]))
        exp_score = np.exp(scores[~positive])
        out[~positive] = exp_score / (1.0 + exp_score)
        return out

    def predict(self, rows: Rows, threshold: float = 0.5) -> np.ndarray:
        """Hard labels in {-1, +1}."""
        return np.where(self.predict_proba(rows) > threshold, 1, -1)
