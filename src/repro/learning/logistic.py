"""Sparse logistic regression over named features.

Used as (a) the "human-tuned feature library" baseline of Table 4 — a linear
model over the multimodal feature library, exactly the feature-engineering
workflow Fonduer's learned representation replaces — and (b) as a lightweight
discriminative head elsewhere in the library.  Supports noise-aware training on
marginal (soft) labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class LogisticConfig:
    """Training hyperparameters."""

    n_epochs: int = 30
    learning_rate: float = 0.1
    l2: float = 1e-4
    seed: int = 0


class SparseLogisticRegression:
    """Logistic regression over sparse feature dictionaries.

    Rows are feature dicts (feature name → value); feature names are interned
    into a weight vector lazily on ``fit``.
    """

    def __init__(self, config: Optional[LogisticConfig] = None) -> None:
        self.config = config or LogisticConfig()
        self._feature_ids: Dict[str, int] = {}
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    # --------------------------------------------------------------- interning
    def _intern(self, feature: str, grow: bool) -> Optional[int]:
        if feature in self._feature_ids:
            return self._feature_ids[feature]
        if not grow:
            return None
        index = len(self._feature_ids)
        self._feature_ids[feature] = index
        return index

    @property
    def n_features(self) -> int:
        return len(self._feature_ids)

    # --------------------------------------------------------------------- fit
    def fit(
        self,
        rows: Sequence[Dict[str, float]],
        marginals: Sequence[float],
    ) -> "SparseLogisticRegression":
        """Train on feature dicts against marginal targets in [0, 1]."""
        if len(rows) != len(marginals):
            raise ValueError("rows and marginals must have the same length")
        # Intern all features first so the weight vector has a fixed size.
        indexed_rows: List[List[tuple]] = []
        for row in rows:
            indexed = []
            for feature, value in row.items():
                index = self._intern(feature, grow=True)
                indexed.append((index, value))
            indexed_rows.append(indexed)

        rng = np.random.default_rng(self.config.seed)
        self.weights = np.zeros(self.n_features)
        self.bias = 0.0
        targets = np.clip(np.asarray(marginals, dtype=float), 0.0, 1.0)
        order = np.arange(len(indexed_rows))

        for _ in range(self.config.n_epochs):
            rng.shuffle(order)
            for i in order:
                indexed = indexed_rows[i]
                z = self.bias + sum(self.weights[j] * v for j, v in indexed)
                p = 1.0 / (1.0 + np.exp(-z)) if z >= 0 else np.exp(z) / (1.0 + np.exp(z))
                gradient = p - targets[i]
                lr = self.config.learning_rate
                for j, v in indexed:
                    self.weights[j] -= lr * (gradient * v + self.config.l2 * self.weights[j])
                self.bias -= lr * gradient
        return self

    # ----------------------------------------------------------------- predict
    def decision_function(self, rows: Sequence[Dict[str, float]]) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("Model must be fit before predicting")
        scores = np.zeros(len(rows))
        for i, row in enumerate(rows):
            z = self.bias
            for feature, value in row.items():
                index = self._feature_ids.get(feature)
                if index is not None:
                    z += self.weights[index] * value
            scores[i] = z
        return scores

    def predict_proba(self, rows: Sequence[Dict[str, float]]) -> np.ndarray:
        """Positive-class marginal probability per row."""
        scores = self.decision_function(rows)
        out = np.empty_like(scores)
        positive = scores >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-scores[positive]))
        exp_score = np.exp(scores[~positive])
        out[~positive] = exp_score / (1.0 + exp_score)
        return out

    def predict(self, rows: Sequence[Dict[str, float]], threshold: float = 0.5) -> np.ndarray:
        """Hard labels in {-1, +1}."""
        return np.where(self.predict_proba(rows) > threshold, 1, -1)
