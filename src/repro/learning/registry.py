"""String-keyed model registry: ``FonduerConfig.model`` → discriminative model.

Every discriminative model the pipeline can train is registered here under a
stable name, with a factory that builds it from ``(arity, config)`` — where
``config`` is the pipeline's :class:`~repro.pipeline.config.FonduerConfig`
(duck-typed: the registry never imports the pipeline package, so the import
graph stays acyclic).  The spec also records whether the model can train in
streaming mode (slab-backed batches need sparse feature rows; the sequence
models walk live candidate objects, which never spill to slabs).

Registering a new model::

    from repro.learning.registry import register_model

    @register_model("my_head", streaming=True, description="...")
    def _build_my_head(arity, config):
        return MyHead(config.my_head_config)

and select it with ``FonduerConfig(model="my_head")`` — the pipeline, the
streaming runtime, the CLI and the engine's training fingerprints all resolve
through this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.learning.doc_rnn import DocumentRNN
from repro.learning.logistic import SparseLogisticRegression
from repro.learning.multimodal_lstm import MultimodalLSTM

ModelFactory = Callable[[int, Any], Any]


@dataclass(frozen=True)
class ModelSpec:
    """One registered discriminative model."""

    name: str
    factory: ModelFactory
    #: Whether the model can be trained from slab-backed batches (sparse
    #: feature rows + marginal targets) in streaming mode.
    streaming: bool
    #: Whether the model consumes candidate objects (vs sparse feature rows).
    needs_candidates: bool
    description: str = ""


_REGISTRY: Dict[str, ModelSpec] = {}


def register_model(
    name: str,
    *,
    streaming: bool = False,
    needs_candidates: bool = True,
    description: str = "",
) -> Callable[[ModelFactory], ModelFactory]:
    """Register a model factory under ``name`` (decorator)."""

    def decorate(factory: ModelFactory) -> ModelFactory:
        if name in _REGISTRY:
            raise ValueError(f"Model {name!r} is already registered")
        _REGISTRY[name] = ModelSpec(
            name=name,
            factory=factory,
            streaming=streaming,
            needs_candidates=needs_candidates,
            description=description,
        )
        return factory

    return decorate


def model_spec(name: str) -> ModelSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"Unknown model {name!r}; registered models: {sorted(_REGISTRY)}"
        ) from None


def create_model(name: str, arity: int, config: Any) -> Any:
    """Instantiate the registered model ``name`` for candidates of ``arity``."""
    return model_spec(name).factory(arity, config)


def available_models() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# ------------------------------------------------------------- registrations
@register_model(
    "logistic",
    streaming=True,
    needs_candidates=False,
    description="Sparse logistic head over the multimodal feature library "
    "(the human-tuned baseline of Table 4; the only model trainable "
    "out-of-core from shard slabs)",
)
def _build_logistic(arity: int, config: Any) -> SparseLogisticRegression:
    return SparseLogisticRegression(config.logistic_config)


@register_model(
    "lstm",
    description="Fonduer's multimodal LSTM: per-mention Bi-LSTM + attention "
    "joint with the extended feature library (paper Section 4.2)",
)
def _build_lstm(arity: int, config: Any) -> MultimodalLSTM:
    return MultimodalLSTM(arity, config.lstm_config)


@register_model(
    "bilstm_only",
    description="Textual-only Bi-LSTM baseline of Table 4 (the pipeline "
    "feeds it empty feature rows)",
)
def _build_bilstm_only(arity: int, config: Any) -> MultimodalLSTM:
    return MultimodalLSTM(arity, config.lstm_config)


@register_model(
    "doc_rnn",
    description="Document-level RNN baseline of Table 6 (whole-document "
    "sequences; orders of magnitude slower per epoch)",
)
def _build_doc_rnn(arity: int, config: Any) -> DocumentRNN:
    return DocumentRNN(arity, config.doc_rnn_config)
