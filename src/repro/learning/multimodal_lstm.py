"""Fonduer's multimodal LSTM (paper Section 4.2, Figure 5).

For each candidate the model:

1. takes, for every mention, the sentence containing it, inserts special
   candidate markers (``[[k`` ... ``k]]``) around the mention, and embeds the
   words with hashed word embeddings;
2. runs a shared bidirectional LSTM over each mention's marked sentence and
   pools the hidden states with word-level attention, producing a textual
   representation ``t_i`` per mention;
3. concatenates the mention representations with the extended multimodal
   feature library (structural, tabular, visual indicators) of the candidate;
4. feeds the concatenation into a final softmax (here: a single positive-class
   logit, equivalent for binary classification) — all parameters, including the
   feature weights, are trained jointly (noise-aware loss on the marginals
   produced by the label model).

Training runs through the unified runtime: ``fit`` drives this model through
a :class:`~repro.learning.trainer.Trainer` over a candidate batch source, and
``partial_fit`` performs the per-sample Adam updates for one mini-batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.candidates.mentions import Candidate
from repro.learning.nn.attention import Attention
from repro.learning.nn.layers import Dense, Parameter
from repro.learning.nn.loss import noise_aware_cross_entropy
from repro.learning.nn.lstm import BiLSTM
from repro.learning.nn.optimizer import Adam
from repro.learning.trainer import Batch, CandidateBatchSource, Trainer, TrainerConfig
from repro.nlp.embeddings import WordEmbeddings


@dataclass
class MultimodalLSTMConfig:
    """Model and training hyperparameters (sized for CPU training)."""

    embedding_dim: int = 24
    hidden_dim: int = 16
    attention_dim: int = 16
    max_sequence_length: int = 24
    n_epochs: int = 12
    learning_rate: float = 5e-3
    feature_learning_rate: float = 0.1
    feature_l2: float = 1e-4
    use_attention: bool = True
    seed: int = 0


@dataclass
class TrainingStats:
    """Per-fit statistics (Table 6 reports seconds per epoch)."""

    n_epochs: int = 0
    seconds_per_epoch: float = 0.0
    losses: List[float] = field(default_factory=list)


class MultimodalLSTM:
    """Bi-LSTM with attention + extended feature library + joint softmax head."""

    def __init__(self, arity: int, config: Optional[MultimodalLSTMConfig] = None) -> None:
        if arity < 1:
            raise ValueError("Candidate arity must be at least 1")
        self.arity = arity
        self.config = config or MultimodalLSTMConfig()
        rng = np.random.default_rng(self.config.seed)
        self.embeddings = WordEmbeddings(dim=self.config.embedding_dim)
        self.bilstm = BiLSTM(self.config.embedding_dim, self.config.hidden_dim, rng)
        self.attention = Attention(2 * self.config.hidden_dim, self.config.attention_dim, rng)
        text_dim = arity * self._mention_dim()
        self.output = Dense(text_dim, 1, rng, name="output")
        # Sparse extended-feature head, trained jointly (plain SGD updates).
        self._feature_ids: Dict[str, int] = {}
        self.feature_weights = np.zeros(0)
        self.stats = TrainingStats()
        self._optimizer: Optional[Adam] = None

    # ------------------------------------------------------------ embeddings
    def _mention_dim(self) -> int:
        if self.config.use_attention:
            return self.config.attention_dim
        return 2 * self.config.hidden_dim

    def _mention_tokens(self, candidate: Candidate, index: int) -> List[str]:
        """Sentence tokens with candidate markers around mention ``index``."""
        mention = candidate.mentions[index]
        sentence = mention.span.sentence
        words = list(sentence.words)
        start, end = mention.span.word_start, mention.span.word_end
        marked = words[:start] + [f"[[{index + 1}"] + words[start:end] + [f"{index + 1}]]"] + words[end:]
        max_length = self.config.max_sequence_length
        if len(marked) > max_length:
            # Center the window on the mention.
            center = start + (end - start) // 2
            left = max(0, center - max_length // 2)
            marked = marked[left : left + max_length]
        return marked

    # ------------------------------------------------------------ internals
    def _intern_feature(self, name: str) -> int:
        index = self._feature_ids.get(name)
        if index is None:
            index = len(self._feature_ids)
            self._feature_ids[name] = index
        return index

    def _grow_feature_weights(self) -> None:
        if len(self.feature_weights) < len(self._feature_ids):
            self.feature_weights = np.concatenate(
                [
                    self.feature_weights,
                    np.zeros(len(self._feature_ids) - len(self.feature_weights)),
                ]
            )

    def _feature_score(self, row: Dict[str, float]) -> float:
        score = 0.0
        for name, value in row.items():
            index = self._feature_ids.get(name)
            if index is not None:
                score += self.feature_weights[index] * value
        return score

    def _forward_candidate(
        self, candidate: Candidate
    ) -> Tuple[float, Dict]:
        """Textual forward pass; returns the textual logit contribution and cache."""
        mention_reps: List[np.ndarray] = []
        caches: List[Dict] = []
        for index in range(self.arity):
            tokens = self._mention_tokens(candidate, index)
            embedded = self.embeddings.embed_sequence(tokens)
            hidden, lstm_cache = self.bilstm.forward(embedded)
            if self.config.use_attention:
                rep, attention_cache = self.attention.forward(hidden)
            else:
                rep = hidden.max(axis=0)
                attention_cache = {"argmax": hidden.argmax(axis=0), "T": hidden.shape[0]}
            mention_reps.append(rep)
            caches.append({"lstm": lstm_cache, "attention": attention_cache, "hidden_shape": hidden.shape})
        text_vector = np.concatenate(mention_reps)
        logit, dense_cache = self.output.forward(text_vector)
        return float(logit[0]), {
            "mention_caches": caches,
            "dense": dense_cache,
            "text_vector": text_vector,
        }

    def _backward_candidate(self, d_logit: float, cache: Dict) -> None:
        d_text = self.output.backward(np.array([d_logit]), cache["dense"])
        mention_dim = self._mention_dim()
        for index, mention_cache in enumerate(cache["mention_caches"]):
            d_rep = d_text[index * mention_dim : (index + 1) * mention_dim]
            if self.config.use_attention:
                d_hidden = self.attention.backward(d_rep, mention_cache["attention"])
            else:
                T, H2 = mention_cache["hidden_shape"]
                d_hidden = np.zeros((T, H2))
                argmax = mention_cache["attention"]["argmax"]
                for j in range(H2):
                    d_hidden[argmax[j], j] = d_rep[j]
            self.bilstm.backward(d_hidden, mention_cache["lstm"])

    def _all_parameters(self) -> List[Parameter]:
        parameters = self.bilstm.parameters() + self.output.parameters()
        if self.config.use_attention:
            parameters += self.attention.parameters()
        return parameters

    # -------------------------------------------------- TrainableModel protocol
    def init_state(self, source) -> None:
        self._feature_ids = {}
        self.feature_weights = np.zeros(0)
        self.stats = TrainingStats()
        self._epoch_seconds_total = 0.0
        self._optimizer = Adam(
            self._all_parameters(), learning_rate=self.config.learning_rate
        )

    def partial_fit(self, batch: Batch) -> float:
        """Per-sample joint updates (Adam on the network, SGD on the features)."""
        if batch.candidates is None:
            raise ValueError("MultimodalLSTM batches must carry candidate objects")
        if self._optimizer is None:
            # Direct partial_fit use outside a Trainer (tests, notebooks).
            self.init_state(None)
        optimizer = self._optimizer
        targets = np.clip(np.asarray(batch.targets, dtype=float), 0.0, 1.0)
        feature_dicts = batch.feature_dicts or [{} for _ in batch.candidates]
        self._epoch_rows = getattr(self, "_epoch_rows", 0) + len(batch.candidates)
        batch_loss = 0.0
        for candidate, features, target in zip(batch.candidates, feature_dicts, targets):
            for name in features:
                self._intern_feature(name)
            self._grow_feature_weights()
            optimizer.zero_grad()
            text_logit, cache = self._forward_candidate(candidate)
            logit = text_logit + self._feature_score(features)
            loss, d_logit = noise_aware_cross_entropy(logit, float(target))
            batch_loss += loss
            self._backward_candidate(d_logit, cache)
            optimizer.step()
            # Sparse SGD update of the extended-feature weights.
            lr = self.config.feature_learning_rate
            for name, value in features.items():
                index = self._feature_ids[name]
                self.feature_weights[index] -= lr * (
                    d_logit * value + self.config.feature_l2 * self.feature_weights[index]
                )
        self._epoch_loss = getattr(self, "_epoch_loss", 0.0) + batch_loss
        return batch_loss

    def begin_epoch(self, epoch: int) -> None:
        self._epoch_loss = 0.0
        self._epoch_rows = 0
        self._epoch_started = time.perf_counter()

    def end_epoch(self, epoch: int) -> bool:
        # The model owns its training statistics (Table 6 reports seconds per
        # epoch), so they are populated whether training runs through fit()
        # or directly through a pipeline-owned Trainer.
        self.stats.losses.append(self._epoch_loss / max(1, self._epoch_rows))
        self.stats.n_epochs = epoch + 1
        # getattr defaults: a checkpoint resume restores state via
        # load_state_dict without init_state, so the timing accumulators may
        # not exist yet on the first resumed epoch.
        self._epoch_seconds_total = getattr(
            self, "_epoch_seconds_total", 0.0
        ) + time.perf_counter() - getattr(self, "_epoch_started", time.perf_counter())
        self.stats.seconds_per_epoch = self._epoch_seconds_total / max(
            1, len(self.stats.losses)
        )
        return False

    def finalize(self) -> None:
        pass

    def predict_proba_batch(self, batch: Batch) -> np.ndarray:
        if batch.candidates is None:
            raise ValueError("MultimodalLSTM batches must carry candidate objects")
        feature_dicts = batch.feature_dicts or [{} for _ in batch.candidates]
        return self.predict_proba(batch.candidates, feature_dicts)

    def state_dict(self) -> Dict[str, object]:
        if self._optimizer is None:
            self._optimizer = Adam(
                self._all_parameters(), learning_rate=self.config.learning_rate
            )
        return {
            "parameters": [p.value.copy() for p in self._all_parameters()],
            "optimizer": self._optimizer.state_dict(),
            "feature_names": list(self._feature_ids),
            "feature_weights": self.feature_weights.copy(),
            "stats": (self.stats.n_epochs, list(self.stats.losses)),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        for parameter, value in zip(self._all_parameters(), state["parameters"]):
            parameter.value = np.asarray(value).copy()
        self._optimizer = Adam(
            self._all_parameters(), learning_rate=self.config.learning_rate
        )
        self._optimizer.load_state_dict(state["optimizer"])
        names: List[str] = list(state["feature_names"])  # type: ignore[arg-type]
        self._feature_ids = {name: index for index, name in enumerate(names)}
        self.feature_weights = np.asarray(state["feature_weights"], dtype=float).copy()
        n_epochs, losses = state["stats"]  # type: ignore[misc]
        self.stats = TrainingStats(n_epochs=int(n_epochs), losses=list(losses))

    # ------------------------------------------------------------------ train
    def fit(
        self,
        candidates: Sequence[Candidate],
        feature_rows: Sequence[Dict[str, float]],
        marginals: Sequence[float],
    ) -> "MultimodalLSTM":
        """Train jointly on candidates, their extended features and marginal targets.

        ``feature_rows[i]`` is the extended feature dict of ``candidates[i]``
        (may be empty — e.g. for the textual-only Bi-LSTM baseline of Table 4).
        """
        if not (len(candidates) == len(feature_rows) == len(marginals)):
            raise ValueError("candidates, feature_rows and marginals must align")
        if not candidates:
            raise ValueError("Cannot train on an empty candidate set")
        source = CandidateBatchSource(candidates, feature_rows, marginals)
        trainer = Trainer(
            TrainerConfig(n_epochs=self.config.n_epochs, seed=self.config.seed)
        )
        trainer.fit(self, source)
        return self

    # ---------------------------------------------------------------- predict
    def predict_proba(
        self,
        candidates: Sequence[Candidate],
        feature_rows: Sequence[Dict[str, float]],
    ) -> np.ndarray:
        """Marginal probability of being a true relation mention, per candidate."""
        if len(candidates) != len(feature_rows):
            raise ValueError("candidates and feature_rows must align")
        probabilities = np.zeros(len(candidates))
        for i, (candidate, features) in enumerate(zip(candidates, feature_rows)):
            text_logit, _ = self._forward_candidate(candidate)
            logit = text_logit + self._feature_score(features)
            if logit >= 0:
                probabilities[i] = 1.0 / (1.0 + np.exp(-logit))
            else:
                probabilities[i] = np.exp(logit) / (1.0 + np.exp(logit))
        return probabilities

    def predict(
        self,
        candidates: Sequence[Candidate],
        feature_rows: Sequence[Dict[str, float]],
        threshold: float = 0.5,
    ) -> np.ndarray:
        """Hard labels in {-1, +1} at the given marginal threshold."""
        return np.where(self.predict_proba(candidates, feature_rows) > threshold, 1, -1)
