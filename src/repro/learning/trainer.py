"""The unified training runtime: mini-batch Trainer over pluggable batch sources.

Phase 2 of the paper is an end-to-end loop — weak supervision produces
noise-aware marginals that train a multimodal discriminative model — and the
most compute-heavy part of that loop is training.  Before this module every
model owned its own full-batch ``fit`` over fully-resident matrices, which
defeated the out-of-core story of :mod:`repro.storage.shards`.  This module
factors the loop out once:

* :class:`Trainer` drives any model implementing the small
  :class:`TrainableModel` protocol (``init_state`` / ``partial_fit(batch)`` /
  ``end_epoch`` / ``finalize`` / ``predict_proba_batch`` plus
  ``state_dict``/``load_state_dict`` for checkpointing) through a
  deterministic epoch × mini-batch schedule;
* a :class:`BatchSource` abstracts where the batches come from —
  :class:`InMemoryBatchSource` slices a resident
  :class:`~repro.storage.sparse.CSRMatrix`, :class:`SlabBatchSource` streams
  CSR feature slabs and marginal slabs out of a
  :class:`~repro.storage.shards.ShardStore` with at most ``max_resident``
  shards' slabs in memory — and both yield *byte-identical* batches for the
  same corpus, so streaming training reproduces in-memory training exactly;
* :class:`TrainerCheckpoint` persists the model state atomically after every
  epoch, so a killed training run resumes at the last completed epoch
  boundary and converges to the bitwise-identical final model.

Determinism contract
--------------------
The epoch ``e`` visit order is ``default_rng([seed, e]).permutation(n)`` —
derived from the epoch index, not from a mutable RNG carried across epochs —
so resuming at any epoch boundary replays exactly the schedule an
uninterrupted run would have used.  Batches are materialized with
*batch-local* column interning in row-scan order, which makes the interning
(and therefore the weight vector layout) of a model independent of whether
rows arrived from memory or from shard slabs.

See docs/LEARNING.md for the full contract.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.storage.atomic import atomic_write
from repro.storage.lru import BoundedLRU, resolve_bound
from repro.storage.sparse import CSRBuilder, CSRMatrix

#: Version of the on-disk checkpoint payload; a checkpoint written under a
#: different version is ignored (safe retrain).
CHECKPOINT_FORMAT_VERSION = 1


# --------------------------------------------------------------------- config
@dataclass
class TrainerConfig:
    """The epoch × mini-batch schedule of one training run.

    ``shuffle=False`` visits rows in storage order (used by the label model's
    EM, whose block sums must be order-stable); ``batch_size`` is also the
    EM block size in that mode.
    """

    n_epochs: int = 1
    batch_size: int = 32
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_epochs < 1:
            raise ValueError("n_epochs must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")


@dataclass
class TrainStats:
    """Accounting of one :meth:`Trainer.fit` call."""

    n_epochs_run: int = 0
    n_epochs_resumed: int = 0
    seconds: float = 0.0
    losses: List[float] = field(default_factory=list)
    converged_epoch: Optional[int] = None

    @property
    def n_epochs(self) -> int:
        return self.n_epochs_run + self.n_epochs_resumed

    @property
    def seconds_per_epoch(self) -> float:
        return self.seconds / self.n_epochs_run if self.n_epochs_run else 0.0


# ---------------------------------------------------------------------- batch
@dataclass
class Batch:
    """One mini-batch of training (or prediction) units.

    Sources fill the fields their models consume: sparse heads read ``rows``
    (a batch-local CSR — columns interned in row-scan order), the label model
    reads ``labels`` (a dense LF-vote block), the LSTM heads read
    ``candidates`` + ``feature_dicts``.  ``targets`` are the noise-aware
    marginal targets; ``positions`` are the global row positions the batch
    covers.
    """

    positions: np.ndarray
    targets: Optional[np.ndarray] = None
    rows: Optional[CSRMatrix] = None
    labels: Optional[np.ndarray] = None
    candidates: Optional[List[Any]] = None
    feature_dicts: Optional[List[Dict[str, float]]] = None

    def __len__(self) -> int:
        return len(self.positions)


class BatchSource:
    """Where batches come from.  ``len(source)`` rows, addressed positionally."""

    def __len__(self) -> int:
        raise NotImplementedError

    def batch(self, positions: np.ndarray) -> Batch:
        """Materialize the batch covering ``positions`` (source-local indices)."""
        raise NotImplementedError


class InMemoryBatchSource(BatchSource):
    """Batches sliced from a resident global CSR matrix (plus targets).

    ``positions`` restricts the source to a subset of the matrix's rows (the
    training split); when omitted the source covers every row in storage
    order.  Each batch is re-interned batch-locally in row-scan order, which
    is exactly what :class:`SlabBatchSource` produces for the same rows — the
    property the streaming-equals-in-memory training guarantee rests on.
    """

    def __init__(
        self,
        features: CSRMatrix,
        targets: Optional[Sequence[float]] = None,
        positions: Optional[Sequence[int]] = None,
    ) -> None:
        self._features = features
        self._names = features.column_names
        self._targets = None if targets is None else np.asarray(targets, dtype=float)
        if positions is None:
            positions = np.arange(features.n_rows)
        self._positions = np.asarray(positions, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._positions)

    def batch(self, positions: np.ndarray) -> Batch:
        global_positions = self._positions[np.asarray(positions, dtype=np.int64)]
        builder = CSRBuilder()
        names = self._names
        for row_position in global_positions:
            columns, values = self._features.row_entries(int(row_position))
            builder.add_row(
                int(row_position),
                ((names[int(c)], float(v)) for c, v in zip(columns, values)),
            )
        targets = (
            self._targets[global_positions] if self._targets is not None else None
        )
        return Batch(positions=global_positions, targets=targets, rows=builder.build())


class CandidateBatchSource(BatchSource):
    """Batches of candidate objects + extended-feature dicts (LSTM heads).

    Candidate objects cannot spill to slabs (the sequence models walk the live
    data model), so this source is in-memory only — exactly the reason
    streaming mode restricts itself to registry models flagged as
    streaming-capable.
    """

    def __init__(
        self,
        candidates: Sequence[Any],
        feature_dicts: Optional[Sequence[Dict[str, float]]],
        targets: Optional[Sequence[float]] = None,
    ) -> None:
        self._candidates = list(candidates)
        self._feature_dicts = (
            list(feature_dicts)
            if feature_dicts is not None
            else [{} for _ in self._candidates]
        )
        if len(self._feature_dicts) != len(self._candidates):
            raise ValueError("candidates and feature_dicts must align")
        self._targets = None if targets is None else np.asarray(targets, dtype=float)
        if self._targets is not None and len(self._targets) != len(self._candidates):
            raise ValueError("candidates and targets must align")

    def __len__(self) -> int:
        return len(self._candidates)

    def batch(self, positions: np.ndarray) -> Batch:
        positions = np.asarray(positions, dtype=np.int64)
        return Batch(
            positions=positions,
            targets=self._targets[positions] if self._targets is not None else None,
            candidates=[self._candidates[int(i)] for i in positions],
            feature_dicts=[self._feature_dicts[int(i)] for i in positions],
        )


class DenseLabelSource(BatchSource):
    """Label-matrix blocks from a resident dense array or CSR matrix.

    A CSR input is densified *per block*, never whole — the fix for the old
    ``LabelModel._as_dense`` which materialized the full matrix up front.
    """

    def __init__(self, L: Any) -> None:
        if isinstance(L, CSRMatrix):
            self._csr = L
            self._dense = None
            self.n_lfs = L.n_columns
            self._n_rows = L.n_rows
        else:
            dense = np.asarray(L)
            if dense.ndim != 2:
                raise ValueError("Label matrix must be 2-dimensional")
            self._csr = None
            self._dense = dense
            self._n_rows, self.n_lfs = dense.shape

    def __len__(self) -> int:
        return self._n_rows

    def batch(self, positions: np.ndarray) -> Batch:
        positions = np.asarray(positions, dtype=np.int64)
        if self._dense is not None:
            block = np.asarray(self._dense[positions], dtype=float)
        else:
            block = np.zeros((len(positions), self.n_lfs))
            for out_row, position in enumerate(positions):
                columns, values = self._csr.row_entries(int(position))
                block[out_row, columns] = values
        return Batch(positions=positions, labels=block)


class SlabLabelSource(BatchSource):
    """Label-matrix blocks streamed from per-shard label slabs.

    Blocks are assembled by global row position across shard boundaries, with
    at most ``max_resident`` shards' label slabs held at once.  Because
    :class:`Trainer` re-chunks every source into uniform ``batch_size``
    blocks, EM over slab input accumulates the identical partial sums as EM
    over the equivalent resident matrix.
    """

    def __init__(self, store: Any, shards: Sequence[Any], max_resident: int = 4) -> None:
        self._store = store
        self._shards = list(shards)
        self._lru = BoundedLRU(resolve_bound(max_resident))
        counts = [int(shard.stages["label"]["n_rows"]) for shard in self._shards]
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._n_rows = int(self._offsets[-1])
        self.n_lfs: Optional[int] = None
        for shard_index in range(len(self._shards)):
            if counts[shard_index]:
                self.n_lfs = self._slab(shard_index).shape[1]
                break

    def __len__(self) -> int:
        return self._n_rows

    @property
    def loads(self) -> int:
        return self._lru.loads

    def _slab(self, shard_index: int) -> np.ndarray:
        return self._lru.get_or_load(
            shard_index,
            lambda: self._store.load_label_slab(self._shards[shard_index]),
        )

    def batch(self, positions: np.ndarray) -> Batch:
        positions = np.asarray(positions, dtype=np.int64)
        n_lfs = self.n_lfs or 0
        block = np.zeros((len(positions), n_lfs))
        shard_of = np.searchsorted(self._offsets, positions, side="right") - 1
        for out_row, (position, shard_index) in enumerate(zip(positions, shard_of)):
            slab = self._slab(int(shard_index))
            block[out_row] = slab[int(position - self._offsets[shard_index])]
        return Batch(positions=positions, labels=block)


class SlabBatchSource(BatchSource):
    """Batches streamed out of a shard store's feature + marginal slabs.

    The out-of-core face of training: feature rows come from per-shard CSR
    feature slabs (:class:`~repro.storage.shards.FeatureSlab`) and targets
    from per-shard ``marginals.npy`` slabs, with at most ``max_resident``
    shards' slabs resident.  A slab row's ``(name, value)`` entry scan is
    identical to the corresponding row of the globally concatenated CSR
    (see :func:`~repro.storage.shards.concat_feature_slabs`), so batches are
    byte-identical to :class:`InMemoryBatchSource` over the same corpus.
    """

    def __init__(
        self,
        store: Any,
        shards: Sequence[Any],
        positions: Optional[Sequence[int]] = None,
        with_targets: bool = True,
        max_resident: int = 4,
    ) -> None:
        self._store = store
        self._shards = list(shards)
        self._with_targets = with_targets
        self._lru = BoundedLRU(resolve_bound(max_resident))
        counts = [int(shard.stages["featurize"]["n_rows"]) for shard in self._shards]
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self.n_corpus_rows = int(self._offsets[-1])
        if positions is None:
            positions = np.arange(self.n_corpus_rows)
        self._positions = np.asarray(positions, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._positions)

    @property
    def n_resident(self) -> int:
        return len(self._lru)

    @property
    def loads(self) -> int:
        return self._lru.loads

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    def _load_entry(self, shard_index: int) -> Dict[str, Any]:
        shard = self._shards[shard_index]
        entry = {"features": self._store.load_feature_slab(shard)}
        if self._with_targets:
            entry["marginals"] = self._store.load_marginal_slab(shard)
        return entry

    def _entry(self, shard_index: int) -> Dict[str, Any]:
        return self._lru.get_or_load(
            shard_index, lambda: self._load_entry(shard_index)
        )

    def batch(self, positions: np.ndarray) -> Batch:
        global_positions = self._positions[np.asarray(positions, dtype=np.int64)]
        builder = CSRBuilder()
        targets: List[float] = []
        shard_of = np.searchsorted(self._offsets, global_positions, side="right") - 1
        for position, shard_index in zip(global_positions, shard_of):
            entry = self._entry(int(shard_index))
            slab = entry["features"]
            local = int(position - self._offsets[shard_index])
            start, end = int(slab.indptr[local]), int(slab.indptr[local + 1])
            columns = slab.columns
            builder.add_row(
                int(position),
                (
                    (columns[int(c)], float(v))
                    for c, v in zip(slab.indices[start:end], slab.data[start:end])
                ),
            )
            if self._with_targets:
                targets.append(float(entry["marginals"][local]))
        return Batch(
            positions=global_positions,
            targets=np.asarray(targets, dtype=float) if self._with_targets else None,
            rows=builder.build(),
        )


# ----------------------------------------------------------------- checkpoint
class TrainerCheckpoint:
    """Atomic per-epoch checkpoint of one training run.

    The payload (a pickle; see docs/LEARNING.md for the schema) records the
    derived training cache key, the last completed epoch, the model's
    ``state_dict`` and the trainer's per-epoch losses.  ``save`` writes
    through :func:`~repro.storage.atomic.atomic_write` (fsynced temp, rename,
    directory fsync), so neither a kill mid-write nor a power loss right
    after the rename can corrupt the previous checkpoint; ``load`` ignores
    payloads whose key or format version do not
    match — a configuration change retrains from scratch instead of silently
    resuming a stale model.
    """

    def __init__(self, path: Any, key: str) -> None:
        from pathlib import Path

        self.path = Path(path)
        self.key = key

    def load(self) -> Optional[Dict[str, Any]]:
        if not self.path.exists():
            return None
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if (
            payload.get("format_version") != CHECKPOINT_FORMAT_VERSION
            or payload.get("key") != self.key
        ):
            return None
        return payload

    def save(
        self,
        epoch: int,
        model_state: Any,
        complete: bool,
        losses: Sequence[float],
    ) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "key": self.key,
            "epoch": epoch,
            "complete": complete,
            "model_state": model_state,
            "losses": list(losses),
        }
        with atomic_write(self.path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


# -------------------------------------------------------------------- trainer
#: Per-epoch callback: ``on_epoch(epoch, resumed)`` is invoked *after* the
#: epoch's checkpoint (if any) has been persisted, so raising from the
#: callback models a process kill at exactly that epoch boundary.  Resumed
#: epochs (restored from a checkpoint instead of run) are reported too.
EpochCallback = Callable[[int, bool], None]


class Trainer:
    """Drive a :class:`TrainableModel` through a deterministic batch schedule.

    The protocol a model implements::

        init_state(source)            # fresh start (not called on resume)
        begin_epoch(epoch)            # epoch bookkeeping (e.g. EM accumulators)
        partial_fit(batch) -> float   # one mini-batch update; returns summed loss
        end_epoch(epoch) -> bool      # True = converged, stop early
        finalize()                    # training done (run and resumed paths)
        predict_proba_batch(batch)    # per-row positive-class marginals
        state_dict() / load_state_dict(state)   # checkpointable state

    ``fit`` is deterministic in ``(config.seed, epoch)`` and independent of
    batch *source* (memory vs shard slabs) and of interruption: resuming from
    epoch ``k`` replays exactly the remaining schedule.
    """

    def __init__(self, config: Optional[TrainerConfig] = None) -> None:
        self.config = config or TrainerConfig()

    # ------------------------------------------------------------- schedule
    def _epoch_order(self, n: int, epoch: int) -> np.ndarray:
        if not self.config.shuffle:
            return np.arange(n)
        # Keyed by (seed, epoch), not a carried RNG: epoch e's permutation is
        # reproducible without replaying epochs 0..e-1 — the property that
        # makes checkpoint resume bitwise-exact.
        return np.random.default_rng([self.config.seed, epoch]).permutation(n)

    def _batches(self, order: np.ndarray):
        batch_size = self.config.batch_size
        for lo in range(0, len(order), batch_size):
            yield order[lo : lo + batch_size]

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        model: Any,
        source: BatchSource,
        checkpoint: Optional[TrainerCheckpoint] = None,
        on_epoch: Optional[EpochCallback] = None,
    ) -> TrainStats:
        n = len(source)
        if n == 0:
            raise ValueError("Cannot train on an empty batch source")
        stats = TrainStats()
        start_epoch = 0
        complete = False

        if checkpoint is not None:
            payload = checkpoint.load()
            if payload is not None:
                model.load_state_dict(payload["model_state"])
                start_epoch = int(payload["epoch"]) + 1
                complete = bool(payload["complete"])
                stats.losses = list(payload["losses"])
                stats.n_epochs_resumed = start_epoch
                if on_epoch is not None:
                    for epoch in range(start_epoch):
                        on_epoch(epoch, True)
        if start_epoch == 0:
            model.init_state(source)

        started = time.perf_counter()
        if not complete:
            for epoch in range(start_epoch, self.config.n_epochs):
                model.begin_epoch(epoch)
                epoch_loss = 0.0
                for batch_positions in self._batches(self._epoch_order(n, epoch)):
                    epoch_loss += float(model.partial_fit(source.batch(batch_positions)))
                converged = bool(model.end_epoch(epoch))
                stats.losses.append(epoch_loss / n)
                stats.n_epochs_run += 1
                if converged:
                    stats.converged_epoch = epoch
                is_last = converged or epoch == self.config.n_epochs - 1
                if checkpoint is not None:
                    checkpoint.save(epoch, model.state_dict(), is_last, stats.losses)
                if on_epoch is not None:
                    on_epoch(epoch, False)
                if converged:
                    break
        stats.seconds = time.perf_counter() - started
        model.finalize()
        return stats

    # -------------------------------------------------------------- predict
    def predict(self, model: Any, source: BatchSource) -> np.ndarray:
        """Per-row positive-class marginals over the whole source, in order."""
        n = len(source)
        if n == 0:
            return np.zeros(0)
        chunks = [
            np.asarray(model.predict_proba_batch(source.batch(batch_positions)))
            for batch_positions in self._batches(np.arange(n))
        ]
        return np.concatenate(chunks)
