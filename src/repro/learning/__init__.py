"""Learning substrate and models.

* :mod:`repro.learning.trainer` — the unified training runtime: a mini-batch
  :class:`~repro.learning.trainer.Trainer` over pluggable
  :class:`~repro.learning.trainer.BatchSource` implementations (in-memory CSR
  row slices, or shard-slab-backed streaming with bounded residency), with
  per-epoch atomic checkpoints and exact resume.
* :mod:`repro.learning.registry` — string-keyed model registry mapping
  ``FonduerConfig.model`` names to model factories.
* :mod:`repro.learning.nn` — a from-scratch NumPy neural-network substrate
  (dense layers, LSTM cells, bidirectional LSTM, attention, Adam, noise-aware
  cross-entropy) replacing the PyTorch dependency of the original system.
* :mod:`repro.learning.multimodal_lstm` — Fonduer's model (paper Section 4.2):
  a Bi-LSTM with attention over each mention's sentence, concatenated with the
  extended multimodal feature library, trained jointly with a softmax head on
  the probabilistic labels produced by the label model.
* :mod:`repro.learning.logistic` — sparse logistic regression, used both as the
  "human-tuned feature library" baseline of Table 4 and as a lightweight
  discriminative head (the only model trainable out-of-core).
* :mod:`repro.learning.doc_rnn` — the document-level RNN baseline of Table 6.
* :mod:`repro.learning.marginals` — thresholding utilities over marginal
  probabilities (the classification step of Phase 3).
"""

from repro.learning.doc_rnn import DocumentRNN, DocumentRNNConfig
from repro.learning.logistic import LogisticConfig, SparseLogisticRegression
from repro.learning.marginals import classify_marginals
from repro.learning.multimodal_lstm import MultimodalLSTM, MultimodalLSTMConfig
from repro.learning.registry import (
    ModelSpec,
    available_models,
    create_model,
    model_spec,
    register_model,
)
from repro.learning.trainer import (
    Batch,
    BatchSource,
    CandidateBatchSource,
    DenseLabelSource,
    InMemoryBatchSource,
    SlabBatchSource,
    SlabLabelSource,
    Trainer,
    TrainerCheckpoint,
    TrainerConfig,
    TrainStats,
)

__all__ = [
    "Batch",
    "BatchSource",
    "CandidateBatchSource",
    "DenseLabelSource",
    "DocumentRNN",
    "DocumentRNNConfig",
    "InMemoryBatchSource",
    "LogisticConfig",
    "ModelSpec",
    "MultimodalLSTM",
    "MultimodalLSTMConfig",
    "SlabBatchSource",
    "SlabLabelSource",
    "SparseLogisticRegression",
    "Trainer",
    "TrainerCheckpoint",
    "TrainerConfig",
    "TrainStats",
    "available_models",
    "classify_marginals",
    "create_model",
    "model_spec",
    "register_model",
]
