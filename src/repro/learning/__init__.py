"""Learning substrate and models.

* :mod:`repro.learning.nn` — a from-scratch NumPy neural-network substrate
  (dense layers, LSTM cells, bidirectional LSTM, attention, Adam, noise-aware
  cross-entropy) replacing the PyTorch dependency of the original system.
* :mod:`repro.learning.multimodal_lstm` — Fonduer's model (paper Section 4.2):
  a Bi-LSTM with attention over each mention's sentence, concatenated with the
  extended multimodal feature library, trained jointly with a softmax head on
  the probabilistic labels produced by the label model.
* :mod:`repro.learning.logistic` — sparse logistic regression, used both as the
  "human-tuned feature library" baseline of Table 4 and as a lightweight
  discriminative head.
* :mod:`repro.learning.doc_rnn` — the document-level RNN baseline of Table 6.
* :mod:`repro.learning.marginals` — thresholding utilities over marginal
  probabilities (the classification step of Phase 3).
"""

from repro.learning.logistic import SparseLogisticRegression
from repro.learning.multimodal_lstm import MultimodalLSTM, MultimodalLSTMConfig
from repro.learning.doc_rnn import DocumentRNN, DocumentRNNConfig
from repro.learning.marginals import classify_marginals

__all__ = [
    "DocumentRNN",
    "DocumentRNNConfig",
    "MultimodalLSTM",
    "MultimodalLSTMConfig",
    "SparseLogisticRegression",
    "classify_marginals",
]
