"""Classification from marginal probabilities (Phase 3, "Classification").

"Users can specify a threshold over the output marginal probabilities to
determine which candidates will be classified as 'True' ... This threshold
depends on the requirements of the application" (paper Section 3.2).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.candidates.mentions import Candidate


def classify_marginals(
    candidates: Sequence[Candidate],
    marginals: Sequence[float],
    threshold: float = 0.5,
) -> List[Candidate]:
    """Candidates whose marginal probability of being true exceeds ``threshold``."""
    if len(candidates) != len(marginals):
        raise ValueError("candidates and marginals must have the same length")
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must lie in [0, 1]")
    return [c for c, p in zip(candidates, marginals) if p > threshold]


def sweep_thresholds(
    marginals: Sequence[float],
    gold: Sequence[int],
    thresholds: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7),
) -> List[Tuple[float, float]]:
    """(threshold, F1) pairs over a sweep — the tuning view applications use."""
    marginals = np.asarray(marginals, dtype=float)
    gold = np.asarray(gold)
    results: List[Tuple[float, float]] = []
    for threshold in thresholds:
        predicted = marginals > threshold
        actual = gold == 1
        tp = int(np.sum(predicted & actual))
        fp = int(np.sum(predicted & ~actual))
        fn = int(np.sum(~predicted & actual))
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        results.append((float(threshold), float(f1)))
    return results
