"""Basic neural-network building blocks: parameters, dense layers, activations."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


def glorot_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_out, fan_in))


class Module:
    """Minimal module base: tracks parameters for the optimizer."""

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()


class Dense(Module):
    """Fully connected layer ``y = W x + b`` with optional activation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "dense",
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.W = Parameter(glorot_init(rng, in_features, out_features), f"{name}.W")
        self.b = Parameter(np.zeros(out_features), f"{name}.b")
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, dict]:
        """Return output and a cache for the backward pass.  ``x`` is 1-D."""
        y = self.W.value @ x + self.b.value
        return y, {"x": x}

    def backward(self, dy: np.ndarray, cache: dict) -> np.ndarray:
        """Accumulate parameter gradients; return gradient w.r.t. the input."""
        x = cache["x"]
        self.W.grad += np.outer(dy, x)
        self.b.grad += dy
        return self.W.value.T @ dy
