"""Word-level attention over LSTM hidden states.

Implements the attention mechanism of the paper (Section 4.2)::

    u_ik = tanh(W_w h_ik + b_w)
    α_ik = exp(u_ik · u_w) / Σ_j exp(u_ij · u_w)
    t_i  = Σ_j α_ij u_ij

i.e. a learned context vector ``u_w`` scores each word's hidden representation
and the mention representation is the attention-weighted sum.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.learning.nn.layers import Module, Parameter, glorot_init, softmax


class Attention(Module):
    """Additive word attention producing a fixed-size sequence representation."""

    def __init__(
        self,
        hidden_dim: int,
        attention_dim: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        name: str = "attention",
    ) -> None:
        rng = rng or np.random.default_rng(0)
        attention_dim = attention_dim or hidden_dim
        self.hidden_dim = hidden_dim
        self.attention_dim = attention_dim
        self.Ww = Parameter(glorot_init(rng, hidden_dim, attention_dim), f"{name}.Ww")
        self.bw = Parameter(np.zeros(attention_dim), f"{name}.bw")
        self.uw = Parameter(rng.standard_normal(attention_dim) * 0.1, f"{name}.uw")

    @property
    def output_dim(self) -> int:
        return self.attention_dim

    def forward(self, hidden: np.ndarray) -> Tuple[np.ndarray, Dict]:
        """Attend over ``hidden`` (T, hidden_dim); return (attention_dim,) and cache."""
        u = np.tanh(hidden @ self.Ww.value.T + self.bw.value)  # (T, A)
        scores = u @ self.uw.value  # (T,)
        alpha = softmax(scores)
        t = alpha @ u  # (A,)
        return t, {"hidden": hidden, "u": u, "alpha": alpha}

    def backward(self, d_t: np.ndarray, cache: Dict) -> np.ndarray:
        """Backpropagate; accumulate parameter grads and return d_hidden (T, hidden_dim)."""
        hidden, u, alpha = cache["hidden"], cache["u"], cache["alpha"]

        d_alpha = u @ d_t  # (T,)
        d_u = np.outer(alpha, d_t)  # (T, A) from t = Σ α_j u_j

        # Softmax backward: d_scores = α ∘ (d_alpha - Σ_j α_j d_alpha_j)
        d_scores = alpha * (d_alpha - float(alpha @ d_alpha))
        d_u += np.outer(d_scores, self.uw.value)
        self.uw.grad += u.T @ d_scores

        d_pre = d_u * (1.0 - u ** 2)  # tanh backward, (T, A)
        self.Ww.grad += d_pre.T @ hidden
        self.bw.grad += d_pre.sum(axis=0)
        return d_pre @ self.Ww.value
