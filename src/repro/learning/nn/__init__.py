"""NumPy neural-network substrate: layers, LSTM, attention, optimizer, loss."""

from repro.learning.nn.layers import Dense, Parameter, sigmoid, softmax, tanh
from repro.learning.nn.lstm import BiLSTM, LSTMCell
from repro.learning.nn.attention import Attention
from repro.learning.nn.optimizer import Adam
from repro.learning.nn.loss import noise_aware_cross_entropy, binary_cross_entropy

__all__ = [
    "Adam",
    "Attention",
    "BiLSTM",
    "Dense",
    "LSTMCell",
    "Parameter",
    "binary_cross_entropy",
    "noise_aware_cross_entropy",
    "sigmoid",
    "softmax",
    "tanh",
]
