"""LSTM cell and bidirectional LSTM with full backpropagation through time.

Implements the LSTM equations of the paper (Section 2.2)::

    i_t = σ(W_i x_t + U_i h_{t-1} + b_i)
    f_t = σ(W_f x_t + U_f h_{t-1} + b_f)
    o_t = σ(W_o x_t + U_o h_{t-1} + b_o)
    c_t = f_t ∘ c_{t-1} + i_t ∘ tanh(W_c x_t + U_c h_{t-1} + b_c)
    h_t = o_t ∘ tanh(c_t)

The bidirectional LSTM concatenates the forward and backward hidden state at
each position, ``h_t = [h^F_t, h^B_t]`` (Section 2.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.learning.nn.layers import Module, Parameter, glorot_init, sigmoid


class LSTMCell(Module):
    """A single-direction LSTM processing a full sequence.

    Gate weights are stored stacked: rows [0:H] input gate, [H:2H] forget gate,
    [2H:3H] output gate, [3H:4H] cell candidate.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "lstm",
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.W = Parameter(glorot_init(rng, input_dim, 4 * hidden_dim), f"{name}.W")
        self.U = Parameter(glorot_init(rng, hidden_dim, 4 * hidden_dim), f"{name}.U")
        self.b = Parameter(np.zeros(4 * hidden_dim), f"{name}.b")
        # Initialize the forget-gate bias to 1 (standard practice: remember by default).
        self.b.value[hidden_dim : 2 * hidden_dim] = 1.0

    # -------------------------------------------------------------- forward
    def forward(self, inputs: np.ndarray) -> Tuple[np.ndarray, Dict]:
        """Run the cell over ``inputs`` of shape (T, input_dim).

        Returns the hidden states of shape (T, hidden_dim) and a cache.
        """
        T = inputs.shape[0]
        H = self.hidden_dim
        h = np.zeros(H)
        c = np.zeros(H)
        hidden_states = np.zeros((T, H))
        caches: List[Dict] = []

        for t in range(T):
            x = inputs[t]
            pre = self.W.value @ x + self.U.value @ h + self.b.value
            i = sigmoid(pre[0:H])
            f = sigmoid(pre[H : 2 * H])
            o = sigmoid(pre[2 * H : 3 * H])
            g = np.tanh(pre[3 * H : 4 * H])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            caches.append(
                {
                    "x": x,
                    "h_prev": h,
                    "c_prev": c,
                    "i": i,
                    "f": f,
                    "o": o,
                    "g": g,
                    "c": c_new,
                    "tanh_c": tanh_c,
                }
            )
            h, c = h_new, c_new
            hidden_states[t] = h
        return hidden_states, {"steps": caches, "T": T}

    # ------------------------------------------------------------- backward
    def backward(self, d_hidden: np.ndarray, cache: Dict) -> np.ndarray:
        """Backpropagate gradients ``d_hidden`` (T, hidden_dim) through time.

        Accumulates parameter gradients and returns the gradient with respect
        to the inputs, shape (T, input_dim).
        """
        steps = cache["steps"]
        T = cache["T"]
        H = self.hidden_dim
        d_inputs = np.zeros((T, self.input_dim))
        dh_next = np.zeros(H)
        dc_next = np.zeros(H)

        for t in reversed(range(T)):
            step = steps[t]
            dh = d_hidden[t] + dh_next
            o, tanh_c = step["o"], step["tanh_c"]
            i, f, g = step["i"], step["f"], step["g"]
            c_prev = step["c_prev"]

            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c ** 2) + dc_next
            df = dc * c_prev
            di = dc * g
            dg = dc * i
            dc_next = dc * f

            d_pre = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    do * o * (1.0 - o),
                    dg * (1.0 - g ** 2),
                ]
            )
            self.W.grad += np.outer(d_pre, step["x"])
            self.U.grad += np.outer(d_pre, step["h_prev"])
            self.b.grad += d_pre
            d_inputs[t] = self.W.value.T @ d_pre
            dh_next = self.U.value.T @ d_pre
        return d_inputs


class BiLSTM(Module):
    """Bidirectional LSTM: concatenated forward and backward hidden states."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "bilstm",
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.forward_cell = LSTMCell(input_dim, hidden_dim, rng, f"{name}.fwd")
        self.backward_cell = LSTMCell(input_dim, hidden_dim, rng, f"{name}.bwd")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim

    @property
    def output_dim(self) -> int:
        return 2 * self.hidden_dim

    def forward(self, inputs: np.ndarray) -> Tuple[np.ndarray, Dict]:
        """Hidden states of shape (T, 2 * hidden_dim) plus a cache."""
        forward_states, forward_cache = self.forward_cell.forward(inputs)
        backward_states_rev, backward_cache = self.backward_cell.forward(inputs[::-1])
        backward_states = backward_states_rev[::-1]
        hidden = np.concatenate([forward_states, backward_states], axis=1)
        return hidden, {"forward": forward_cache, "backward": backward_cache}

    def backward(self, d_hidden: np.ndarray, cache: Dict) -> np.ndarray:
        H = self.hidden_dim
        d_forward = d_hidden[:, :H]
        d_backward = d_hidden[:, H:]
        d_inputs_forward = self.forward_cell.backward(d_forward, cache["forward"])
        d_inputs_backward_rev = self.backward_cell.backward(
            d_backward[::-1], cache["backward"]
        )
        return d_inputs_forward + d_inputs_backward_rev[::-1]
