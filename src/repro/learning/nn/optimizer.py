"""Adam optimizer."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.learning.nn.layers import Parameter


class Adam:
    """Adam (Kingma & Ba, 2015) with optional gradient clipping and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
        clip_norm: Optional[float] = 5.0,
    ) -> None:
        self.parameters: List[Parameter] = list(parameters)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def _global_norm(self) -> float:
        return float(
            np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in self.parameters))
        )

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        self._t += 1
        scale = 1.0
        if self.clip_norm is not None:
            norm = self._global_norm()
            if norm > self.clip_norm and norm > 0:
                scale = self.clip_norm / norm
        for index, parameter in enumerate(self.parameters):
            grad = parameter.grad * scale
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[index] / (1 - self.beta1 ** self._t)
            v_hat = self._v[index] / (1 - self.beta2 ** self._t)
            parameter.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    # ----------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """First and second moments plus the step counter (resume-exact)."""
        return {
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "t": self._t,
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self.parameters):
            raise ValueError(
                f"Optimizer state covers {len(state['m'])} parameters, "
                f"expected {len(self.parameters)}"
            )
        self._m = [np.asarray(m).copy() for m in state["m"]]
        self._v = [np.asarray(v).copy() for v in state["v"]]
        self._t = int(state["t"])
