"""Loss functions.

The discriminative model is *noise-aware* (paper Appendix A): it is trained on
probabilistic labels (marginals in [0, 1]) produced by the generative label
model rather than on hard gold labels, minimizing the expected cross-entropy
under the label distribution.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def binary_cross_entropy(probability: float, target: float, epsilon: float = 1e-9) -> Tuple[float, float]:
    """Cross-entropy of a Bernoulli prediction against a (possibly soft) target.

    Returns ``(loss, d_loss/d_probability)``.
    """
    p = float(np.clip(probability, epsilon, 1.0 - epsilon))
    t = float(np.clip(target, 0.0, 1.0))
    loss = -(t * np.log(p) + (1.0 - t) * np.log(1.0 - p))
    grad = (p - t) / (p * (1.0 - p))
    return loss, grad


def noise_aware_cross_entropy(
    logit_positive: float,
    marginal: float,
) -> Tuple[float, float]:
    """Noise-aware loss on a single positive-class logit against a marginal target.

    The model outputs one logit ``z``; the positive-class probability is
    ``σ(z)``.  Returns ``(loss, d_loss/d_logit)`` — the gradient simplifies to
    ``σ(z) - marginal``, which is what makes training on soft labels stable.
    """
    z = float(logit_positive)
    t = float(np.clip(marginal, 0.0, 1.0))
    # log(1 + exp(-|z|)) formulation for numerical stability.
    if z >= 0:
        log_sigma = -np.log1p(np.exp(-z))
        log_one_minus = -z - np.log1p(np.exp(-z))
    else:
        log_sigma = z - np.log1p(np.exp(z))
        log_one_minus = -np.log1p(np.exp(z))
    loss = -(t * log_sigma + (1.0 - t) * log_one_minus)
    probability = 1.0 / (1.0 + np.exp(-z)) if z >= 0 else np.exp(z) / (1.0 + np.exp(z))
    grad = probability - t
    return float(loss), float(grad)
