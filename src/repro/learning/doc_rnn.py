"""Document-level RNN baseline (paper Table 6).

The paper compares Fonduer's approach — sentence-level Bi-LSTMs per mention
plus appended non-textual features — against a document-level RNN [22] that
learns a single representation over the *entire* document sequence for every
candidate.  Such networks are "too large and too unique to batch effectively",
making them three orders of magnitude slower per epoch and much less accurate.

This baseline runs the same Bi-LSTM machinery over the full document token
sequence (with candidate markers inserted), so its per-epoch cost scales with
document length rather than sentence length — reproducing the runtime gap of
Table 6 on the scaled-down corpora.  Like every other model it trains through
the unified runtime (:mod:`repro.learning.trainer`); its feature head is
empty, so batches only need the candidate objects and targets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.candidates.mentions import Candidate
from repro.learning.nn.attention import Attention
from repro.learning.nn.layers import Dense
from repro.learning.nn.loss import noise_aware_cross_entropy
from repro.learning.nn.lstm import BiLSTM
from repro.learning.nn.optimizer import Adam
from repro.learning.trainer import Batch, CandidateBatchSource, Trainer, TrainerConfig
from repro.nlp.embeddings import WordEmbeddings


@dataclass
class DocumentRNNConfig:
    """Model and training hyperparameters for the document-level baseline."""

    embedding_dim: int = 24
    hidden_dim: int = 16
    attention_dim: int = 16
    max_document_length: int = 600
    n_epochs: int = 3
    learning_rate: float = 5e-3
    seed: int = 0


@dataclass
class DocumentRNNStats:
    n_epochs: int = 0
    seconds_per_epoch: float = 0.0
    losses: List[float] = field(default_factory=list)


class DocumentRNN:
    """Bi-LSTM with attention over the full document sequence per candidate."""

    def __init__(self, arity: int, config: Optional[DocumentRNNConfig] = None) -> None:
        self.arity = arity
        self.config = config or DocumentRNNConfig()
        rng = np.random.default_rng(self.config.seed)
        self.embeddings = WordEmbeddings(dim=self.config.embedding_dim)
        self.bilstm = BiLSTM(self.config.embedding_dim, self.config.hidden_dim, rng)
        self.attention = Attention(2 * self.config.hidden_dim, self.config.attention_dim, rng)
        self.output = Dense(self.config.attention_dim, 1, rng, name="doc_output")
        self.stats = DocumentRNNStats()
        self._optimizer: Optional[Adam] = None

    # ------------------------------------------------------------- sequences
    def _document_tokens(self, candidate: Candidate) -> List[str]:
        """The whole document's words with candidate markers around each mention."""
        document = candidate.document
        if document is None:
            return [w for m in candidate.mentions for w in m.span.words]
        marker_starts = {}
        marker_ends = {}
        for index, mention in enumerate(candidate.mentions):
            marker_starts[(id(mention.span.sentence), mention.span.word_start)] = index + 1
            marker_ends[(id(mention.span.sentence), mention.span.word_end - 1)] = index + 1

        tokens: List[str] = []
        for sentence in document.sentences():
            for position, word in enumerate(sentence.words):
                key = (id(sentence), position)
                if key in marker_starts:
                    tokens.append(f"[[{marker_starts[key]}")
                tokens.append(word)
                if key in marker_ends:
                    tokens.append(f"{marker_ends[key]}]]")
        max_length = self.config.max_document_length
        if len(tokens) > max_length:
            tokens = tokens[:max_length]
        return tokens

    def _forward(self, candidate: Candidate) -> Tuple[float, Dict]:
        tokens = self._document_tokens(candidate)
        embedded = self.embeddings.embed_sequence(tokens)
        hidden, lstm_cache = self.bilstm.forward(embedded)
        rep, attention_cache = self.attention.forward(hidden)
        logit, dense_cache = self.output.forward(rep)
        return float(logit[0]), {
            "lstm": lstm_cache,
            "attention": attention_cache,
            "dense": dense_cache,
        }

    def _backward(self, d_logit: float, cache: Dict) -> None:
        d_rep = self.output.backward(np.array([d_logit]), cache["dense"])
        d_hidden = self.attention.backward(d_rep, cache["attention"])
        self.bilstm.backward(d_hidden, cache["lstm"])

    def _all_parameters(self):
        return (
            self.bilstm.parameters() + self.attention.parameters() + self.output.parameters()
        )

    # -------------------------------------------------- TrainableModel protocol
    def init_state(self, source) -> None:
        self.stats = DocumentRNNStats()
        self._epoch_seconds_total = 0.0
        self._optimizer = Adam(
            self._all_parameters(), learning_rate=self.config.learning_rate
        )

    def partial_fit(self, batch: Batch) -> float:
        if batch.candidates is None:
            raise ValueError("DocumentRNN batches must carry candidate objects")
        if self._optimizer is None:
            self.init_state(None)
        optimizer = self._optimizer
        targets = np.clip(np.asarray(batch.targets, dtype=float), 0.0, 1.0)
        self._epoch_rows = getattr(self, "_epoch_rows", 0) + len(batch.candidates)
        batch_loss = 0.0
        for candidate, target in zip(batch.candidates, targets):
            optimizer.zero_grad()
            logit, cache = self._forward(candidate)
            loss, d_logit = noise_aware_cross_entropy(logit, float(target))
            batch_loss += loss
            self._backward(d_logit, cache)
            optimizer.step()
        self._epoch_loss = getattr(self, "_epoch_loss", 0.0) + batch_loss
        return batch_loss

    def begin_epoch(self, epoch: int) -> None:
        self._epoch_loss = 0.0
        self._epoch_rows = 0
        self._epoch_started = time.perf_counter()

    def end_epoch(self, epoch: int) -> bool:
        # The model owns its training statistics (the Table 6 runtime-gap
        # claim rests on seconds_per_epoch), so they are populated whether
        # training runs through fit() or a pipeline-owned Trainer.
        self.stats.losses.append(self._epoch_loss / max(1, self._epoch_rows))
        self.stats.n_epochs = epoch + 1
        # getattr defaults: a checkpoint resume restores state via
        # load_state_dict without init_state, so the timing accumulators may
        # not exist yet on the first resumed epoch.
        self._epoch_seconds_total = getattr(
            self, "_epoch_seconds_total", 0.0
        ) + time.perf_counter() - getattr(self, "_epoch_started", time.perf_counter())
        self.stats.seconds_per_epoch = self._epoch_seconds_total / max(
            1, len(self.stats.losses)
        )
        return False

    def finalize(self) -> None:
        pass

    def predict_proba_batch(self, batch: Batch) -> np.ndarray:
        if batch.candidates is None:
            raise ValueError("DocumentRNN batches must carry candidate objects")
        return self.predict_proba(batch.candidates)

    def state_dict(self) -> Dict[str, object]:
        if self._optimizer is None:
            self._optimizer = Adam(
                self._all_parameters(), learning_rate=self.config.learning_rate
            )
        return {
            "parameters": [p.value.copy() for p in self._all_parameters()],
            "optimizer": self._optimizer.state_dict(),
            "stats": (self.stats.n_epochs, list(self.stats.losses)),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        for parameter, value in zip(self._all_parameters(), state["parameters"]):
            parameter.value = np.asarray(value).copy()
        self._optimizer = Adam(
            self._all_parameters(), learning_rate=self.config.learning_rate
        )
        self._optimizer.load_state_dict(state["optimizer"])
        n_epochs, losses = state["stats"]  # type: ignore[misc]
        self.stats = DocumentRNNStats(n_epochs=int(n_epochs), losses=list(losses))

    # ------------------------------------------------------------------ train
    def fit(self, candidates: Sequence[Candidate], marginals: Sequence[float]) -> "DocumentRNN":
        if len(candidates) != len(marginals):
            raise ValueError("candidates and marginals must align")
        if not candidates:
            raise ValueError("Cannot train on an empty candidate set")
        source = CandidateBatchSource(candidates, None, marginals)
        trainer = Trainer(
            TrainerConfig(n_epochs=self.config.n_epochs, seed=self.config.seed)
        )
        trainer.fit(self, source)
        return self

    # ---------------------------------------------------------------- predict
    def predict_proba(self, candidates: Sequence[Candidate]) -> np.ndarray:
        probabilities = np.zeros(len(candidates))
        for i, candidate in enumerate(candidates):
            logit, _ = self._forward(candidate)
            if logit >= 0:
                probabilities[i] = 1.0 / (1.0 + np.exp(-logit))
            else:
                probabilities[i] = np.exp(logit) / (1.0 + np.exp(logit))
        return probabilities

    def predict(self, candidates: Sequence[Candidate], threshold: float = 0.5) -> np.ndarray:
        return np.where(self.predict_proba(candidates) > threshold, 1, -1)
