"""Throttlers: hard filtering rules over candidates.

"Users can optionally provide throttlers, which act as hard filtering rules to
reduce the number of candidates that are materialized. Throttlers are also
Python functions, but rather than accepting spans of text as input, they
operate on candidates, and output whether or not a candidate meets the
specified condition" (paper Example 3.4, Section 4.1).

A throttler returns True to *keep* a candidate.  Throttlers trade recall for
scalability and class balance; the Figure 4 benchmark sweeps this knob.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.candidates.mentions import Candidate

Throttler = Callable[[Candidate], bool]


def all_throttlers(*throttlers: Throttler) -> Throttler:
    """Keep a candidate only when every throttler keeps it (logical AND)."""
    def combined(candidate: Candidate) -> bool:
        return all(throttler(candidate) for throttler in throttlers)

    combined.__name__ = "all_of_" + "_".join(getattr(t, "__name__", "throttler") for t in throttlers)
    return combined


def any_throttler(*throttlers: Throttler) -> Throttler:
    """Keep a candidate when at least one throttler keeps it (logical OR)."""
    def combined(candidate: Candidate) -> bool:
        return any(throttler(candidate) for throttler in throttlers)

    combined.__name__ = "any_of_" + "_".join(getattr(t, "__name__", "throttler") for t in throttlers)
    return combined


def inverted(throttler: Throttler) -> Throttler:
    """Invert a throttler (keep what it would drop and vice versa)."""
    def negate(candidate: Candidate) -> bool:
        return not throttler(candidate)

    negate.__name__ = "not_" + getattr(throttler, "__name__", "throttler")
    return negate


def apply_throttlers(
    candidates: Iterable[Candidate],
    throttlers: Sequence[Throttler],
) -> Iterator[Candidate]:
    """Yield only the candidates that every throttler keeps."""
    for candidate in candidates:
        if all(throttler(candidate) for throttler in throttlers):
            yield candidate
