"""Candidate generation: mention spaces, matchers, throttlers, extraction.

Phase 2 of the pipeline (paper Sections 3.2 and 4.1).  Users define *matchers*
(what a mention of each entity type looks like) and optional *throttlers* (hard
filters over candidates).  The extractor traverses the data model of each
document, applies matchers to spans from a mention space, takes the
cross-product of mention sets, applies throttlers, and materializes the
surviving candidates.
"""

from repro.candidates.mentions import Candidate, Mention
from repro.candidates.ngrams import MentionNgrams
from repro.candidates.matchers import (
    DictionaryMatcher,
    IntersectionMatcher,
    LambdaFunctionMatcher,
    Matcher,
    NerMatcher,
    NumberMatcher,
    RegexMatcher,
    UnionMatcher,
)
from repro.candidates.throttlers import (
    Throttler,
    all_throttlers,
    any_throttler,
    inverted,
)
from repro.candidates.extractor import CandidateExtractor, ContextScope

__all__ = [
    "Candidate",
    "CandidateExtractor",
    "ContextScope",
    "DictionaryMatcher",
    "IntersectionMatcher",
    "LambdaFunctionMatcher",
    "Matcher",
    "Mention",
    "MentionNgrams",
    "NerMatcher",
    "NumberMatcher",
    "RegexMatcher",
    "Throttler",
    "UnionMatcher",
    "all_throttlers",
    "any_throttler",
    "inverted",
]
