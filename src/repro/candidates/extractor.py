"""Candidate extraction: matchers × mention space × throttlers → candidates.

The extractor implements Phase 2 of the pipeline (paper Sections 3.2, 4.1):

1. apply each entity type's matcher to every span of the mention space in each
   document, producing per-type mention sets;
2. form the cross-product of mention sets *within the configured context
   scope* (sentence, table, page or document — the knob of the Figure 6
   ablation);
3. apply throttlers to prune candidates;
4. deduplicate overlapping mentions (a longer mention subsumes the shorter
   mentions it contains, per entity type).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.candidates.matchers import Matcher, supports_text_memoization
from repro.candidates.mentions import Candidate, Mention
from repro.candidates.ngrams import MentionNgrams
from repro.candidates.throttlers import Throttler
from repro.data_model.context import Document, Span
from repro.data_model.index import (
    UNINDEXED,
    active_index,
    iter_scoped_combos,
    traversal_mode,
)
from repro.data_model.traversal import same_page, same_sentence, same_table


class ContextScope(Enum):
    """How far apart the mentions of one candidate may live (Figure 6)."""

    SENTENCE = "sentence"
    TABLE = "table"
    PAGE = "page"
    DOCUMENT = "document"

    def compatible(self, spans: Sequence[Span]) -> bool:
        """True when all spans are within this scope of each other."""
        if len(spans) < 2:
            return True
        if self is ContextScope.DOCUMENT:
            # Same document is guaranteed by construction; nothing to check.
            return True
        index = active_index(spans[0].sentence)
        if index is not None:
            # Indexed fast path: scope membership collapses to comparing
            # precomputed integer partition keys (sentence/table/page id).
            keys = []
            for span in spans:
                key = index.scope_key(self, span)
                if key is UNINDEXED:
                    keys = None
                    break
                keys.append(key)
            if keys is not None:
                first_key = keys[0]
                if first_key is None:
                    return False
                return all(key == first_key for key in keys[1:])
        first = spans[0]
        for other in spans[1:]:
            if self is ContextScope.SENTENCE:
                if not same_sentence(first, other):
                    return False
            elif self is ContextScope.TABLE:
                # Table scope means "drawn from the table's content": both
                # mentions must live in cells of the same table.  A mention in
                # a table caption is reachable only at page/document scope.
                if first.cell is None or other.cell is None or not same_table(first, other):
                    return False
            elif self is ContextScope.PAGE:
                if not same_page(first, other):
                    return False
            # DOCUMENT: same document is guaranteed by construction.
        return True


@dataclass
class ExtractionResult:
    """Output of candidate extraction plus bookkeeping statistics."""

    candidates: List[Candidate]
    mentions_by_type: Dict[str, int] = field(default_factory=dict)
    n_raw_candidates: int = 0
    n_throttled: int = 0

    @property
    def n_candidates(self) -> int:
        return len(self.candidates)

    @property
    def throttle_ratio(self) -> float:
        if self.n_raw_candidates == 0:
            return 0.0
        return self.n_throttled / self.n_raw_candidates

    @classmethod
    def merge(cls, results: Iterable["ExtractionResult"]) -> "ExtractionResult":
        """Concatenate per-document results (in order), aggregating statistics."""
        candidates: List[Candidate] = []
        mention_counts: Dict[str, int] = {}
        n_raw = 0
        n_throttled = 0
        for result in results:
            candidates.extend(result.candidates)
            for entity_type, count in result.mentions_by_type.items():
                mention_counts[entity_type] = mention_counts.get(entity_type, 0) + count
            n_raw += result.n_raw_candidates
            n_throttled += result.n_throttled
        return cls(
            candidates=candidates,
            mentions_by_type=mention_counts,
            n_raw_candidates=n_raw,
            n_throttled=n_throttled,
        )


class CandidateExtractor:
    """Extract relation candidates from parsed documents.

    Parameters
    ----------
    relation:
        Name of the relation the candidates belong to.
    matchers:
        Mapping entity type → :class:`Matcher`, in schema order (dict order is
        preserved and defines mention order inside each candidate).
    mention_space:
        The span enumeration strategy (defaults to unigram-to-trigram n-grams).
    throttlers:
        Optional hard filters over candidates.
    context_scope:
        Maximum context the mentions of one candidate may span (Figure 6 knob).
    use_index:
        Use the document's columnar index: mentions are partitioned by scope
        key *before* cross-products are formed (incompatible tuples are never
        generated), and throttlers/traversal helpers hit the index's memoized
        vocabularies.  ``False`` selects the legacy generate-then-filter path;
        both produce identical candidates and statistics.
    """

    def __init__(
        self,
        relation: str,
        matchers: Dict[str, Matcher],
        mention_space: Optional[MentionNgrams] = None,
        throttlers: Optional[Sequence[Throttler]] = None,
        context_scope: ContextScope = ContextScope.DOCUMENT,
        use_index: bool = True,
    ) -> None:
        if not matchers:
            raise ValueError("At least one entity-type matcher is required")
        self.relation = relation
        self.matchers = dict(matchers)
        self.mention_space = mention_space or MentionNgrams(n_max=3)
        self.throttlers: List[Throttler] = list(throttlers or [])
        self.context_scope = context_scope
        self.use_index = use_index

    # ---------------------------------------------------------------- mentions
    def extract_mentions(self, document: Document) -> Dict[str, List[Mention]]:
        """Apply each matcher to every span of the mention space.

        On the indexed path, text-only matchers (regex/dictionary/number)
        are evaluated once per *distinct span text* per document instead of
        once per span — the span text is the entire matcher input, so the
        verdict is memoizable by construction.
        """
        with traversal_mode(self.use_index):
            mentions: Dict[str, List[Mention]] = {t: [] for t in self.matchers}
            compiled = [
                (
                    entity_type,
                    matcher,
                    {} if self.use_index and supports_text_memoization(matcher) else None,
                )
                for entity_type, matcher in self.matchers.items()
            ]
            memoizing = any(memo is not None for _, _, memo in compiled)
            for span, text in self.mention_space.iter_spans_with_text(
                document, need_text=memoizing
            ):
                for entity_type, matcher, memo in compiled:
                    if memo is None:
                        hit = matcher.matches(span)
                    else:
                        hit = memo.get(text)
                        if hit is None:
                            hit = matcher.matches_text(text)
                            memo[text] = hit
                    if hit:
                        mentions[entity_type].append(Mention(entity_type, span))
            for entity_type in mentions:
                mentions[entity_type] = self._dedupe_overlapping(mentions[entity_type])
            return mentions

    @staticmethod
    def _dedupe_overlapping(mentions: List[Mention]) -> List[Mention]:
        """Keep only maximal mentions: drop a mention fully contained in a longer
        one from the same sentence (prevents double-counting 'SMBT' inside
        'SMBT3904' when both match)."""
        kept: List[Mention] = []
        by_sentence: Dict[int, List[Mention]] = {}
        for mention in mentions:
            by_sentence.setdefault(id(mention.span.sentence), []).append(mention)
        for sentence_mentions in by_sentence.values():
            sentence_mentions.sort(key=lambda m: (m.span.word_start, -(len(m.span))))
            for mention in sentence_mentions:
                contained = any(
                    other.span.word_start <= mention.span.word_start
                    and mention.span.word_end <= other.span.word_end
                    and other.span != mention.span
                    for other in sentence_mentions
                )
                if not contained:
                    kept.append(mention)
        return kept

    # -------------------------------------------------------------- candidates
    def _iter_compatible_combos(
        self, mention_lists: List[List[Mention]]
    ) -> Iterable[Tuple[Mention, ...]]:
        """Enumerate scope-compatible mention tuples in legacy product order.

        With the index, the non-leading mention lists are partitioned by scope
        key first so incompatible tuples are never formed; without it, the
        full cross-product is generated and filtered (legacy path).  Both
        yield the same tuples in the same order, so ``n_raw_candidates`` and
        ``n_throttled`` are exact either way: a pair that is never generated
        is a pair ``ContextScope.compatible`` would have rejected *before*
        the raw-candidate count, never a throttled one.
        """
        if self.use_index and mention_lists and all(mention_lists):
            index = active_index(mention_lists[0][0].span.sentence)
            if index is not None:
                try:
                    yield from iter_scoped_combos(
                        mention_lists, self.context_scope, index
                    )
                    return
                except LookupError:
                    pass  # a span outside the index: fall back to legacy
        for combo in itertools.product(*mention_lists):
            if self.context_scope.compatible([m.span for m in combo]):
                yield combo

    def extract_from_document(self, document: Document) -> ExtractionResult:
        """Extract candidates from one document."""
        with traversal_mode(self.use_index):
            mentions = self.extract_mentions(document)
            mention_counts = {t: len(ms) for t, ms in mentions.items()}

            candidates: List[Candidate] = []
            n_raw = 0
            n_throttled = 0
            entity_types = list(self.matchers)
            mention_lists = [mentions[t] for t in entity_types]
            if all(mention_lists):
                for combo in self._iter_compatible_combos(mention_lists):
                    n_raw += 1
                    candidate = Candidate(self.relation, combo)
                    if all(throttler(candidate) for throttler in self.throttlers):
                        candidates.append(candidate)
                    else:
                        n_throttled += 1

        return ExtractionResult(
            candidates=candidates,
            mentions_by_type=mention_counts,
            n_raw_candidates=n_raw,
            n_throttled=n_throttled,
        )

    def extract(self, documents: Iterable[Document]) -> ExtractionResult:
        """Extract candidates from a corpus, aggregating statistics."""
        merged = ExtractionResult.merge(
            self.extract_from_document(document) for document in documents
        )
        for entity_type in self.matchers:
            merged.mentions_by_type.setdefault(entity_type, 0)
        return merged
