"""Mentions and candidates.

Following the paper's terminology (Section 2.1): a *mention* is a span of text
that refers to an entity; a *candidate* is an n-ary tuple of mentions that is a
potential instance of a relation.  Candidates classified as true become
*relation mentions* and are written into the knowledge base.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.data_model.context import Document, Span


@dataclass(frozen=True)
class Mention:
    """A typed span of text: one argument of a potential relation."""

    entity_type: str
    span: Span

    @property
    def text(self) -> str:
        return self.span.text()

    @property
    def document(self) -> Optional[Document]:
        return self.span.document

    @property
    def stable_id(self) -> str:
        # Memoized like Span.stable_id: this is the feature-cache key, probed
        # once per (mention, modality) per candidate.
        cached = self.__dict__.get("_stable_id")
        if cached is None:
            cached = f"{self.entity_type}::{self.span.stable_id}"
            object.__setattr__(self, "_stable_id", cached)
        return cached

    def normalized(self) -> str:
        """Entity-level normalization used for KB deduplication and evaluation."""
        return " ".join(self.text.strip().lower().split())

    def __repr__(self) -> str:  # pragma: no cover
        return f"Mention({self.entity_type}={self.text!r})"


class Candidate:
    """An n-ary tuple of mentions — a potential relation mention.

    Candidates carry an integer id (assigned by the extractor), the relation
    name, and expose their mentions both positionally and by entity type.
    """

    _id_counter = itertools.count()

    def __init__(
        self,
        relation: str,
        mentions: Sequence[Mention],
        candidate_id: Optional[int] = None,
    ) -> None:
        if not mentions:
            raise ValueError("A candidate needs at least one mention")
        self.id = candidate_id if candidate_id is not None else next(Candidate._id_counter)
        self.relation = relation
        self.mentions: Tuple[Mention, ...] = tuple(mentions)
        self._by_type: Dict[str, Mention] = {m.entity_type: m for m in mentions}
        self._spans: Tuple[Span, ...] = tuple(m.span for m in self.mentions)

    # ---------------------------------------------------------------- access
    def __getitem__(self, key) -> Mention:
        if isinstance(key, int):
            return self.mentions[key]
        return self._by_type[key]

    def __getattr__(self, name: str) -> Mention:
        # Allow `cand.current`, `cand.part` style access used in the paper's
        # labeling-function examples.  Only called when normal lookup fails.
        by_type = self.__dict__.get("_by_type", {})
        if name in by_type:
            return by_type[name]
        raise AttributeError(name)

    @property
    def arity(self) -> int:
        return len(self.mentions)

    @property
    def document(self) -> Optional[Document]:
        return self.mentions[0].document

    @property
    def entity_tuple(self) -> Tuple[str, ...]:
        """Normalized entity strings, in schema order — the KB entry this candidate asserts."""
        return tuple(m.normalized() for m in self.mentions)

    @property
    def spans(self) -> Tuple[Span, ...]:
        return self._spans

    def get_mention(self, entity_type: str) -> Mention:
        return self._by_type[entity_type]

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(f"{m.entity_type}={m.text!r}" for m in self.mentions)
        return f"Candidate({self.relation}: {parts})"

    def __hash__(self) -> int:
        return hash((self.relation, self.spans))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Candidate):
            return NotImplemented
        return self.relation == other.relation and self.spans == other.spans
