"""Mention spaces: which spans of a document are considered as potential mentions.

``MentionNgrams`` enumerates all word n-grams up to a maximum length from every
sentence of a document (optionally restricted to tabular or non-tabular
sentences).  Matchers are applied to the spans this space yields.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.data_model.context import Document, Sentence, Span
from repro.data_model.index import active_document_index


class MentionNgrams:
    """Enumerate n-gram spans of a document.

    Parameters
    ----------
    n_max:
        Maximum n-gram length in words.
    n_min:
        Minimum n-gram length in words.
    tabular_only / non_tabular_only:
        Restrict the space to sentences inside / outside table cells.
    """

    def __init__(
        self,
        n_max: int = 3,
        n_min: int = 1,
        tabular_only: bool = False,
        non_tabular_only: bool = False,
    ) -> None:
        if n_min < 1 or n_max < n_min:
            raise ValueError(f"Invalid n-gram bounds: n_min={n_min}, n_max={n_max}")
        if tabular_only and non_tabular_only:
            raise ValueError("tabular_only and non_tabular_only are mutually exclusive")
        self.n_max = n_max
        self.n_min = n_min
        self.tabular_only = tabular_only
        self.non_tabular_only = non_tabular_only

    def _accept_sentence(self, sentence: Sentence) -> bool:
        if self.tabular_only and not sentence.is_tabular:
            return False
        if self.non_tabular_only and sentence.is_tabular:
            return False
        return True

    def iter_spans(self, document: Document) -> Iterator[Span]:
        """Yield all spans of the space in document order."""
        # The columnar index materializes the mention space once per document
        # (same spans, same order); the legacy walk regenerates it each call.
        index = active_document_index(document)
        if index is not None:
            spans, _ = index.ngram_spans(
                self.n_min, self.n_max, self.tabular_only, self.non_tabular_only
            )
            yield from spans
            return
        for sentence in document.sentences():
            if not self._accept_sentence(sentence):
                continue
            n_words = len(sentence.words)
            for length in range(self.n_min, self.n_max + 1):
                for start in range(0, n_words - length + 1):
                    yield Span(sentence, start, start + length)

    def iter_spans_with_text(
        self, document: Document, need_text: bool = True
    ) -> Iterator[Tuple[Span, Optional[str]]]:
        """Yield (span, text) pairs; text is ``None`` when not requested.

        On the indexed path the texts come pre-sliced from the materialized
        mention space; on the legacy path each is joined on demand.
        """
        index = active_document_index(document)
        if index is not None:
            spans, texts = index.ngram_spans(
                self.n_min, self.n_max, self.tabular_only, self.non_tabular_only
            )
            yield from zip(spans, texts)
            return
        for span in self.iter_spans(document):
            yield span, (span.text() if need_text else None)

    def count(self, document: Document) -> int:
        """Number of spans the space yields for ``document``."""
        return sum(1 for _ in self.iter_spans(document))
