"""Matchers: user-defined predicates that decide what a mention looks like.

"Matchers are how users specify what a mention looks like. In Fonduer, matchers
are Python functions that accept a span of text as input—which has a reference
to its data model—and output whether or not the match conditions are met.
Matchers range from simple regular expressions to complicated functions that
take into account signals across multiple modalities" (paper Example 3.3).

This module provides the matcher combinator library: regex, dictionary, NER,
numeric-range and lambda matchers, plus union/intersection composition.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Optional, Sequence

from repro.data_model.context import Span


class Matcher:
    """Base matcher: a callable Span → bool.

    Matchers whose verdict depends only on the span's *text* set
    ``text_only = True`` and implement :meth:`matches_text`; the candidate
    extractor memoizes their verdicts per distinct text, so a corpus full of
    repeated tokens ("V", "mA", header words) pays for each regex/dictionary
    probe once per document instead of once per span.
    """

    #: True when ``matches(span) == matches_text(span.text())`` for all spans.
    text_only = False

    def matches(self, span: Span) -> bool:
        raise NotImplementedError

    def matches_text(self, text: str) -> bool:
        """Text-only verdict; only valid when ``text_only`` is True."""
        raise NotImplementedError(f"{type(self).__name__} is not text-only")

    def __call__(self, span: Span) -> bool:
        return self.matches(span)

    # ------------------------------------------------------------ composition
    def __or__(self, other: "Matcher") -> "UnionMatcher":
        return UnionMatcher(self, other)

    def __and__(self, other: "Matcher") -> "IntersectionMatcher":
        return IntersectionMatcher(self, other)

    def filter_spans(self, spans: Iterable[Span]) -> Iterable[Span]:
        """Lazily filter a span stream to the ones this matcher accepts."""
        return (span for span in spans if self.matches(span))


class RegexMatcher(Matcher):
    """Match spans whose text matches a regular expression.

    ``full_match`` (default) anchors the pattern to the entire span text;
    otherwise a search anywhere in the text suffices.
    """

    text_only = True

    def __init__(self, pattern: str, ignore_case: bool = True, full_match: bool = True) -> None:
        flags = re.IGNORECASE if ignore_case else 0
        self._regex = re.compile(pattern, flags)
        self.full_match = full_match

    def matches(self, span: Span) -> bool:
        return self.matches_text(span.text())

    def matches_text(self, text: str) -> bool:
        if self.full_match:
            return self._regex.fullmatch(text) is not None
        return self._regex.search(text) is not None


class DictionaryMatcher(Matcher):
    """Match spans whose (optionally lowercased) text is in a dictionary."""

    text_only = True

    def __init__(self, dictionary: Iterable[str], ignore_case: bool = True) -> None:
        self.ignore_case = ignore_case
        self._dictionary = {
            (entry.lower() if ignore_case else entry).strip() for entry in dictionary
        }

    def matches(self, span: Span) -> bool:
        return self.matches_text(span.text())

    def matches_text(self, text: str) -> bool:
        text = text.strip()
        if self.ignore_case:
            text = text.lower()
        return text in self._dictionary

    def __len__(self) -> int:
        return len(self._dictionary)


class NerMatcher(Matcher):
    """Match single-type spans by the NER tags of their words.

    A span matches when every word carries the required entity tag (the usual
    case for single-word mentions such as numbers or part identifiers).
    """

    def __init__(self, entity_label: str) -> None:
        self.entity_label = entity_label

    def matches(self, span: Span) -> bool:
        tags = span.ner_tags
        return bool(tags) and all(tag == self.entity_label for tag in tags)


class NumberMatcher(Matcher):
    """Match numeric spans, optionally within an inclusive [minimum, maximum] range.

    Mirrors the paper's ``max_current_matcher`` example, which matches numbers
    between 100 and 995.
    """

    _NUMBER_RE = re.compile(r"^[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?$")

    text_only = True

    def __init__(self, minimum: Optional[float] = None, maximum: Optional[float] = None) -> None:
        self.minimum = minimum
        self.maximum = maximum

    def matches(self, span: Span) -> bool:
        return self.matches_text(span.text())

    def matches_text(self, text: str) -> bool:
        text = text.strip()
        if not self._NUMBER_RE.match(text):
            return False
        value = float(text)
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True


def _defining_class(cls: type, name: str) -> type:
    """The class in ``cls``'s MRO that defines attribute ``name``."""
    for base in cls.__mro__:
        if name in base.__dict__:
            return base
    raise AttributeError(name)  # pragma: no cover - both methods exist on Matcher


def supports_text_memoization(matcher: Matcher) -> bool:
    """True when memoizing ``matcher`` by span text is provably safe.

    ``text_only`` is a declared contract, but a subclass can inherit it while
    overriding only :meth:`Matcher.matches` (say, to add a tabular check) —
    memoizing by text would then silently bypass the override.  Safe cases:
    ``matches`` and ``matches_text`` are defined by the same class (whoever
    wrote one wrote the other), and combinators whose children are all
    recursively safe.
    """
    if not matcher.text_only:
        return False
    cls = type(matcher)
    if isinstance(matcher, (UnionMatcher, IntersectionMatcher)):
        combinator = UnionMatcher if isinstance(matcher, UnionMatcher) else IntersectionMatcher
        if cls.matches is not combinator.matches:
            return False
        return all(supports_text_memoization(child) for child in matcher.matchers)
    return _defining_class(cls, "matches") is _defining_class(cls, "matches_text")


class LambdaFunctionMatcher(Matcher):
    """Wrap an arbitrary user function Span → bool (multimodal matchers)."""

    def __init__(self, function: Callable[[Span], bool], name: str = "") -> None:
        self.function = function
        self.name = name or getattr(function, "__name__", "lambda_matcher")

    def matches(self, span: Span) -> bool:
        return bool(self.function(span))


class UnionMatcher(Matcher):
    """Match when any child matcher matches."""

    def __init__(self, *matchers: Matcher) -> None:
        if not matchers:
            raise ValueError("UnionMatcher needs at least one child")
        self.matchers: Sequence[Matcher] = matchers
        self.text_only = all(m.text_only for m in matchers)

    def matches(self, span: Span) -> bool:
        return any(matcher.matches(span) for matcher in self.matchers)

    def matches_text(self, text: str) -> bool:
        return any(matcher.matches_text(text) for matcher in self.matchers)


class IntersectionMatcher(Matcher):
    """Match only when every child matcher matches."""

    def __init__(self, *matchers: Matcher) -> None:
        if not matchers:
            raise ValueError("IntersectionMatcher needs at least one child")
        self.matchers: Sequence[Matcher] = matchers
        self.text_only = all(m.text_only for m in matchers)

    def matches(self, span: Span) -> bool:
        return all(matcher.matches(span) for matcher in self.matchers)

    def matches_text(self, text: str) -> bool:
        return all(matcher.matches_text(text) for matcher in self.matchers)
