"""Matchers: user-defined predicates that decide what a mention looks like.

"Matchers are how users specify what a mention looks like. In Fonduer, matchers
are Python functions that accept a span of text as input—which has a reference
to its data model—and output whether or not the match conditions are met.
Matchers range from simple regular expressions to complicated functions that
take into account signals across multiple modalities" (paper Example 3.3).

This module provides the matcher combinator library: regex, dictionary, NER,
numeric-range and lambda matchers, plus union/intersection composition.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Optional, Sequence

from repro.data_model.context import Span


class Matcher:
    """Base matcher: a callable Span → bool."""

    def matches(self, span: Span) -> bool:
        raise NotImplementedError

    def __call__(self, span: Span) -> bool:
        return self.matches(span)

    # ------------------------------------------------------------ composition
    def __or__(self, other: "Matcher") -> "UnionMatcher":
        return UnionMatcher(self, other)

    def __and__(self, other: "Matcher") -> "IntersectionMatcher":
        return IntersectionMatcher(self, other)

    def filter_spans(self, spans: Iterable[Span]) -> Iterable[Span]:
        """Lazily filter a span stream to the ones this matcher accepts."""
        return (span for span in spans if self.matches(span))


class RegexMatcher(Matcher):
    """Match spans whose text matches a regular expression.

    ``full_match`` (default) anchors the pattern to the entire span text;
    otherwise a search anywhere in the text suffices.
    """

    def __init__(self, pattern: str, ignore_case: bool = True, full_match: bool = True) -> None:
        flags = re.IGNORECASE if ignore_case else 0
        self._regex = re.compile(pattern, flags)
        self.full_match = full_match

    def matches(self, span: Span) -> bool:
        text = span.text()
        if self.full_match:
            return self._regex.fullmatch(text) is not None
        return self._regex.search(text) is not None


class DictionaryMatcher(Matcher):
    """Match spans whose (optionally lowercased) text is in a dictionary."""

    def __init__(self, dictionary: Iterable[str], ignore_case: bool = True) -> None:
        self.ignore_case = ignore_case
        self._dictionary = {
            (entry.lower() if ignore_case else entry).strip() for entry in dictionary
        }

    def matches(self, span: Span) -> bool:
        text = span.text().strip()
        if self.ignore_case:
            text = text.lower()
        return text in self._dictionary

    def __len__(self) -> int:
        return len(self._dictionary)


class NerMatcher(Matcher):
    """Match single-type spans by the NER tags of their words.

    A span matches when every word carries the required entity tag (the usual
    case for single-word mentions such as numbers or part identifiers).
    """

    def __init__(self, entity_label: str) -> None:
        self.entity_label = entity_label

    def matches(self, span: Span) -> bool:
        tags = span.ner_tags
        return bool(tags) and all(tag == self.entity_label for tag in tags)


class NumberMatcher(Matcher):
    """Match numeric spans, optionally within an inclusive [minimum, maximum] range.

    Mirrors the paper's ``max_current_matcher`` example, which matches numbers
    between 100 and 995.
    """

    _NUMBER_RE = re.compile(r"^[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?$")

    def __init__(self, minimum: Optional[float] = None, maximum: Optional[float] = None) -> None:
        self.minimum = minimum
        self.maximum = maximum

    def matches(self, span: Span) -> bool:
        text = span.text().strip()
        if not self._NUMBER_RE.match(text):
            return False
        value = float(text)
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True


class LambdaFunctionMatcher(Matcher):
    """Wrap an arbitrary user function Span → bool (multimodal matchers)."""

    def __init__(self, function: Callable[[Span], bool], name: str = "") -> None:
        self.function = function
        self.name = name or getattr(function, "__name__", "lambda_matcher")

    def matches(self, span: Span) -> bool:
        return bool(self.function(span))


class UnionMatcher(Matcher):
    """Match when any child matcher matches."""

    def __init__(self, *matchers: Matcher) -> None:
        if not matchers:
            raise ValueError("UnionMatcher needs at least one child")
        self.matchers: Sequence[Matcher] = matchers

    def matches(self, span: Span) -> bool:
        return any(matcher.matches(span) for matcher in self.matchers)


class IntersectionMatcher(Matcher):
    """Match only when every child matcher matches."""

    def __init__(self, *matchers: Matcher) -> None:
        if not matchers:
            raise ValueError("IntersectionMatcher needs at least one child")
        self.matchers: Sequence[Matcher] = matchers

    def matches(self, span: Span) -> bool:
        return all(matcher.matches(span) for matcher in self.matchers)
