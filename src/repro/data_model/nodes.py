"""Pre/post-order interval encoding of one document's context tree.

This is the XPath-accelerator representation (Grust's pre/post plane): every
context node gets its depth-first **pre-order** rank (its row in the table),
its **post-order** rank, its parent's pre rank and its depth, laid out as flat
numpy columns.  Because a node's descendants occupy a contiguous pre-order
range, the tree axes collapse to integer interval predicates:

* ``a`` is an ancestor-or-self of ``b``  ⇔  ``pre[a] <= pre[b] <= subtree_end[a]``
  (equivalently ``pre[a] <= pre[b] and post[a] >= post[b]``);
* the lowest common ancestor of ``a`` and ``b`` is found by walking
  ``parent_pre`` from ``min(a, b)`` until its interval covers ``max(a, b)`` —
  O(depth) instead of two full ancestor walks plus an ``id()`` set;
* "all sentences inside this table/section" is the pre range
  ``[pre[c], subtree_end[c]]`` — the same predicate the KB's ``within``
  filter evaluates over published tuple intervals.

Alongside the encoding the table carries the per-node HTML metadata the
structural features consume (``html_tag`` / ``class`` / ``id`` from the
node's ``attributes``), a ``kind`` code per context class, and the tabular
row/col/page columns, so root-to-leaf feature paths are memoized per *node*
(shared prefixes computed once) instead of re-walked per span.

The table is built once per document at parse time (cached on
``document._ntable``; :class:`~repro.data_model.index.DocumentIndex` embeds
it), persisted per shard as a ``nodes.npz`` slab by the streaming engine
(:meth:`to_arrays` / :meth:`from_arrays`), and — like every index structure —
is derived state: stripped from pickles, invalidated on tree mutation, and
excluded from document content fingerprints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data_model.context import Cell, Context, Document, Sentence

#: Array names of one document's node-table block, in slab layout order.
NODE_COLUMNS = (
    "post",
    "parent_pre",
    "depth",
    "kind",
    "tag_id",
    "subtree_end",
    "row_start",
    "row_end",
    "col_start",
    "col_end",
    "page",
)


class NodeTable:
    """Flat pre/post-order interval tables over one document's context tree.

    Rows are context nodes in depth-first pre-order (the ``Document`` root is
    row 0, matching ``[document] + list(document.descendants())``), so the
    pre rank *is* the row index and never needs its own column.
    """

    def __init__(self, document: Document) -> None:
        self.document = document
        self.stale = False

        contexts: List[Context] = []
        parent_pre: List[int] = []
        depth: List[int] = []
        post: List[int] = []
        subtree_end: List[int] = []

        # HTML metadata per node, read from ``attributes`` exactly like the
        # legacy ancestor walks (``str(attributes.get("html_tag", ""))``,
        # truthy ``html_attrs["class"]`` / ``["id"]``) so feature strings
        # derived from these columns are byte-identical.
        tags: List[str] = []
        classes: List[str] = []
        element_ids: List[str] = []
        kinds: List[int] = []

        tag_vocab: List[str] = []
        tag_ids: Dict[str, int] = {}
        kind_names: List[str] = []
        kind_ids: Dict[str, int] = {}

        def enter(ctx: Context, par: int, d: int) -> int:
            pre = len(contexts)
            contexts.append(ctx)
            parent_pre.append(par)
            depth.append(d)
            post.append(-1)
            subtree_end.append(-1)
            tag = str(ctx.attributes.get("html_tag", ""))
            tags.append(tag if tag else "")
            attrs = ctx.attributes.get("html_attrs", {})
            if isinstance(attrs, dict):
                classes.append(str(attrs["class"]) if attrs.get("class") else "")
                element_ids.append(str(attrs["id"]) if attrs.get("id") else "")
            else:
                classes.append("")
                element_ids.append("")
            kind = type(ctx).__name__.lower()
            code = kind_ids.get(kind)
            if code is None:
                code = kind_ids[kind] = len(kind_names)
                kind_names.append(kind)
            kinds.append(code)
            return pre

        post_counter = 0
        root_pre = enter(document, -1, 0)
        frames: List[Tuple[int, object]] = [(root_pre, iter(document.children))]
        while frames:
            pre, children = frames[-1]
            child = next(children, None)  # type: ignore[call-overload]
            if child is None:
                frames.pop()
                post[pre] = post_counter
                post_counter += 1
                # At exit the node's subtree is exactly the current tail of
                # the pre-order enumeration — its siblings come later.
                subtree_end[pre] = len(contexts) - 1
                continue
            child_pre = enter(child, pre, depth[pre] + 1)
            frames.append((child_pre, iter(child.children)))

        n = len(contexts)
        tag_column = np.full(n, -1, dtype=np.int64)
        row_start = np.full(n, -1, dtype=np.int64)
        row_end = np.full(n, -1, dtype=np.int64)
        col_start = np.full(n, -1, dtype=np.int64)
        col_end = np.full(n, -1, dtype=np.int64)
        page = np.full(n, -1, dtype=np.int64)
        for pre, ctx in enumerate(contexts):
            tag = tags[pre]
            if tag:
                tag_id = tag_ids.get(tag)
                if tag_id is None:
                    tag_id = tag_ids[tag] = len(tag_vocab)
                    tag_vocab.append(tag)
                tag_column[pre] = tag_id
            if isinstance(ctx, Cell):
                row_start[pre] = ctx.row_start
                row_end[pre] = ctx.row_end
                col_start[pre] = ctx.col_start
                col_end[pre] = ctx.col_end
            elif isinstance(ctx, Sentence):
                sent_page = ctx.page
                if sent_page is not None:
                    page[pre] = sent_page

        self.contexts = contexts
        self._pre_of: Dict[int, int] = {id(c): i for i, c in enumerate(contexts)}

        # Python-int copies drive the scalar hot paths (LCA walks, interval
        # probes); the numpy columns serve slab persistence and vectorized
        # scans.  Both views are immutable by convention.
        self._parent_list = parent_pre
        self._depth_list = depth
        self._end_list = subtree_end
        self._tag_list = tags
        self._cls_list = classes
        self._eid_list = element_ids
        self._kind_list = kinds

        self.post = np.asarray(post, dtype=np.int64)
        self.parent_pre = np.asarray(parent_pre, dtype=np.int64)
        self.depth = np.asarray(depth, dtype=np.int64)
        self.kind = np.asarray(kinds, dtype=np.int64)
        self.tag_id = tag_column
        self.subtree_end = np.asarray(subtree_end, dtype=np.int64)
        self.row_start = row_start
        self.row_end = row_end
        self.col_start = col_start
        self.col_end = col_end
        self.page = page
        self.tags = tag_vocab
        self.kind_names = kind_names

        #: Memoized root-first (tags, classes, ids) paths per node; shared
        #: prefixes are computed once because ``_path`` extends the parent's.
        self._paths: Dict[int, Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]] = {}

    # ------------------------------------------------------------------- ids
    def __len__(self) -> int:
        return len(self.contexts)

    def pre_of(self, ctx: Context) -> Optional[int]:
        """Pre-order rank of a context, or ``None`` when it is not covered."""
        return self._pre_of.get(id(ctx))

    def context_at(self, pre: int) -> Context:
        return self.contexts[pre]

    def tag_of(self, pre: int) -> str:
        return self._tag_list[pre]

    def kind_name(self, pre: int) -> str:
        return self.kind_names[self._kind_list[pre]]

    def interval(self, pre: int) -> Tuple[int, int]:
        """The contiguous pre range ``[pre, subtree_end]`` of a subtree."""
        return pre, self._end_list[pre]

    # ------------------------------------------------------------ predicates
    def is_ancestor(self, a: int, b: int, strict: bool = False) -> bool:
        """Whether node ``a`` is an ancestor(-or-self) of node ``b``: O(1)."""
        if strict and a == b:
            return False
        return a <= b <= self._end_list[a]

    def lca(self, a: int, b: int) -> int:
        """Pre rank of the lowest common ancestor of two nodes: O(depth).

        Within one document the walk always terminates — the root's interval
        covers every node.
        """
        if a > b:
            a, b = b, a
        ends = self._end_list
        parents = self._parent_list
        x = a
        while b > ends[x]:
            x = parents[x]
        return x

    # ---------------------------------------------------------- feature paths
    def _path(
        self, pre: int
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]:
        """Root-first (tags, classes, ids) of node ``pre``'s ancestors-or-self."""
        cached = self._paths.get(pre)
        if cached is None:
            parent = self._parent_list[pre]
            if parent < 0:
                base: Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]] = (
                    (), (), (),
                )
            else:
                base = self._path(parent)
            tag = self._tag_list[pre]
            cls = self._cls_list[pre]
            eid = self._eid_list[pre]
            cached = (
                base[0] + (tag,) if tag else base[0],
                base[1] + (cls,) if cls else base[1],
                base[2] + (eid,) if eid else base[2],
            )
            self._paths[pre] = cached
        return cached

    def ancestor_paths(
        self, pre: int
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]:
        """Root-first (tags, classes, ids) of node ``pre``'s strict ancestors."""
        parent = self._parent_list[pre]
        if parent < 0:
            return (), (), ()
        return self._path(parent)

    # ------------------------------------------------------------ persistence
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The slab block of this table: named numpy arrays, no objects."""
        arrays = {name: getattr(self, name) for name in NODE_COLUMNS}
        arrays["tag_vocab"] = np.asarray(self.tags, dtype=np.str_)
        arrays["kind_vocab"] = np.asarray(self.kind_names, dtype=np.str_)
        return arrays

    @staticmethod
    def from_arrays(arrays: Dict[str, np.ndarray]) -> Dict[str, object]:
        """Decode one document's slab block back to plain columns + vocabs.

        Returns a dict (not a live ``NodeTable`` — slabs carry no context
        objects): the :data:`NODE_COLUMNS` arrays plus ``tag_vocab`` /
        ``kind_vocab`` as Python string lists.
        """
        decoded: Dict[str, object] = {
            name: np.asarray(arrays[name], dtype=np.int64) for name in NODE_COLUMNS
        }
        decoded["tag_vocab"] = [str(t) for t in np.asarray(arrays["tag_vocab"])]
        decoded["kind_vocab"] = [str(k) for k in np.asarray(arrays["kind_vocab"])]
        return decoded


def node_table(document: Document) -> NodeTable:
    """The document's node table, building (and caching) it if needed.

    Deterministic with respect to the parsed tree and independent of the
    :func:`~repro.data_model.index.traversal_mode` thread-local — candidate
    span intervals recorded for the KB must be byte-identical across both
    ``use_index`` settings.
    """
    table = document.__dict__.get("_ntable")
    if table is not None and not table.stale:
        return table
    table = NodeTable(document)
    document._ntable = table
    return table


def span_interval(spans) -> Tuple[int, int]:
    """``(lo, hi)`` pre-rank interval covering a tuple's mention sentences.

    ``lo``/``hi`` are the min/max pre ranks of the spans' sentences, so the
    tuple lies inside container ``c`` iff ``pre[c] <= lo and hi <=
    subtree_end[c]`` — exact, because sentences are leaves of the interval
    encoding.  Returns ``(-1, -1)`` for an empty span list or spans from
    detached sentences (never matched by a ``within`` filter).
    """
    lo = hi = -1
    for span in spans:
        document = span.sentence.document
        if document is None:
            return -1, -1
        pre = node_table(document).pre_of(span.sentence)
        if pre is None:
            return -1, -1
        if lo < 0 or pre < lo:
            lo = pre
        if pre > hi:
            hi = pre
    return lo, hi
