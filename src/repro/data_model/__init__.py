"""Fonduer's multimodal data model.

The data model is a directed acyclic graph (DAG) of *contexts* that mirrors the
intuitive hierarchy of document components (paper Section 3.1, Figure 3)::

    Document
      └── Section
            ├── Text ── Paragraph ── Sentence
            ├── Table ── Caption / Row / Column / Cell ── Paragraph ── Sentence
            └── Figure ── Caption

Every :class:`Sentence` carries per-word attributes from all four modalities:

* textual  — words, lemmas, POS tags, NER tags, dependency-ish heads
* structural — HTML tag, attributes, ancestor tag/class/id paths
* tabular  — row/column indices, spans, header flags
* visual   — page number and word bounding boxes

A :class:`Span` is a contiguous slice of words inside one sentence and is the
unit on which mentions, matchers and labeling functions operate.
"""

from repro.data_model.context import (
    Caption,
    Cell,
    Column,
    Context,
    Document,
    Figure,
    Paragraph,
    Row,
    Section,
    Sentence,
    Span,
    Table,
    Text,
)
from repro.data_model.visual import BoundingBox, PageLayout
from repro.data_model.traversal import (
    aligned_ngrams,
    cell_ngrams,
    column_header_ngrams,
    column_ngrams,
    get_ancestor_tags,
    get_cell,
    get_column_header,
    get_page,
    get_row_header,
    get_table,
    header_ngrams,
    is_horizontally_aligned,
    is_vertically_aligned,
    lowest_common_ancestor,
    lowest_common_ancestor_depth,
    neighbor_sentence_ngrams,
    page_ngrams,
    row_header_ngrams,
    row_ngrams,
    same_cell,
    same_column,
    same_document,
    same_page,
    same_row,
    same_sentence,
    same_table,
    sentence_ngrams,
)

__all__ = [
    "BoundingBox",
    "Caption",
    "Cell",
    "Column",
    "Context",
    "Document",
    "Figure",
    "PageLayout",
    "Paragraph",
    "Row",
    "Section",
    "Sentence",
    "Span",
    "Table",
    "Text",
    "aligned_ngrams",
    "cell_ngrams",
    "column_header_ngrams",
    "column_ngrams",
    "get_ancestor_tags",
    "get_cell",
    "get_column_header",
    "get_page",
    "get_row_header",
    "get_table",
    "header_ngrams",
    "is_horizontally_aligned",
    "is_vertically_aligned",
    "lowest_common_ancestor",
    "lowest_common_ancestor_depth",
    "neighbor_sentence_ngrams",
    "page_ngrams",
    "row_header_ngrams",
    "row_ngrams",
    "same_cell",
    "same_column",
    "same_document",
    "same_page",
    "same_row",
    "same_sentence",
    "same_table",
    "sentence_ngrams",
]
