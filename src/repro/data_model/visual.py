"""Visual attributes of the data model: bounding boxes and page layout.

The paper records, for each word in a sentence, the page it appears on and its
bounding box in the visual rendering of the document (Section 3.1).  The layout
engine in :mod:`repro.parsing.pdf_layout` produces these attributes; the classes
here are the value types they are stored in, plus the geometric predicates used
by visual features and labeling functions (e.g., vertical alignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box of a word on a rendered page.

    Coordinates follow the usual PDF-viewer convention: the origin is the top
    left of the page, ``x`` grows to the right and ``y`` grows downward.  All
    units are points (1/72 inch), although nothing in the library depends on
    the physical unit.
    """

    page: int
    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(
                f"Degenerate bounding box: ({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def horizontal_overlap(self, other: "BoundingBox") -> float:
        """Length of the overlap of the two boxes' x-projections."""
        return max(0.0, min(self.x1, other.x1) - max(self.x0, other.x0))

    def vertical_overlap(self, other: "BoundingBox") -> float:
        """Length of the overlap of the two boxes' y-projections."""
        return max(0.0, min(self.y1, other.y1) - max(self.y0, other.y0))

    def is_horizontally_aligned(self, other: "BoundingBox", tolerance: float = 2.0) -> bool:
        """True when the boxes sit on the same visual line of the same page.

        Two boxes are horizontally aligned (i.e., y-aligned) when their vertical
        centers are within ``tolerance`` points of each other.
        """
        if self.page != other.page:
            return False
        return abs(self.center[1] - other.center[1]) <= tolerance

    def is_vertically_aligned(self, other: "BoundingBox", tolerance: float = 2.0) -> bool:
        """True when the boxes occupy the same visual column of the same page."""
        if self.page != other.page:
            return False
        return abs(self.center[0] - other.center[0]) <= tolerance

    def is_left_aligned(self, other: "BoundingBox", tolerance: float = 2.0) -> bool:
        return self.page == other.page and abs(self.x0 - other.x0) <= tolerance

    def is_right_aligned(self, other: "BoundingBox", tolerance: float = 2.0) -> bool:
        return self.page == other.page and abs(self.x1 - other.x1) <= tolerance

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes.  Requires the same page."""
        if self.page != other.page:
            raise ValueError("Cannot union bounding boxes on different pages")
        return BoundingBox(
            page=self.page,
            x0=min(self.x0, other.x0),
            y0=min(self.y0, other.y0),
            x1=max(self.x1, other.x1),
            y1=max(self.y1, other.y1),
        )

    def to_dict(self) -> dict:
        return {
            "page": self.page,
            "x0": self.x0,
            "y0": self.y0,
            "x1": self.x1,
            "y1": self.y1,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BoundingBox":
        return cls(
            page=data["page"],
            x0=data["x0"],
            y0=data["y0"],
            x1=data["x1"],
            y1=data["y1"],
        )


def merge_boxes(boxes: Iterable[BoundingBox]) -> Optional[BoundingBox]:
    """Union a collection of boxes on the same page; ``None`` for an empty input.

    Boxes from different pages are reduced to the ones on the first page seen,
    mirroring how multi-line mentions are visualized by the original system.
    """
    boxes = list(boxes)
    if not boxes:
        return None
    first_page = boxes[0].page
    merged = boxes[0]
    for box in boxes[1:]:
        if box.page != first_page:
            continue
        merged = merged.union(box)
    return merged


@dataclass
class PageLayout:
    """Geometry of one rendered page: its size and the word boxes placed on it."""

    page: int
    width: float = 612.0
    height: float = 792.0
    word_boxes: List[BoundingBox] = field(default_factory=list)

    def add_box(self, box: BoundingBox) -> None:
        if box.page != self.page:
            raise ValueError(f"Box page {box.page} does not match layout page {self.page}")
        self.word_boxes.append(box)

    @property
    def n_words(self) -> int:
        return len(self.word_boxes)

    def boxes_in_band(self, y0: float, y1: float) -> List[BoundingBox]:
        """All word boxes whose vertical center lies in the band [y0, y1]."""
        return [b for b in self.word_boxes if y0 <= b.center[1] <= y1]
