"""Data-model traversal helpers used by features and labeling functions.

These utilities correspond to the helpers that Fonduer exposes to users for
writing matchers, throttlers and labeling functions (paper Examples 3.3-3.5),
e.g. ``row_ngrams``, ``header_ngrams``, ``aligned_ngrams`` and alignment
predicates.  They all take :class:`~repro.data_model.context.Span` objects.

Each n-gram helper has two implementations with byte-identical output:

* the **indexed fast path** — an O(result) lookup against the document's
  columnar :class:`~repro.data_model.index.DocumentIndex` (memoized n-gram
  vocabularies, precomputed row/column membership, vectorized visual
  alignment); taken whenever indexing is enabled
  (:func:`~repro.data_model.index.traversal_mode`) and the span's document
  has been parsed;
* the **legacy object walk** — the original implementation that re-walks the
  context DAG / visual layout on every call; kept as the reference fallback
  and selectable via ``FonduerConfig(use_index=False)``.

The equivalence suite in ``tests/`` asserts both paths agree on every helper.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.data_model.context import (
    Cell,
    Context,
    Document,
    Sentence,
    Span,
    Table,
)
from repro.data_model.index import active_index, indexing_enabled


# --------------------------------------------------------------------- ngrams
def _ngrams_from_words(words: Sequence[str], n_max: int, lower: bool) -> Iterator[str]:
    tokens = [w.lower() for w in words] if lower else list(words)
    for n in range(1, n_max + 1):
        for i in range(0, len(tokens) - n + 1):
            yield " ".join(tokens[i : i + n])


def _indexed(span: Span):
    """(index, sid) for the span's sentence, or (None, None) on the legacy path."""
    if not indexing_enabled():
        return None, None
    # Hot path: index and sid ride on the sentence stash (one dict probe each).
    state = span.sentence.__dict__
    index = state.get("_dindex")
    if index is not None and not index.stale:
        return index, state["_dindex_sid"]
    index = active_index(span.sentence)
    if index is None:
        return None, None
    sid = index.sentence_id(span.sentence)
    if sid is None:
        return None, None
    return index, sid


def sentence_ngrams(span: Span, n_max: int = 1, lower: bool = True) -> List[str]:
    """N-grams of the sentence containing the span (the span's own words included)."""
    index, sid = _indexed(span)
    if index is not None:
        return list(index.sentence_ngrams(sid, n_max, lower))
    return list(_ngrams_from_words(span.sentence.words, n_max, lower))


def neighbor_sentence_ngrams(span: Span, window: int = 1, n_max: int = 1, lower: bool = True) -> List[str]:
    """N-grams from sentences within ``window`` positions of the span's sentence,
    inside the same paragraph/cell/text parent."""
    index, sid = _indexed(span)
    if index is not None:
        return index.neighbor_sentence_ngrams(sid, window, n_max, lower)
    sentence = span.sentence
    parent = sentence.parent
    if parent is None:
        return []
    siblings = [c for c in parent.children if isinstance(c, Sentence)]
    result: List[str] = []
    for sibling in siblings:
        if sibling is sentence:
            continue
        if abs(sibling.position - sentence.position) <= window:
            result.extend(_ngrams_from_words(sibling.words, n_max, lower))
    return result


def cell_ngrams(span: Span, n_max: int = 1, lower: bool = True) -> List[str]:
    """N-grams of all sentences in the same cell as the span (excluding the span's words)."""
    index, sid = _indexed(span)
    if index is not None:
        cid = int(index.sent_cell[sid])
        if cid < 0:
            return []
        span_text = set(w.lower() for w in span.words) if lower else set(span.words)
        return [g for g in index.cell_all_ngrams(cid, n_max, lower) if g not in span_text]
    cell = span.cell
    if cell is None:
        return []
    result: List[str] = []
    span_text = set(w.lower() for w in span.words) if lower else set(span.words)
    for sentence in cell.sentences():
        for gram in _ngrams_from_words(sentence.words, n_max, lower):
            if gram not in span_text:
                result.append(gram)
    return result


def row_ngrams(span: Span, n_max: int = 1, lower: bool = True) -> List[str]:
    """N-grams from all cells sharing a row with the span's cell."""
    index, sid = _indexed(span)
    if index is not None:
        cid = int(index.sent_cell[sid])
        tid = int(index.sent_table[sid])
        if cid < 0 or tid < 0:
            return []
        return list(index.row_ngrams(cid, tid, n_max, lower))
    cell = span.cell
    table = span.table
    if cell is None or table is None:
        return []
    result: List[str] = []
    for row_index in range(cell.row_start, cell.row_end + 1):
        for other in table.row_cells(row_index):
            if other is cell:
                continue
            for sentence in other.sentences():
                result.extend(_ngrams_from_words(sentence.words, n_max, lower))
    return result


def column_ngrams(span: Span, n_max: int = 1, lower: bool = True) -> List[str]:
    """N-grams from all cells sharing a column with the span's cell."""
    index, sid = _indexed(span)
    if index is not None:
        cid = int(index.sent_cell[sid])
        tid = int(index.sent_table[sid])
        if cid < 0 or tid < 0:
            return []
        return list(index.column_ngrams(cid, tid, n_max, lower))
    cell = span.cell
    table = span.table
    if cell is None or table is None:
        return []
    result: List[str] = []
    for col_index in range(cell.col_start, cell.col_end + 1):
        for other in table.column_cells(col_index):
            if other is cell:
                continue
            for sentence in other.sentences():
                result.extend(_ngrams_from_words(sentence.words, n_max, lower))
    return result


def row_header_ngrams(span: Span, n_max: int = 1, lower: bool = True) -> List[str]:
    """N-grams from the first cell of the span's row (the row header)."""
    index, sid = _indexed(span)
    if index is not None:
        cid = int(index.sent_cell[sid])
        tid = int(index.sent_table[sid])
        if cid < 0 or tid < 0:
            return []
        return list(index.row_header_ngrams(cid, tid, n_max, lower))
    cell = span.cell
    table = span.table
    if cell is None or table is None:
        return []
    header = table.cell_at(cell.row_start, 0)
    if header is None or header is cell:
        return []
    result: List[str] = []
    for sentence in header.sentences():
        result.extend(_ngrams_from_words(sentence.words, n_max, lower))
    return result


def column_header_ngrams(span: Span, n_max: int = 1, lower: bool = True) -> List[str]:
    """N-grams from the first cell of the span's column (the column header)."""
    index, sid = _indexed(span)
    if index is not None:
        cid = int(index.sent_cell[sid])
        tid = int(index.sent_table[sid])
        if cid < 0 or tid < 0:
            return []
        return list(index.column_header_ngrams(cid, tid, n_max, lower))
    cell = span.cell
    table = span.table
    if cell is None or table is None:
        return []
    header = table.cell_at(0, cell.col_start)
    if header is None or header is cell:
        return []
    result: List[str] = []
    for sentence in header.sentences():
        result.extend(_ngrams_from_words(sentence.words, n_max, lower))
    return result


def header_ngrams(span: Span, n_max: int = 1, lower: bool = True) -> List[str]:
    """Union of row-header and column-header n-grams (paper Example 3.4)."""
    return row_header_ngrams(span, n_max, lower) + column_header_ngrams(span, n_max, lower)


def page_ngrams(span: Span, n_max: int = 1, lower: bool = True) -> List[str]:
    """N-grams from all sentences on the same rendered page as the span."""
    index, sid = _indexed(span)
    if index is not None:
        page = index.span_page(sid, span)
        if page < 0:
            return []
        return index.page_ngrams(page, sid, n_max, lower)
    page = span.page
    document = span.document
    if page is None or document is None:
        return []
    result: List[str] = []
    for sentence in document.sentences():
        if sentence is span.sentence:
            continue
        if sentence.page == page:
            result.extend(_ngrams_from_words(sentence.words, n_max, lower))
    return result


def aligned_ngrams(
    span: Span,
    n_max: int = 1,
    lower: bool = True,
    axis: str = "both",
    tolerance: float = 4.0,
) -> List[str]:
    """N-grams of words visually aligned with the span (same line or same column).

    ``axis`` is ``"horizontal"`` (same visual line), ``"vertical"`` (same visual
    column) or ``"both"``.
    """
    index, sid = _indexed(span)
    if index is not None:
        return list(
            index.aligned_ngrams(
                sid, span.word_start, span.word_end, n_max, lower, axis, tolerance
            )
        )
    box = span.bounding_box
    document = span.document
    if box is None or document is None:
        return []
    result: List[str] = []
    for sentence in document.sentences():
        if sentence is span.sentence:
            continue
        aligned_words: List[str] = []
        for word, word_box in zip(sentence.words, sentence.word_boxes):
            if word_box is None:
                continue
            horizontal = box.is_horizontally_aligned(word_box, tolerance)
            vertical = box.is_vertically_aligned(word_box, tolerance)
            if (
                (axis == "horizontal" and horizontal)
                or (axis == "vertical" and vertical)
                or (axis == "both" and (horizontal or vertical))
            ):
                aligned_words.append(word)
        result.extend(_ngrams_from_words(aligned_words, n_max, lower))
    return result


# ----------------------------------------------------------------- locators
def get_cell(span: Span) -> Optional[Cell]:
    index, sid = _indexed(span)
    if index is not None:
        return index.cell_of_sentence(sid)
    return span.cell


def get_table(span: Span) -> Optional[Table]:
    index, sid = _indexed(span)
    if index is not None:
        tid = int(index.sent_table[sid])
        return index.tables[tid] if tid >= 0 else None
    return span.table


def get_page(span: Span) -> Optional[int]:
    index, sid = _indexed(span)
    if index is not None:
        page = index.span_page(sid, span)
        return page if page >= 0 else None
    return span.page


def get_bounding_box(span: Span):
    """The span's merged bounding box (index-memoized when available)."""
    index, sid = _indexed(span)
    if index is not None:
        return index.span_box(sid, span.word_start, span.word_end)
    return span.bounding_box


def get_row_header(span: Span) -> Optional[Cell]:
    index, sid = _indexed(span)
    if index is not None:
        cid = int(index.sent_cell[sid])
        tid = int(index.sent_table[sid])
        if cid < 0 or tid < 0:
            return None
        header = index.header_cell(cid, tid, "row")
        return index.cells[header] if header is not None else None
    cell, table = span.cell, span.table
    if cell is None or table is None:
        return None
    return table.cell_at(cell.row_start, 0)


def get_column_header(span: Span) -> Optional[Cell]:
    index, sid = _indexed(span)
    if index is not None:
        cid = int(index.sent_cell[sid])
        tid = int(index.sent_table[sid])
        if cid < 0 or tid < 0:
            return None
        header = index.header_cell(cid, tid, "column")
        return index.cells[header] if header is not None else None
    cell, table = span.cell, span.table
    if cell is None or table is None:
        return None
    return table.cell_at(0, cell.col_start)


def get_ancestor_tags(span: Span) -> List[str]:
    """HTML tags of the span's sentence ancestors, root first."""
    index, sid = _indexed(span)
    if index is not None:
        # Root-first tag paths are memoized per node in the interval table
        # (shared prefixes computed once), so every span of a sentence — and
        # every sentence sharing ancestors — reuses one walk.
        tags = list(index.nodes.ancestor_paths(int(index.sent_pre[sid]))[0])
        if span.sentence.html_tag:
            tags.append(span.sentence.html_tag)
        return tags
    tags = []
    for ancestor in reversed(span.sentence.ancestors()):
        tag = ancestor.attributes.get("html_tag")
        if tag:
            tags.append(str(tag))
    if span.sentence.html_tag:
        tags.append(span.sentence.html_tag)
    return tags


# --------------------------------------------------------------- predicates
def same_document(a: Span, b: Span) -> bool:
    return a.document is b.document and a.document is not None


def same_sentence(a: Span, b: Span) -> bool:
    return a.sentence is b.sentence


def same_cell(a: Span, b: Span) -> bool:
    cell_a = get_cell(a)
    return cell_a is not None and cell_a is get_cell(b)


def same_table(a: Span, b: Span) -> bool:
    table_a = get_table(a)
    return table_a is not None and table_a is get_table(b)


def same_row(a: Span, b: Span) -> bool:
    if not same_table(a, b):
        return False
    cell_a, cell_b = get_cell(a), get_cell(b)
    if cell_a is None or cell_b is None:
        return False
    return not (cell_a.row_end < cell_b.row_start or cell_b.row_end < cell_a.row_start)


def same_column(a: Span, b: Span) -> bool:
    if not same_table(a, b):
        return False
    cell_a, cell_b = get_cell(a), get_cell(b)
    if cell_a is None or cell_b is None:
        return False
    return not (cell_a.col_end < cell_b.col_start or cell_b.col_end < cell_a.col_start)


def same_page(a: Span, b: Span) -> bool:
    page_a = get_page(a)
    return page_a is not None and page_a == get_page(b)


def is_horizontally_aligned(a: Span, b: Span, tolerance: float = 4.0) -> bool:
    """True when the two spans sit on the same visual line (y-aligned)."""
    box_a, box_b = a.bounding_box, b.bounding_box
    if box_a is None or box_b is None:
        return False
    return box_a.is_horizontally_aligned(box_b, tolerance)


def is_vertically_aligned(a: Span, b: Span, tolerance: float = 4.0) -> bool:
    """True when the two spans occupy the same visual column (x-aligned)."""
    box_a, box_b = a.bounding_box, b.bounding_box
    if box_a is None or box_b is None:
        return False
    return box_a.is_vertically_aligned(box_b, tolerance)


def _interval_pair(a: Span, b: Span):
    """(index, pre_a, pre_b) when both spans live in one indexed document.

    The interval encoding is per document; spans from different documents
    (or detached/unindexed sentences) fall back to the legacy chain walk,
    which preserves the ``None`` / sentinel-99 no-common-ancestor answers.
    """
    index_a, sid_a = _indexed(a)
    if index_a is None:
        return None, -1, -1
    index_b, sid_b = _indexed(b)
    if index_b is not index_a:
        return None, -1, -1
    return index_a, int(index_a.sent_pre[sid_a]), int(index_a.sent_pre[sid_b])


def lowest_common_ancestor(a: Span, b: Span) -> Optional[Context]:
    """The deepest context containing both spans' sentences, or ``None``."""
    index, pre_a, pre_b = _interval_pair(a, b)
    if index is not None:
        # Two pre-rank lookups + an O(depth) parent walk on the interval
        # table; within one document an LCA always exists (the root).
        return index.nodes.context_at(index.nodes.lca(pre_a, pre_b))
    ancestors_a = [a.sentence] + a.sentence.ancestors()
    ancestors_b = set(id(ctx) for ctx in [b.sentence] + b.sentence.ancestors())
    for context in ancestors_a:
        if id(context) in ancestors_b:
            return context
    return None


def lowest_common_ancestor_depth(a: Span, b: Span) -> int:
    """Minimum number of hops from either span's sentence up to their LCA.

    The paper uses this as a structural feature ("LOWEST_ANCESTOR_DEPTH"): it is
    small when two mentions are structurally close even if visually far apart.
    Returns a large sentinel (99) when the spans share no ancestor.
    """
    index, pre_a, pre_b = _interval_pair(a, b)
    if index is not None:
        nodes = index.nodes
        lca_pre = nodes.lca(pre_a, pre_b)
        return int(min(nodes.depth[pre_a], nodes.depth[pre_b]) - nodes.depth[lca_pre])
    lca = lowest_common_ancestor(a, b)
    if lca is None:
        return 99
    depth_lca = lca.depth() if not isinstance(lca, Document) else 0

    def hops(span: Span) -> int:
        return span.sentence.depth() - depth_lca

    return min(hops(a), hops(b))


def manhattan_distance(a: Span, b: Span) -> Optional[int]:
    """Tabular Manhattan distance between two spans' cells (None if either is not tabular)."""
    cell_a, cell_b = get_cell(a), get_cell(b)
    if cell_a is None or cell_b is None:
        return None
    return abs(cell_a.row_start - cell_b.row_start) + abs(cell_a.col_start - cell_b.col_start)
