"""Context hierarchy of Fonduer's data model.

Each class in this module is a node type in the data-model DAG of the paper
(Section 3.1, Figure 3).  Nodes know their parent, their children, and the
modality attributes that featurization (:mod:`repro.features`) and labeling
functions traverse.

The hierarchy is::

    Document
      └── Section
            ├── Text   ── Paragraph ── Sentence
            ├── Table  ── Caption, Row, Column, Cell ── Paragraph ── Sentence
            └── Figure ── Caption ── Paragraph ── Sentence

``Span`` is not a context: it is a contiguous slice of words within a single
Sentence, and is the object matchers and mention extraction operate on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.data_model.visual import BoundingBox, merge_boxes


class Context:
    """Base class for every node of the data-model DAG.

    A context has a stable ``stable_id`` (unique within the corpus), a parent
    pointer, an ordered list of children, and free-form ``attributes`` holding
    modality metadata (HTML tag, font, etc.).
    """

    _id_counter = itertools.count()

    def __init__(
        self,
        name: str = "",
        parent: Optional["Context"] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.id = next(Context._id_counter)
        self.name = name
        self.parent = parent
        self.children: List[Context] = []
        self.attributes: Dict[str, object] = dict(attributes or {})
        if parent is not None:
            parent.add_child(self)

    # ------------------------------------------------------------------ tree
    def add_child(self, child: "Context") -> None:
        child.parent = self
        self.children.append(child)
        self._invalidate_index()

    def _invalidate_index(self) -> None:
        """Mark the owning document's columnar index stale (O(1)).

        Called by every mutator that changes what the index precomputes
        (tree growth, per-word annotation setters); the next indexed lookup
        rebuilds.  See :mod:`repro.data_model.index`.
        """
        document = self.document
        if document is not None:
            index = document.__dict__.pop("_index", None)
            if index is not None:
                index.stale = True
            ntable = document.__dict__.pop("_ntable", None)
            if ntable is not None:
                ntable.stale = True

    def __getstate__(self):
        """Strip the columnar-index caches from pickles and deep copies.

        ``Document._index`` / ``Sentence._dindex`` hold identity-keyed maps
        that would be silently wrong after a pickle round-trip (``id()`` keys
        do not survive); the index is derived state and is rebuilt lazily on
        first use in the receiving process.
        """
        state = self.__dict__.copy()
        state.pop("_index", None)
        state.pop("_ntable", None)
        state.pop("_dindex", None)
        state.pop("_dindex_sid", None)
        return state

    def ancestors(self) -> List["Context"]:
        """All ancestors from the immediate parent up to (and including) the root."""
        result = []
        node = self.parent
        while node is not None:
            result.append(node)
            node = node.parent
        return result

    def depth(self) -> int:
        """Distance from the root of the DAG (the Document has depth 0)."""
        return len(self.ancestors())

    @property
    def document(self) -> Optional["Document"]:
        """The Document at the root of this context's DAG (or itself)."""
        node: Optional[Context] = self
        while node is not None and not isinstance(node, Document):
            node = node.parent
        return node  # type: ignore[return-value]

    def descendants(self) -> Iterator["Context"]:
        """All descendant contexts in depth-first pre-order."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def sentences(self) -> Iterator["Sentence"]:
        """All Sentences contained (transitively) in this context."""
        if isinstance(self, Sentence):
            yield self
            return
        for node in self.descendants():
            if isinstance(node, Sentence):
                yield node

    @property
    def stable_id(self) -> str:
        doc = self.document
        if doc is None:
            doc_key = "<detached>"
        else:
            # Corpus-relative path when available, falling back to the name.
            # Two documents may legitimately share a *name* (e.g. "datasheet"
            # in two vendor directories); their paths are unique within a
            # corpus.  Context ids come from a process-local counter, so after
            # a shard round-trip (pickle in one process, unpickle in another,
            # or two fresh worker processes) ids overlap across documents and
            # the document key is the only corpus-unique component.
            doc_key = getattr(doc, "path", "") or doc.name
        return f"{doc_key}::{type(self).__name__.lower()}:{self.id}"

    # ------------------------------------------------------------------ misc
    def text(self) -> str:
        """Concatenated text of all sentences under this context."""
        return " ".join(s.text() for s in self.sentences())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(id={self.id}, name={self.name!r})"


class Document(Context):
    """Root of the data model for one input document."""

    def __init__(self, name: str, attributes: Optional[Dict[str, object]] = None) -> None:
        super().__init__(name=name, parent=None, attributes=attributes)
        self.format: str = str(self.attributes.get("format", "html"))
        #: Corpus-relative path of the source file.  Set by the corpus parser
        #: (from :attr:`RawDocument.path`); disambiguates same-name documents
        #: in ``stable_id`` and content fingerprints.  Empty for documents
        #: constructed directly (stable ids then fall back to the name).
        self.path: str = str(self.attributes.get("path", ""))

    @property
    def sections(self) -> List["Section"]:
        return [c for c in self.children if isinstance(c, Section)]

    def tables(self) -> List["Table"]:
        return [c for c in self.descendants() if isinstance(c, Table)]

    def figures(self) -> List["Figure"]:
        return [c for c in self.descendants() if isinstance(c, Figure)]

    def texts(self) -> List["Text"]:
        return [c for c in self.descendants() if isinstance(c, Text)]

    def n_pages(self) -> int:
        pages = {
            box.page
            for sentence in self.sentences()
            for box in sentence.word_boxes
            if box is not None
        }
        return max(pages) + 1 if pages else 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Document(name={self.name!r}, sections={len(self.sections)})"


class Section(Context):
    """A top-level division of a Document."""

    def __init__(
        self,
        parent: Document,
        name: str = "",
        position: int = 0,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(name=name, parent=parent, attributes=attributes)
        self.position = position


class Text(Context):
    """Free-flowing (non-tabular) textual content, e.g. headers and body text."""

    def __init__(
        self,
        parent: Context,
        name: str = "",
        position: int = 0,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(name=name, parent=parent, attributes=attributes)
        self.position = position

    @property
    def paragraphs(self) -> List["Paragraph"]:
        return [c for c in self.children if isinstance(c, Paragraph)]


class Figure(Context):
    """An image or chart; carries a URL/location attribute and optionally a caption."""

    def __init__(
        self,
        parent: Context,
        name: str = "",
        position: int = 0,
        url: str = "",
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(name=name, parent=parent, attributes=attributes)
        self.position = position
        self.url = url

    @property
    def caption(self) -> Optional["Caption"]:
        for child in self.children:
            if isinstance(child, Caption):
                return child
        return None


class Caption(Context):
    """Caption attached to a Table or Figure."""

    def __init__(
        self,
        parent: Context,
        name: str = "",
        position: int = 0,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(name=name, parent=parent, attributes=attributes)
        self.position = position

    @property
    def paragraphs(self) -> List["Paragraph"]:
        return [c for c in self.children if isinstance(c, Paragraph)]


class Table(Context):
    """A table; owns Rows, Columns, Cells and optionally a Caption.

    Cells are children of the Table and additionally linked to exactly one Row
    and one Column (the DAG property of the data model: a Cell has multiple
    parents conceptually; we keep Table as the tree parent and store Row and
    Column links on the Cell).
    """

    def __init__(
        self,
        parent: Context,
        name: str = "",
        position: int = 0,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(name=name, parent=parent, attributes=attributes)
        self.position = position
        self.rows: List[Row] = []
        self.columns: List[Column] = []

    @property
    def caption(self) -> Optional["Caption"]:
        for child in self.children:
            if isinstance(child, Caption):
                return child
        return None

    @property
    def cells(self) -> List["Cell"]:
        return [c for c in self.children if isinstance(c, Cell)]

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    def add_row(self, row: "Row") -> None:
        self.rows.append(row)

    def add_column(self, column: "Column") -> None:
        self.columns.append(column)

    def cell_at(self, row_index: int, col_index: int) -> Optional["Cell"]:
        """The cell covering position (row_index, col_index), honoring spans."""
        for cell in self.cells:
            if (
                cell.row_start <= row_index <= cell.row_end
                and cell.col_start <= col_index <= cell.col_end
            ):
                return cell
        return None

    def row_cells(self, row_index: int) -> List["Cell"]:
        return [c for c in self.cells if c.row_start <= row_index <= c.row_end]

    def column_cells(self, col_index: int) -> List["Cell"]:
        return [c for c in self.cells if c.col_start <= col_index <= c.col_end]

    def header_row_cells(self) -> List["Cell"]:
        """Cells of the first (header) row."""
        return self.row_cells(0)


class Row(Context):
    """A table row.  Holds its index within the owning table."""

    def __init__(
        self,
        table: Table,
        position: int,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(name=f"row-{position}", parent=table, attributes=attributes)
        self.position = position
        self.table = table
        table.add_row(self)

    @property
    def cells(self) -> List["Cell"]:
        return self.table.row_cells(self.position)


class Column(Context):
    """A table column.  Holds its index within the owning table."""

    def __init__(
        self,
        table: Table,
        position: int,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(name=f"col-{position}", parent=table, attributes=attributes)
        self.position = position
        self.table = table
        table.add_column(self)

    @property
    def cells(self) -> List["Cell"]:
        return self.table.column_cells(self.position)


class Cell(Context):
    """A table cell, possibly spanning multiple rows and/or columns."""

    def __init__(
        self,
        table: Table,
        row_start: int,
        col_start: int,
        row_end: Optional[int] = None,
        col_end: Optional[int] = None,
        is_header: bool = False,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(
            name=f"cell-{row_start}-{col_start}", parent=table, attributes=attributes
        )
        self.table = table
        self.row_start = row_start
        self.col_start = col_start
        self.row_end = row_end if row_end is not None else row_start
        self.col_end = col_end if col_end is not None else col_start
        self.is_header = is_header
        if self.row_end < self.row_start or self.col_end < self.col_start:
            raise ValueError("Cell span must not be negative")

    @property
    def row_span(self) -> int:
        return self.row_end - self.row_start + 1

    @property
    def col_span(self) -> int:
        return self.col_end - self.col_start + 1

    @property
    def paragraphs(self) -> List["Paragraph"]:
        return [c for c in self.children if isinstance(c, Paragraph)]


class Paragraph(Context):
    """A paragraph of text; the immediate parent of Sentences."""

    def __init__(
        self,
        parent: Context,
        position: int = 0,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(name=f"paragraph-{position}", parent=parent, attributes=attributes)
        self.position = position

    @property
    def sentences_list(self) -> List["Sentence"]:
        return [c for c in self.children if isinstance(c, Sentence)]


class Sentence(Context):
    """A sentence with per-word multimodal attributes.

    All per-word lists (``words``, ``lemmas``, ``pos_tags``, ``ner_tags``,
    ``word_boxes``, ``html_tags``...) are kept parallel: index ``i`` in each
    list describes the ``i``-th word.
    """

    def __init__(
        self,
        parent: Context,
        words: Sequence[str],
        position: int = 0,
        lemmas: Optional[Sequence[str]] = None,
        pos_tags: Optional[Sequence[str]] = None,
        ner_tags: Optional[Sequence[str]] = None,
        html_tag: str = "",
        html_attrs: Optional[Dict[str, str]] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(name=f"sentence-{position}", parent=parent, attributes=attributes)
        self.position = position
        self.words: List[str] = list(words)
        n = len(self.words)
        self.lemmas: List[str] = list(lemmas) if lemmas is not None else [w.lower() for w in words]
        self.pos_tags: List[str] = list(pos_tags) if pos_tags is not None else [""] * n
        self.ner_tags: List[str] = list(ner_tags) if ner_tags is not None else ["O"] * n
        self.word_boxes: List[Optional[BoundingBox]] = [None] * n
        self.html_tag = html_tag
        self.html_attrs: Dict[str, str] = dict(html_attrs or {})
        self._validate_parallel_lists()

    def _validate_parallel_lists(self) -> None:
        n = len(self.words)
        for attr in ("lemmas", "pos_tags", "ner_tags", "word_boxes"):
            values = getattr(self, attr)
            if len(values) != n:
                raise ValueError(
                    f"Sentence attribute {attr!r} has {len(values)} entries for {n} words"
                )

    # --------------------------------------------------------------- content
    def text(self) -> str:
        return " ".join(self.words)

    def __len__(self) -> int:
        return len(self.words)

    def set_word_boxes(self, boxes: Sequence[Optional[BoundingBox]]) -> None:
        if len(boxes) != len(self.words):
            raise ValueError(
                f"Expected {len(self.words)} boxes, got {len(boxes)}"
            )
        self.word_boxes = list(boxes)
        self._invalidate_index()

    def set_ner_tags(self, tags: Sequence[str]) -> None:
        if len(tags) != len(self.words):
            raise ValueError(f"Expected {len(self.words)} NER tags, got {len(tags)}")
        self.ner_tags = list(tags)
        self._invalidate_index()

    def set_pos_tags(self, tags: Sequence[str]) -> None:
        if len(tags) != len(self.words):
            raise ValueError(f"Expected {len(self.words)} POS tags, got {len(tags)}")
        self.pos_tags = list(tags)
        self._invalidate_index()

    def set_lemmas(self, lemmas: Sequence[str]) -> None:
        if len(lemmas) != len(self.words):
            raise ValueError(f"Expected {len(self.words)} lemmas, got {len(lemmas)}")
        self.lemmas = list(lemmas)
        self._invalidate_index()

    # ------------------------------------------------------------- modality
    @property
    def is_tabular(self) -> bool:
        """True when the sentence lives inside a table cell."""
        return self.cell is not None

    @property
    def cell(self) -> Optional[Cell]:
        for ancestor in self.ancestors():
            if isinstance(ancestor, Cell):
                return ancestor
        return None

    @property
    def table(self) -> Optional[Table]:
        for ancestor in self.ancestors():
            if isinstance(ancestor, Table):
                return ancestor
        return None

    @property
    def is_visual(self) -> bool:
        """True when at least one word has a bounding box."""
        return any(box is not None for box in self.word_boxes)

    @property
    def page(self) -> Optional[int]:
        for box in self.word_boxes:
            if box is not None:
                return box.page
        return None

    def spans(self, max_ngrams: int = 3) -> Iterator["Span"]:
        """Enumerate all word n-gram Spans of this sentence up to ``max_ngrams``."""
        n = len(self.words)
        for length in range(1, max_ngrams + 1):
            for start in range(0, n - length + 1):
                yield Span(self, start, start + length)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Sentence(position={self.position}, text={self.text()!r})"


@dataclass(frozen=True)
class Span:
    """A contiguous slice of words ``[word_start, word_end)`` within one Sentence.

    Spans are the atoms of candidate generation: matchers accept or reject
    spans, and accepted spans become mentions.
    """

    sentence: Sentence
    word_start: int
    word_end: int

    def __post_init__(self) -> None:
        if not (0 <= self.word_start < self.word_end <= len(self.sentence.words)):
            raise ValueError(
                f"Invalid span [{self.word_start}, {self.word_end}) for sentence of "
                f"length {len(self.sentence.words)}"
            )

    # --------------------------------------------------------------- content
    @property
    def words(self) -> List[str]:
        return self.sentence.words[self.word_start : self.word_end]

    @property
    def lemmas(self) -> List[str]:
        return self.sentence.lemmas[self.word_start : self.word_end]

    @property
    def pos_tags(self) -> List[str]:
        return self.sentence.pos_tags[self.word_start : self.word_end]

    @property
    def ner_tags(self) -> List[str]:
        return self.sentence.ner_tags[self.word_start : self.word_end]

    def text(self) -> str:
        return " ".join(self.words)

    def __len__(self) -> int:
        return self.word_end - self.word_start

    # -------------------------------------------------------------- modality
    @property
    def document(self) -> Optional[Document]:
        return self.sentence.document

    @property
    def cell(self) -> Optional[Cell]:
        return self.sentence.cell

    @property
    def table(self) -> Optional[Table]:
        return self.sentence.table

    @property
    def is_tabular(self) -> bool:
        return self.sentence.is_tabular

    @property
    def boxes(self) -> List[BoundingBox]:
        return [
            box
            for box in self.sentence.word_boxes[self.word_start : self.word_end]
            if box is not None
        ]

    @property
    def bounding_box(self) -> Optional[BoundingBox]:
        return merge_boxes(self.boxes)

    @property
    def page(self) -> Optional[int]:
        box = self.bounding_box
        return box.page if box is not None else None

    @property
    def row_index(self) -> Optional[int]:
        cell = self.cell
        return cell.row_start if cell is not None else None

    @property
    def column_index(self) -> Optional[int]:
        cell = self.cell
        return cell.col_start if cell is not None else None

    @property
    def html_tag(self) -> str:
        return self.sentence.html_tag

    @property
    def html_attrs(self) -> Dict[str, str]:
        return self.sentence.html_attrs

    @property
    def stable_id(self) -> str:
        # Memoized: the id is a mention-cache key computed once per lookup on
        # the featurization hot path, and a span's identity never changes.
        cached = self.__dict__.get("_stable_id")
        if cached is None:
            cached = f"{self.sentence.stable_id}::span:{self.word_start}-{self.word_end}"
            object.__setattr__(self, "_stable_id", cached)
        return cached

    def get_attrib_tokens(self, attrib: str = "words") -> List[str]:
        """Tokens of the given per-word attribute (words, lemmas, pos_tags, ner_tags)."""
        values = getattr(self.sentence, attrib)
        return list(values[self.word_start : self.word_end])

    def __repr__(self) -> str:  # pragma: no cover
        return f"Span({self.text()!r})"

    # Spans hash/compare by identity of the sentence object plus offsets.
    def __hash__(self) -> int:
        return hash((id(self.sentence), self.word_start, self.word_end))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return (
            self.sentence is other.sentence
            and self.word_start == other.word_start
            and self.word_end == other.word_end
        )
