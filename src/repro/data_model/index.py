"""Columnar per-document index: the physical representation of the hot paths.

The paper's Appendix-C lesson is that the *physical representation* of the
data structures behind the pipeline's access patterns — not the algorithms —
dominates runtime.  This module applies that lesson to the data-model itself:
instead of every operator re-walking the Python object graph (ancestor chains
for ``span.cell``, full-table scans for ``row_ngrams``, an O(sentences) pass
per ``page_ngrams`` call), a :class:`DocumentIndex` is built **once per
document** after parsing and answers the same questions as flat array lookups:

* a sentence table (numpy columns): owning cell id, owning table id, rendered
  page, word offsets into a flat per-word table;
* a cell grid per table with precomputed row/column membership lists and
  first-cell-wins ``(row, col) -> cell`` coverage (header lookups);
* a flat word table (numpy columns): page and box-center coordinates for
  vectorized visual alignment, parallel to flat word/lowercased-word lists;
* memoized lowercased n-gram vocabularies per sentence / cell / row / column /
  header / page, so the ``traversal`` helpers degrade to list concatenation.

The index is cached on the Document (``document._index``) and stashed on each
Sentence (``sentence._dindex``) for O(1) discovery from a Span.  Both stashes
are stripped on pickling (see :meth:`Context.__getstate__`) because the sid
maps are keyed by object identity; a process-pool round-trip simply rebuilds
the index lazily on first use.  Mutating a sentence through its setter API
(``set_word_boxes`` …) or growing the context tree marks the index stale, and
the next lookup rebuilds it.

Every accessor is engineered to reproduce the legacy object-walking traversal
**byte for byte** (same iteration orders, same float arithmetic), which the
equivalence suite in ``tests/`` asserts; the legacy path remains available via
:func:`traversal_mode` / ``FonduerConfig(use_index=False)``.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data_model.context import (
    Cell,
    Document,
    Sentence,
    Span,
    Table,
)
from repro.data_model.nodes import NodeTable, node_table
from repro.data_model.visual import merge_boxes

#: Bumped whenever the index layout or its accessor semantics change; it is
#: folded into the engine's stage fingerprints (see ``engine/operators.py``)
#: so cached stage outputs from an older index generation are never reused.
#: v2: pre/post-order interval encoding (the embedded NodeTable) replaced the
#: ancestor-chain walks behind the structural features.
INDEX_SCHEMA_VERSION = 2

#: Sentinel scope key: "this span is not covered by the index" (caller must
#: fall back to the legacy path).  Distinct from ``None`` = "indexed, but
#: incompatible with every other span at this scope".
UNINDEXED = object()

_state = threading.local()


def indexing_enabled() -> bool:
    """Whether index-accelerated traversal is active on this thread."""
    return getattr(_state, "enabled", True)


@contextmanager
def traversal_mode(use_index: bool) -> Iterator[None]:
    """Select the indexed fast path (``True``) or legacy object walks (``False``).

    The flag is thread-local so a thread-pool executor can run differently
    configured operators concurrently.  Forked process workers inherit the
    parent's value at fork time, and every operator re-asserts its own mode.
    """
    previous = getattr(_state, "enabled", True)
    _state.enabled = bool(use_index)
    try:
        yield
    finally:
        _state.enabled = previous


# --------------------------------------------------------------------- lookup
def build_index(document: Document) -> "DocumentIndex":
    """The document's index, building (and caching) it if needed."""
    index = document.__dict__.get("_index")
    if index is not None and not index.stale:
        return index
    index = DocumentIndex(document)
    document._index = index
    return index


def invalidate_index(document: Document) -> None:
    """Mark the document's index (and every sentence stash) stale in O(1)."""
    index = document.__dict__.pop("_index", None)
    if index is not None:
        index.stale = True


def active_index(sentence: Sentence) -> Optional["DocumentIndex"]:
    """The live index covering ``sentence``, or ``None`` when disabled/detached.

    O(1) on the hot path (a dict probe on the sentence's stash); falls back to
    one ancestor walk + a rebuild only after invalidation or a pickle
    round-trip.
    """
    if not indexing_enabled():
        return None
    index = sentence.__dict__.get("_dindex")
    if index is not None and not index.stale:
        return index
    document = sentence.document
    if document is None:
        return None
    return build_index(document)


def active_index_for_span(span: Span) -> Optional["DocumentIndex"]:
    return active_index(span.sentence)


def active_document_index(document: Document) -> Optional["DocumentIndex"]:
    """The document's index when indexing is enabled (building lazily)."""
    if not indexing_enabled():
        return None
    return build_index(document)


def _ngrams_from_tokens(tokens: Sequence[str], n_max: int) -> List[str]:
    """All 1..n_max-grams of a pre-cased token list (mirrors traversal helper)."""
    result: List[str] = []
    n_tokens = len(tokens)
    for n in range(1, n_max + 1):
        for i in range(0, n_tokens - n + 1):
            result.append(" ".join(tokens[i : i + n]))
    return result


class DocumentIndex:
    """Flat, array-backed tables over one Document's context DAG."""

    def __init__(self, document: Document) -> None:
        self.document = document
        self.stale = False

        # -------------------------------------------------- node table
        # The pre/post-order interval encoding over the whole context tree
        # (see data_model/nodes.py); structural ancestor/LCA queries below
        # are interval predicates on it instead of object walks.
        self.nodes: NodeTable = node_table(document)

        # ------------------------------------------------- sentence table
        self.sentences: List[Sentence] = list(document.sentences())
        n_sent = len(self.sentences)
        self._sid: Dict[int, int] = {id(s): i for i, s in enumerate(self.sentences)}
        self.sent_pre = np.asarray(
            [self.nodes.pre_of(s) for s in self.sentences], dtype=np.int64
        )

        self.tables: List[Table] = document.tables()
        self._table_id: Dict[int, int] = {id(t): i for i, t in enumerate(self.tables)}

        self.cells: List[Cell] = []
        self._cell_id: Dict[int, int] = {}
        for table in self.tables:
            for cell in table.cells:
                self._cell_id[id(cell)] = len(self.cells)
                self.cells.append(cell)
        n_cells = len(self.cells)

        self.sent_cell = np.full(n_sent, -1, dtype=np.int64)
        self.sent_table = np.full(n_sent, -1, dtype=np.int64)
        self.sent_page = np.full(n_sent, -1, dtype=np.int64)
        self.sent_word_offset = np.zeros(n_sent + 1, dtype=np.int64)

        self.cell_table = np.full(n_cells, -1, dtype=np.int64)
        self.cell_row_start = np.zeros(n_cells, dtype=np.int64)
        self.cell_row_end = np.zeros(n_cells, dtype=np.int64)
        self.cell_col_start = np.zeros(n_cells, dtype=np.int64)
        self.cell_col_end = np.zeros(n_cells, dtype=np.int64)
        for cid, cell in enumerate(self.cells):
            self.cell_table[cid] = self._table_id[id(cell.table)]
            self.cell_row_start[cid] = cell.row_start
            self.cell_row_end[cid] = cell.row_end
            self.cell_col_start[cid] = cell.col_start
            self.cell_col_end[cid] = cell.col_end

        # Row/column membership and first-cell-wins grid coverage, preserving
        # ``table.cells`` order (the order ``row_cells``/``cell_at`` honor).
        self._row_members: Dict[Tuple[int, int], List[int]] = {}
        self._col_members: Dict[Tuple[int, int], List[int]] = {}
        self._grid: Dict[Tuple[int, int, int], int] = {}
        for cid in range(n_cells):
            tid = int(self.cell_table[cid])
            for row in range(int(self.cell_row_start[cid]), int(self.cell_row_end[cid]) + 1):
                self._row_members.setdefault((tid, row), []).append(cid)
            for col in range(int(self.cell_col_start[cid]), int(self.cell_col_end[cid]) + 1):
                self._col_members.setdefault((tid, col), []).append(cid)
            for row in range(int(self.cell_row_start[cid]), int(self.cell_row_end[cid]) + 1):
                for col in range(int(self.cell_col_start[cid]), int(self.cell_col_end[cid]) + 1):
                    self._grid.setdefault((tid, row, col), cid)

        self.cell_sentences: List[List[int]] = [
            [self._sid[id(s)] for s in cell.sentences()] for cell in self.cells
        ]

        # Sibling sentence ids per sentence, in parent-children order (for
        # neighbor_sentence_ngrams).
        self._siblings: List[List[int]] = [[] for _ in range(n_sent)]
        seen_parents: Dict[int, List[int]] = {}
        for sid, sentence in enumerate(self.sentences):
            parent = sentence.parent
            if parent is None:
                continue
            key = id(parent)
            if key not in seen_parents:
                seen_parents[key] = [
                    self._sid[id(c)] for c in parent.children if isinstance(c, Sentence)
                ]
            self._siblings[sid] = seen_parents[key]

        # ---------------------------------------------------- word table
        offset = 0
        flat_words: List[str] = []
        flat_words_lower: List[str] = []
        word_page: List[int] = []
        word_cx: List[float] = []
        word_cy: List[float] = []
        word_sid: List[int] = []
        for sid, sentence in enumerate(self.sentences):
            self.sent_word_offset[sid] = offset
            cell = sentence.cell
            if cell is not None:
                self.sent_cell[sid] = self._cell_id[id(cell)]
            table = sentence.table
            if table is not None:
                self.sent_table[sid] = self._table_id[id(table)]
            page = sentence.page
            if page is not None:
                self.sent_page[sid] = page
            for word, box in zip(sentence.words, sentence.word_boxes):
                flat_words.append(word)
                flat_words_lower.append(word.lower())
                word_sid.append(sid)
                if box is None:
                    word_page.append(-1)
                    word_cx.append(np.nan)
                    word_cy.append(np.nan)
                else:
                    word_page.append(box.page)
                    # Same arithmetic as BoundingBox.center, so vectorized
                    # alignment reproduces the legacy predicate bit for bit.
                    word_cx.append((box.x0 + box.x1) / 2.0)
                    word_cy.append((box.y0 + box.y1) / 2.0)
            offset += len(sentence.words)
        self.sent_word_offset[n_sent] = offset
        self.flat_words = flat_words
        self.flat_words_lower = flat_words_lower
        self.word_page = np.asarray(word_page, dtype=np.int64)
        self.word_cx = np.asarray(word_cx, dtype=np.float64)
        self.word_cy = np.asarray(word_cy, dtype=np.float64)
        self.word_sid = np.asarray(word_sid, dtype=np.int64)

        # Sentence ids per page, in document order (for page_ngrams).
        self._page_sentences: Dict[int, List[int]] = {}
        for sid in range(n_sent):
            page = int(self.sent_page[sid])
            if page >= 0:
                self._page_sentences.setdefault(page, []).append(sid)

        # ------------------------------------------------------ memo tables
        self._sentence_ngrams: Dict[Tuple[int, int, bool], List[str]] = {}
        self._cell_all_ngrams: Dict[Tuple[int, int, bool], List[str]] = {}
        self._row_ngrams: Dict[Tuple[int, int, int, bool], List[str]] = {}
        self._col_ngrams: Dict[Tuple[int, int, int, bool], List[str]] = {}
        self._row_header_ngrams: Dict[Tuple[int, int, int, bool], List[str]] = {}
        self._col_header_ngrams: Dict[Tuple[int, int, int, bool], List[str]] = {}
        self._page_ngrams: Dict[Tuple[int, int, bool], List[Tuple[int, List[str]]]] = {}
        self._structural: Dict[int, List[str]] = {}
        self._structural_pairs: Dict[Tuple[int, int], Tuple[str, ...]] = {}
        self._tabular_pairs: Dict[Tuple[int, int], Tuple[Tuple[str, ...], bool, bool]] = {}
        self._span_cache: Dict[
            Tuple[int, int, bool, bool], Tuple[List[Span], List[str]]
        ] = {}
        self._span_boxes: Dict[Tuple[int, int, int], Optional[object]] = {}
        self._aligned: Dict[Tuple[int, int, int, int, bool, str, float], List[str]] = {}

        # Stash on every sentence for O(1) discovery from spans (the sid
        # rides along so hot paths skip the id() map probe).
        for sid, sentence in enumerate(self.sentences):
            sentence._dindex = self
            sentence._dindex_sid = sid

    # ------------------------------------------------------------------ ids
    def sentence_id(self, sentence: Sentence) -> Optional[int]:
        return self._sid.get(id(sentence))

    def cell_of_sentence(self, sid: int) -> Optional[Cell]:
        cid = int(self.sent_cell[sid])
        return self.cells[cid] if cid >= 0 else None

    def cell_of_span(self, span: Span) -> Tuple[Optional[int], Optional[Cell]]:
        """(sid, cell) of a span, or (None, None) when the span is unindexed."""
        sid = self._sid.get(id(span.sentence))
        if sid is None:
            return None, None
        return sid, self.cell_of_sentence(sid)

    def span_page(self, sid: int, span: Span) -> int:
        """Page of the span (page of its first boxed word), or -1.

        Matches ``span.page``: ``merge_boxes`` keeps the page of the first
        non-``None`` word box inside the span.
        """
        base = int(self.sent_word_offset[sid])
        pages = self.word_page[base + span.word_start : base + span.word_end]
        boxed = pages[pages >= 0]
        return int(boxed[0]) if boxed.size else -1

    # ----------------------------------------------------------- scope keys
    def scope_key(self, scope, span: Span):
        """Integer partition key of a span under a context scope.

        Two spans are scope-compatible iff their keys are equal and not
        ``None``; returns :data:`UNINDEXED` when the span's sentence is not
        covered by this index.
        """
        sid = self._sid.get(id(span.sentence))
        if sid is None:
            return UNINDEXED
        name = scope.value
        if name == "document":
            return 0
        if name == "sentence":
            return sid
        if name == "table":
            if int(self.sent_cell[sid]) < 0:
                return None
            return int(self.sent_table[sid])
        if name == "page":
            page = self.span_page(sid, span)
            return page if page >= 0 else None
        return UNINDEXED

    # --------------------------------------------------------------- ngrams
    def sentence_ngrams(self, sid: int, n_max: int, lower: bool) -> List[str]:
        key = (sid, n_max, lower)
        cached = self._sentence_ngrams.get(key)
        if cached is None:
            words = self.sentences[sid].words
            tokens = [w.lower() for w in words] if lower else list(words)
            cached = _ngrams_from_tokens(tokens, n_max)
            self._sentence_ngrams[key] = cached
        return cached

    def _concat_sentence_ngrams(self, sids: Sequence[int], n_max: int, lower: bool) -> List[str]:
        result: List[str] = []
        for sid in sids:
            result.extend(self.sentence_ngrams(sid, n_max, lower))
        return result

    def neighbor_sentence_ngrams(
        self, sid: int, window: int, n_max: int, lower: bool
    ) -> List[str]:
        position = self.sentences[sid].position
        result: List[str] = []
        for sibling_sid in self._siblings[sid]:
            if sibling_sid == sid:
                continue
            if abs(self.sentences[sibling_sid].position - position) <= window:
                result.extend(self.sentence_ngrams(sibling_sid, n_max, lower))
        return result

    def cell_all_ngrams(self, cid: int, n_max: int, lower: bool) -> List[str]:
        """Every n-gram of every sentence in the cell (unfiltered, memoized)."""
        key = (cid, n_max, lower)
        cached = self._cell_all_ngrams.get(key)
        if cached is None:
            cached = self._concat_sentence_ngrams(self.cell_sentences[cid], n_max, lower)
            self._cell_all_ngrams[key] = cached
        return cached

    def row_ngrams(self, cid: int, tid: int, n_max: int, lower: bool) -> List[str]:
        """N-grams of the cells sharing a row with cell ``cid`` in table ``tid``.

        ``tid`` is the *span's* nearest Table ancestor, passed separately from
        the cell: on a nested-table tree the nearest Cell can belong to an
        outer table while the nearest Table is the inner one, and the legacy
        walk resolves row membership through the latter.
        """
        key = (cid, tid, n_max, lower)
        cached = self._row_ngrams.get(key)
        if cached is None:
            cached = []
            for row in range(int(self.cell_row_start[cid]), int(self.cell_row_end[cid]) + 1):
                for other in self._row_members.get((tid, row), ()):
                    if other == cid:
                        continue
                    cached.extend(
                        self._concat_sentence_ngrams(self.cell_sentences[other], n_max, lower)
                    )
            self._row_ngrams[key] = cached
        return cached

    def column_ngrams(self, cid: int, tid: int, n_max: int, lower: bool) -> List[str]:
        key = (cid, tid, n_max, lower)
        cached = self._col_ngrams.get(key)
        if cached is None:
            cached = []
            for col in range(int(self.cell_col_start[cid]), int(self.cell_col_end[cid]) + 1):
                for other in self._col_members.get((tid, col), ()):
                    if other == cid:
                        continue
                    cached.extend(
                        self._concat_sentence_ngrams(self.cell_sentences[other], n_max, lower)
                    )
            self._col_ngrams[key] = cached
        return cached

    def header_cell(self, cid: int, tid: int, axis: str) -> Optional[int]:
        """Row header (first cell of the row) or column header (first of the
        column) of cell ``cid``, resolved in table ``tid`` (the span's nearest
        Table ancestor, like the legacy ``table.cell_at`` walk)."""
        if axis == "row":
            return self._grid.get((tid, int(self.cell_row_start[cid]), 0))
        return self._grid.get((tid, 0, int(self.cell_col_start[cid])))

    def row_header_ngrams(self, cid: int, tid: int, n_max: int, lower: bool) -> List[str]:
        key = (cid, tid, n_max, lower)
        cached = self._row_header_ngrams.get(key)
        if cached is None:
            header = self.header_cell(cid, tid, "row")
            if header is None or header == cid:
                cached = []
            else:
                cached = self._concat_sentence_ngrams(
                    self.cell_sentences[header], n_max, lower
                )
            self._row_header_ngrams[key] = cached
        return cached

    def column_header_ngrams(self, cid: int, tid: int, n_max: int, lower: bool) -> List[str]:
        key = (cid, tid, n_max, lower)
        cached = self._col_header_ngrams.get(key)
        if cached is None:
            header = self.header_cell(cid, tid, "column")
            if header is None or header == cid:
                cached = []
            else:
                cached = self._concat_sentence_ngrams(
                    self.cell_sentences[header], n_max, lower
                )
            self._col_header_ngrams[key] = cached
        return cached

    def page_ngrams(self, page: int, skip_sid: int, n_max: int, lower: bool) -> List[str]:
        key = (page, n_max, lower)
        cached = self._page_ngrams.get(key)
        if cached is None:
            cached = [
                (sid, self.sentence_ngrams(sid, n_max, lower))
                for sid in self._page_sentences.get(page, ())
            ]
            self._page_ngrams[key] = cached
        result: List[str] = []
        for sid, grams in cached:
            if sid != skip_sid:
                result.extend(grams)
        return result

    # ------------------------------------------------------ visual alignment
    def span_box(self, sid: int, word_start: int, word_end: int):
        """Merged bounding box of a span (memoized; matches ``Span.bounding_box``)."""
        key = (sid, word_start, word_end)
        if key in self._span_boxes:
            return self._span_boxes[key]
        sentence = self.sentences[sid]
        box = merge_boxes(
            b for b in sentence.word_boxes[word_start:word_end] if b is not None
        )
        self._span_boxes[key] = box
        return box

    def aligned_ngrams(
        self,
        sid: int,
        word_start: int,
        word_end: int,
        n_max: int,
        lower: bool,
        axis: str,
        tolerance: float,
    ) -> List[str]:
        """Memoized visual-alignment n-grams of one span."""
        key = (sid, word_start, word_end, n_max, lower, axis, tolerance)
        cached = self._aligned.get(key)
        if cached is None:
            box = self.span_box(sid, word_start, word_end)
            if box is None:
                cached = []
            else:
                cached = self._aligned_ngrams_compute(
                    sid, box, n_max, lower, axis, tolerance
                )
            self._aligned[key] = cached
        return cached

    def _aligned_ngrams_compute(
        self,
        sid: int,
        box,
        n_max: int,
        lower: bool,
        axis: str,
        tolerance: float,
    ) -> List[str]:
        """Vectorized replacement for the per-word alignment scan."""
        if self.word_page.size == 0:
            return []
        on_page = self.word_page == box.page
        cx = (box.x0 + box.x1) / 2.0
        cy = (box.y0 + box.y1) / 2.0
        with np.errstate(invalid="ignore"):
            horizontal = np.abs(self.word_cy - cy) <= tolerance
            vertical = np.abs(self.word_cx - cx) <= tolerance
        if axis == "horizontal":
            aligned = horizontal
        elif axis == "vertical":
            aligned = vertical
        else:
            aligned = horizontal | vertical
        mask = on_page & aligned & (self.word_sid != sid)
        indices = np.nonzero(mask)[0]
        if indices.size == 0:
            return []
        words = self.flat_words_lower if lower else self.flat_words
        result: List[str] = []
        # Words are laid out sentence-major, so equal-sid runs are contiguous;
        # n-grams are formed within each sentence's aligned words, as legacy.
        run: List[str] = [words[int(indices[0])]]
        run_sid = int(self.word_sid[indices[0]])
        for flat in indices[1:]:
            word_sid = int(self.word_sid[flat])
            if word_sid != run_sid:
                result.extend(_ngrams_from_tokens(run, n_max))
                run = []
                run_sid = word_sid
            run.append(words[int(flat)])
        result.extend(_ngrams_from_tokens(run, n_max))
        return result

    # -------------------------------------------------------- mention space
    def ngram_spans(
        self,
        n_min: int,
        n_max: int,
        tabular_only: bool = False,
        non_tabular_only: bool = False,
    ) -> Tuple[List[Span], List[str]]:
        """The materialized mention space: (spans, texts), parallel lists.

        Enumerated once per (bounds, filter) per document — matchers,
        extractors and repeated development-mode runs all reuse the same
        span objects and their pre-sliced texts.  Order matches
        ``MentionNgrams.iter_spans`` (sentence DFS order, then n-gram
        length, then start), and each text equals
        ``" ".join(words[start:end])`` via O(1) slices of the joined
        sentence string.
        """
        key = (n_min, n_max, tabular_only, non_tabular_only)
        cached = self._span_cache.get(key)
        if cached is not None:
            return cached
        spans: List[Span] = []
        texts: List[str] = []
        new = object.__new__
        set_attr = object.__setattr__
        for sid, sentence in enumerate(self.sentences):
            if tabular_only and self.sent_cell[sid] < 0:
                continue
            if non_tabular_only and self.sent_cell[sid] >= 0:
                continue
            words = sentence.words
            n_words = len(words)
            joined = " ".join(words)
            char_start: List[int] = []
            position = 0
            for word in words:
                char_start.append(position)
                position += len(word) + 1
            for length in range(n_min, n_max + 1):
                for start in range(0, n_words - length + 1):
                    end = start + length
                    # Spans are valid by construction; bypassing the frozen
                    # dataclass __init__ skips redundant bounds validation.
                    span = new(Span)
                    set_attr(span, "sentence", sentence)
                    set_attr(span, "word_start", start)
                    set_attr(span, "word_end", end)
                    spans.append(span)
                    texts.append(
                        joined[char_start[start] : char_start[end - 1] + len(words[end - 1])]
                    )
        cached = (spans, texts)
        self._span_cache[key] = cached
        return cached

    # ----------------------------------------------------------- structural
    def structural_suffixes(self, sid: int) -> List[str]:
        """Per-sentence structural feature suffixes (sans the mention prefix).

        Reproduces ``mention_structural_features`` order exactly; the caller
        prepends its ``STR_<TYPE>`` prefix.
        """
        cached = self._structural.get(sid)
        if cached is not None:
            return cached
        sentence = self.sentences[sid]
        suffixes: List[str] = []
        if sentence.html_tag:
            suffixes.append(f"_TAG_{sentence.html_tag}")
        for key, value in sorted(sentence.html_attrs.items()):
            if key in ("style", "class", "id", "font-family", "font-size"):
                suffixes.append(f"_HTML_ATTR_{key}:{value}")
        parent = sentence.parent
        if parent is not None:
            parent_tag = str(parent.attributes.get("html_tag", ""))
            if parent_tag:
                suffixes.append(f"_PARENT_TAG_{parent_tag}")
            suffixes.append(f"_NODE_POS_{getattr(sentence, 'position', 0)}")
            siblings = self._siblings[sid]
            index = siblings.index(sid) if sid in siblings else -1
            if index > 0:
                prev_tag = self.sentences[siblings[index - 1]].html_tag
                if prev_tag:
                    suffixes.append(f"_PREV_SIB_TAG_{prev_tag}")
            if 0 <= index < len(siblings) - 1:
                next_tag = self.sentences[siblings[index + 1]].html_tag
                if next_tag:
                    suffixes.append(f"_NEXT_SIB_TAG_{next_tag}")
        # Root-first ancestor tag/class/id paths come from the node table,
        # which memoizes them per *node* — spans sharing a sentence, and
        # sentences sharing ancestors, reuse one computed prefix instead of
        # re-walking the chain (`reversed(sentence.ancestors())`) per call.
        ancestor_tags, ancestor_classes, ancestor_ids = self.nodes.ancestor_paths(
            int(self.sent_pre[sid])
        )
        if ancestor_tags:
            suffixes.append(f"_ANCESTOR_TAG_{'_'.join(ancestor_tags)}")
        for class_name in ancestor_classes:
            suffixes.append(f"_ANCESTOR_CLASS_{class_name}")
        for element_id in ancestor_ids:
            suffixes.append(f"_ANCESTOR_ID_{element_id}")
        self._structural[sid] = suffixes
        return suffixes

    def structural_pair_features(self, sid_a: int, sid_b: int) -> Tuple[str, ...]:
        """Binary structural features of a sentence pair, memoized.

        ``STR_COMMON_ANCESTOR_*`` and ``STR_LOWEST_ANCESTOR_DEPTH_*`` depend
        only on the two sentences' ancestor chains, so all candidates whose
        mentions share a sentence pair reuse one computation.  Reproduces
        ``candidate_structural_features`` exactly.
        """
        key = (sid_a, sid_b)
        cached = self._structural_pairs.get(key)
        if cached is not None:
            return cached
        # Both sentences live in one document, so an LCA always exists (the
        # root covers everything): two pre-rank lookups plus an O(depth)
        # parent walk replace the two full ancestor chains + id() set.
        nodes = self.nodes
        pre_a, pre_b = int(self.sent_pre[sid_a]), int(self.sent_pre[sid_b])
        lca_pre = nodes.lca(pre_a, pre_b)
        tag = nodes.tag_of(lca_pre) or nodes.kind_name(lca_pre)
        depth = int(
            min(nodes.depth[pre_a], nodes.depth[pre_b]) - nodes.depth[lca_pre]
        )
        cached = (
            f"STR_COMMON_ANCESTOR_{tag}",
            f"STR_LOWEST_ANCESTOR_DEPTH_{min(depth, 10)}",
        )
        self._structural_pairs[key] = cached
        return cached

    # -------------------------------------------------------------- tabular
    def tabular_pair_features(
        self, sid_a: int, sid_b: int
    ) -> Tuple[Tuple[str, ...], bool, bool]:
        """Cell-level binary tabular features of a sentence pair, memoized.

        Returns ``(features, same_cell, same_sentence)``: the feature strings
        up to and including ``TAB_SAME_CELL`` (the caller appends the
        span-level ``TAB_WORD_DIFF``/``TAB_CHAR_DIFF``/``TAB_SAME_PHRASE``
        tail, which depends on word offsets, not sentences).  Pure integer
        arithmetic on the cell-geometry columns — no Cell/Table objects are
        touched.  Reproduces ``candidate_tabular_features`` order exactly.
        """
        key = (sid_a, sid_b)
        cached = self._tabular_pairs.get(key)
        if cached is None:
            cached = self._tabular_pair_compute(sid_a, sid_b)
            self._tabular_pairs[key] = cached
        return cached

    def _tabular_pair_compute(
        self, sid_a: int, sid_b: int
    ) -> Tuple[Tuple[str, ...], bool, bool]:
        cid_a, cid_b = int(self.sent_cell[sid_a]), int(self.sent_cell[sid_b])
        if cid_a < 0 and cid_b < 0:
            return (), False, False
        if cid_a < 0 or cid_b < 0:
            return ("TAB_ONE_MENTION_TABULAR",), False, False
        tid_a, tid_b = int(self.sent_table[sid_a]), int(self.sent_table[sid_b])
        row_a, row_b = int(self.cell_row_start[cid_a]), int(self.cell_row_start[cid_b])
        col_a, col_b = int(self.cell_col_start[cid_a]), int(self.cell_col_start[cid_b])
        row_diff = abs(row_a - row_b)
        col_diff = abs(col_a - col_b)
        if tid_a >= 0 and tid_a == tid_b:
            features = [
                "TAB_SAME_TABLE",
                f"TAB_SAME_TABLE_ROW_DIFF_{min(row_diff, 20)}",
                f"TAB_SAME_TABLE_COL_DIFF_{min(col_diff, 20)}",
                f"TAB_SAME_TABLE_MANHATTAN_DIST_{min(row_diff + col_diff, 30)}",
            ]
            if not (
                self.cell_row_end[cid_a] < row_b or self.cell_row_end[cid_b] < row_a
            ):
                features.append("TAB_SAME_ROW")
            if not (
                self.cell_col_end[cid_a] < col_b or self.cell_col_end[cid_b] < col_a
            ):
                features.append("TAB_SAME_COL")
            same_cell = cid_a == cid_b
            if same_cell:
                features.append("TAB_SAME_CELL")
            return tuple(features), same_cell, sid_a == sid_b
        return (
            (
                "TAB_DIFF_TABLE",
                f"TAB_DIFF_TABLE_ROW_DIFF_{min(row_diff, 20)}",
                f"TAB_DIFF_TABLE_COL_DIFF_{min(col_diff, 20)}",
                f"TAB_DIFF_TABLE_MANHATTAN_DIST_{min(row_diff + col_diff, 30)}",
            ),
            False,
            False,
        )

    def precompute_pair_features(self, sid_pairs: Sequence[Tuple[int, int]]) -> None:
        """Fill the pair memo tables for a whole document's candidates at once.

        One vectorized pass over the sentence/cell columns decides every
        pair's branch (non-tabular / one-sided / same-table / cross-table and
        the row/column interval overlaps) before any feature string is built;
        only the pairs actually missing from the memos are materialized.
        Called by the featurizer with all mention pairs of a document, so the
        per-candidate extractors afterwards run on warm memos.
        """
        todo = sorted(
            {
                pair
                for pair in sid_pairs
                if pair not in self._tabular_pairs
            }
        )
        if not todo:
            return
        a = np.asarray([pair[0] for pair in todo], dtype=np.int64)
        b = np.asarray([pair[1] for pair in todo], dtype=np.int64)
        cid_a, cid_b = self.sent_cell[a], self.sent_cell[b]
        tid_a, tid_b = self.sent_table[a], self.sent_table[b]
        tabular_a, tabular_b = cid_a >= 0, cid_b >= 0
        same_table = tabular_a & tabular_b & (tid_a >= 0) & (tid_a == tid_b)
        if len(self.cells):
            # Geometry columns are gathered with the invalid lanes clipped
            # to 0; the branch masks above decide which lanes are ever read.
            ca, cb = np.maximum(cid_a, 0), np.maximum(cid_b, 0)
            row_a, row_b = self.cell_row_start[ca], self.cell_row_start[cb]
            col_a, col_b = self.cell_col_start[ca], self.cell_col_start[cb]
            row_diff = np.abs(row_a - row_b)
            col_diff = np.abs(col_a - col_b)
            same_row = same_table & ~(
                (self.cell_row_end[ca] < row_b) | (self.cell_row_end[cb] < row_a)
            )
            same_col = same_table & ~(
                (self.cell_col_end[ca] < col_b) | (self.cell_col_end[cb] < col_a)
            )
            same_cell = same_table & (cid_a == cid_b)
            row_diff = np.minimum(row_diff, 20)
            col_diff = np.minimum(col_diff, 20)
            manhattan = np.minimum(
                np.abs(row_a - row_b) + np.abs(col_a - col_b), 30
            )
        else:
            # A cell-less document has no tabular lanes at all: only the
            # first branch of the loop below runs, so the geometry columns
            # are never read — but the empty gather itself would raise.
            row_diff = col_diff = manhattan = np.zeros(len(todo), dtype=np.int64)
            same_row = same_col = same_cell = np.zeros(len(todo), dtype=bool)
        for i, pair in enumerate(todo):
            if not tabular_a[i] and not tabular_b[i]:
                self._tabular_pairs[pair] = ((), False, False)
                continue
            if not tabular_a[i] or not tabular_b[i]:
                self._tabular_pairs[pair] = (("TAB_ONE_MENTION_TABULAR",), False, False)
                continue
            if same_table[i]:
                features = [
                    "TAB_SAME_TABLE",
                    f"TAB_SAME_TABLE_ROW_DIFF_{row_diff[i]}",
                    f"TAB_SAME_TABLE_COL_DIFF_{col_diff[i]}",
                    f"TAB_SAME_TABLE_MANHATTAN_DIST_{manhattan[i]}",
                ]
                if same_row[i]:
                    features.append("TAB_SAME_ROW")
                if same_col[i]:
                    features.append("TAB_SAME_COL")
                if same_cell[i]:
                    features.append("TAB_SAME_CELL")
                self._tabular_pairs[pair] = (
                    tuple(features),
                    bool(same_cell[i]),
                    pair[0] == pair[1],
                )
            else:
                self._tabular_pairs[pair] = (
                    (
                        "TAB_DIFF_TABLE",
                        f"TAB_DIFF_TABLE_ROW_DIFF_{row_diff[i]}",
                        f"TAB_DIFF_TABLE_COL_DIFF_{col_diff[i]}",
                        f"TAB_DIFF_TABLE_MANHATTAN_DIST_{manhattan[i]}",
                    ),
                    False,
                    False,
                )

    # ------------------------------------------------------------------ misc
    @property
    def n_sentences(self) -> int:
        return len(self.sentences)

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DocumentIndex(document={self.document.name!r}, "
            f"sentences={self.n_sentences}, cells={self.n_cells}, "
            f"words={len(self.flat_words)})"
        )


def iter_scoped_combos(
    mention_lists: Sequence[Sequence],
    scope,
    index: Optional[DocumentIndex],
) -> Iterator[tuple]:
    """Enumerate scope-compatible mention tuples without forming the full product.

    Mentions of the non-leading entity types are partitioned by scope key
    first, so incompatible tuples are never generated; the enumeration order
    is identical to ``itertools.product`` filtered by
    ``ContextScope.compatible`` (outer loop over the first list in order,
    inner product over the matching partitions, which preserve list order).

    Yields nothing and raises :class:`LookupError` when any span is not
    covered by ``index`` (caller falls back to the legacy product).
    """
    if not mention_lists or not all(mention_lists):
        return
    if len(mention_lists) == 1:
        for mention in mention_lists[0]:
            yield (mention,)
        return
    if scope.value == "document" or index is None:
        # Document scope filters nothing; the plain product IS the fast path.
        yield from itertools.product(*mention_lists)
        return

    # All keys are resolved before the first tuple is yielded, so a span the
    # index does not cover raises *before* any output and the caller can fall
    # back to the legacy product without double-counting.
    grouped_rest: List[Dict[object, List]] = []
    for mention_list in mention_lists[1:]:
        groups: Dict[object, List] = {}
        for mention in mention_list:
            key = index.scope_key(scope, mention.span)
            if key is UNINDEXED:
                raise LookupError("span outside index")
            if key is None:
                continue
            groups.setdefault(key, []).append(mention)
        grouped_rest.append(groups)
    first_keys = []
    for first in mention_lists[0]:
        key = index.scope_key(scope, first.span)
        if key is UNINDEXED:
            raise LookupError("span outside index")
        first_keys.append(key)

    for first, key in zip(mention_lists[0], first_keys):
        if key is None:
            continue
        rest = [groups.get(key) for groups in grouped_rest]
        if not all(rest):
            continue
        for tail in itertools.product(*rest):
            yield (first, *tail)
