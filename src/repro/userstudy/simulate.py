"""Simulation of the user study (paper Section 6, Figure 9).

The paper's study gives each participant 30 minutes per condition:

* **Manual** — hand-label candidates one by one (≈285 candidates labeled in
  30 minutes on average) and train the discriminative model on those labels;
* **LF** — write labeling functions iteratively (≈7 LFs on average, labeling
  ≈19,075 candidates programmatically), denoise with the label model and train
  the same discriminative model.

Humans are replaced by two simulated annotator arms that reproduce the
*mechanism* behind the result (LFs give the model far more, slightly noisier,
training data; manual labels are accurate but few), evaluated at checkpoints
over the 30-minute budget.  The LF arm draws its functions, in order, from the
dataset's LF pool — whose modality distribution also yields the right-hand plot
of Figure 9.
"""

from __future__ import annotations
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.candidates.mentions import Candidate
from repro.datasets.base import DatasetSpec
from repro.evaluation.metrics import evaluate_binary
from repro.learning.logistic import SparseLogisticRegression
from repro.features.featurizer import Featurizer
from repro.supervision.label_model import LabelModel, MajorityVoter
from repro.supervision.labeling import LabelingFunction, LFApplier


@dataclass
class ArmCheckpoint:
    """Quality measured at one point in (simulated) time."""

    minute: int
    f1: float
    n_labeled: int


@dataclass
class UserStudyResult:
    """Output of one simulated study: checkpoints per arm + LF modality mix."""

    manual_checkpoints: List[ArmCheckpoint]
    lf_checkpoints: List[ArmCheckpoint]
    lf_modality_distribution: Dict[str, float]

    @property
    def final_manual_f1(self) -> float:
        return self.manual_checkpoints[-1].f1 if self.manual_checkpoints else 0.0

    @property
    def final_lf_f1(self) -> float:
        return self.lf_checkpoints[-1].f1 if self.lf_checkpoints else 0.0


class ManualAnnotationArm:
    """Simulated participant hand-labeling candidates at a fixed rate."""

    def __init__(self, labels_per_minute: int = 10, label_noise: float = 0.05, seed: int = 0) -> None:
        self.labels_per_minute = labels_per_minute
        self.label_noise = label_noise
        self.seed = seed

    def labels_at(self, minute: int, gold: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(indices labeled so far, noisy labels) after ``minute`` minutes."""
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(gold))
        n_labeled = min(len(gold), self.labels_per_minute * minute)
        chosen = order[:n_labeled]
        labels = gold[chosen].astype(float).copy()
        flip = rng.random(n_labeled) < self.label_noise
        labels[flip] *= -1
        return chosen, labels


class LabelingFunctionArm:
    """Simulated participant unlocking LFs from the dataset pool over time."""

    def __init__(self, minutes_per_lf: float = 4.0, seed: int = 0) -> None:
        self.minutes_per_lf = minutes_per_lf
        self.seed = seed

    def lfs_at(self, minute: int, pool: Sequence[LabelingFunction]) -> List[LabelingFunction]:
        n_unlocked = int(minute / self.minutes_per_lf)
        return list(pool[: max(0, min(len(pool), n_unlocked))])


def _train_and_evaluate(
    feature_rows: Sequence[Dict[str, float]],
    train_indices: np.ndarray,
    train_targets: np.ndarray,
    gold: np.ndarray,
    test_indices: np.ndarray,
) -> float:
    """Train the discriminative head on the given targets; F1 on the test split."""
    if len(train_indices) < 2 or len(set(np.sign(train_targets - 0.5))) < 1:
        return 0.0
    model = SparseLogisticRegression()
    model.fit([feature_rows[i] for i in train_indices], train_targets)
    predictions = model.predict([feature_rows[i] for i in test_indices])
    return evaluate_binary(predictions, gold[test_indices]).f1


def run_user_study(
    dataset: DatasetSpec,
    candidates: Sequence[Candidate],
    gold: np.ndarray,
    minutes: Sequence[int] = (5, 10, 15, 20, 25, 30),
    seed: int = 0,
    manual_labels_per_minute: int = 10,
    minutes_per_lf: float = 4.0,
) -> UserStudyResult:
    """Run both arms over the same candidates and gold labels.

    ``gold`` holds labels in {-1, +1} aligned with ``candidates``.  Quality is
    measured on a held-out half of the candidates at each checkpoint.
    """
    if len(candidates) != len(gold):
        raise ValueError("candidates and gold must align")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(candidates))
    split = len(candidates) // 2
    dev_indices, test_indices = order[:split], order[split:]

    featurizer = Featurizer()
    feature_rows = [
        {name: 1.0 for name in featurizer.features_for_candidate(candidate)}
        for candidate in candidates
    ]

    manual_arm = ManualAnnotationArm(labels_per_minute=manual_labels_per_minute, seed=seed)
    lf_arm = LabelingFunctionArm(minutes_per_lf=minutes_per_lf, seed=seed)

    manual_checkpoints: List[ArmCheckpoint] = []
    lf_checkpoints: List[ArmCheckpoint] = []

    for minute in minutes:
        # Manual arm: a slowly growing set of accurate labels.
        dev_gold = gold[dev_indices]
        chosen, labels = manual_arm.labels_at(minute, dev_gold)
        chosen_global = dev_indices[chosen]
        targets = (labels + 1.0) / 2.0
        manual_f1 = _train_and_evaluate(feature_rows, chosen_global, targets, gold, test_indices)
        manual_checkpoints.append(ArmCheckpoint(minute=minute, f1=manual_f1, n_labeled=len(chosen)))

        # LF arm: LFs label the entire development split programmatically.
        unlocked = lf_arm.lfs_at(minute, dataset.labeling_functions)
        if unlocked:
            applier = LFApplier(unlocked)
            L = applier.apply_dense([candidates[i] for i in dev_indices])
            if L.shape[1] >= 2:
                marginals = LabelModel().fit_predict_proba(L)
            else:
                marginals = MajorityVoter().predict_proba(L)
            labeled_mask = (L != 0).any(axis=1)
            n_labeled = int(labeled_mask.sum())
            lf_f1 = _train_and_evaluate(
                feature_rows, dev_indices[labeled_mask], marginals[labeled_mask], gold, test_indices
            )
        else:
            n_labeled = 0
            lf_f1 = 0.0
        lf_checkpoints.append(ArmCheckpoint(minute=minute, f1=lf_f1, n_labeled=n_labeled))

    modality_counts: Dict[str, int] = {}
    for lf in dataset.labeling_functions:
        modality_counts[lf.modality] = modality_counts.get(lf.modality, 0) + 1
    total = sum(modality_counts.values()) or 1
    modality_distribution = {m: c / total for m, c in modality_counts.items()}

    return UserStudyResult(
        manual_checkpoints=manual_checkpoints,
        lf_checkpoints=lf_checkpoints,
        lf_modality_distribution=modality_distribution,
    )
