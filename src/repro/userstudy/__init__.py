"""User-study simulation (paper Section 6, Figure 9)."""

from repro.userstudy.simulate import (
    ManualAnnotationArm,
    LabelingFunctionArm,
    UserStudyResult,
    run_user_study,
)

__all__ = [
    "LabelingFunctionArm",
    "ManualAnnotationArm",
    "UserStudyResult",
    "run_user_study",
]
