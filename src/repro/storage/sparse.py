"""Sparse annotation matrices: list-of-lists (LIL) and coordinate list (COO).

Appendix C.2 of the paper studies how the physical representation of the
``Features`` and ``Labels`` abstract data structures affects runtime under the
three access patterns of the pipeline — materialization, updates, and queries —
and recommends: Features as LIL always; Labels as COO during development (fast
updates when labeling functions change) and LIL in production (fast row reads).

Both classes here implement the same :class:`AnnotationMatrix` interface so the
pipeline can swap representations, and the Appendix-C benchmark measures the
same trade-offs the paper reports (LIL faster to query, COO faster to update).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class AnnotationMatrix:
    """Interface shared by the sparse representations.

    Rows are candidates (keyed by integer candidate id); columns are named
    annotations (feature names or labeling-function names) interned to integer
    column ids.  Values are floats (feature values or labels in {-1, 0, +1},
    where 0/absent means "no annotation").
    """

    def __init__(self) -> None:
        self._column_ids: Dict[str, int] = {}
        self._column_names: List[str] = []

    # --------------------------------------------------------------- columns
    def column_id(self, name: str) -> int:
        """Intern a column name, returning its integer id."""
        if name not in self._column_ids:
            self._column_ids[name] = len(self._column_names)
            self._column_names.append(name)
        return self._column_ids[name]

    @property
    def column_names(self) -> List[str]:
        return list(self._column_names)

    @property
    def n_columns(self) -> int:
        return len(self._column_names)

    # ------------------------------------------------------------ interface
    @property
    def n_rows(self) -> int:
        raise NotImplementedError

    def set(self, row: int, column: str, value: float) -> None:
        raise NotImplementedError

    def get_row(self, row: int) -> Dict[str, float]:
        raise NotImplementedError

    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        raise NotImplementedError

    def rows(self) -> Iterator[int]:
        raise NotImplementedError

    # ------------------------------------------------------------- utilities
    def set_many(self, entries: Iterable[Tuple[int, str, float]]) -> None:
        for row, column, value in entries:
            self.set(row, column, value)

    def to_dense(self, row_order: Optional[Sequence[int]] = None) -> np.ndarray:
        """Materialize a dense ``(n_rows, n_columns)`` array (small matrices only)."""
        row_list = list(row_order) if row_order is not None else sorted(self.rows())
        dense = np.zeros((len(row_list), self.n_columns))
        column_ids = self._column_ids
        for i, row in enumerate(row_list):
            for name, value in self.get_row(row).items():
                dense[i, column_ids[name]] = value
        return dense

    def density(self) -> float:
        total = self.n_rows * self.n_columns
        return self.nnz() / total if total else 0.0


class LILMatrix(AnnotationMatrix):
    """List-of-lists: each row stores a list of (column id, value) pairs.

    Retrieving an entire row is a single lookup; updating a value requires a
    scan of the row's sublist (paper Appendix C.2).
    """

    def __init__(self) -> None:
        super().__init__()
        self._rows: Dict[int, List[Tuple[int, float]]] = {}

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[int]:
        return iter(self._rows)

    def set(self, row: int, column: str, value: float) -> None:
        column_id = self.column_id(column)
        row_list = self._rows.setdefault(row, [])
        for index, (existing_column, _) in enumerate(row_list):
            if existing_column == column_id:
                if value == 0.0:
                    del row_list[index]
                else:
                    row_list[index] = (column_id, value)
                return
        if value != 0.0:
            row_list.append((column_id, value))

    def get(self, row: int, column: str) -> float:
        column_id = self._column_ids.get(column)
        if column_id is None:
            return 0.0
        for existing_column, value in self._rows.get(row, []):
            if existing_column == column_id:
                return value
        return 0.0

    def get_row(self, row: int) -> Dict[str, float]:
        return {
            self._column_names[column_id]: value
            for column_id, value in self._rows.get(row, [])
        }

    def nnz(self) -> int:
        return sum(len(row_list) for row_list in self._rows.values())

    @classmethod
    def from_coo(cls, coo: "COOMatrix") -> "LILMatrix":
        """Convert a COO matrix to LIL (the development → production switch)."""
        lil = cls()
        for row, column, value in coo.triples():
            lil.set(row, column, value)
        return lil


class COOMatrix(AnnotationMatrix):
    """Coordinate list: stores (row, column id, value) triples.

    Appending a new value is O(1); fetching a row requires a scan (amortized
    here with a lazily maintained row index so queries remain usable).
    """

    def __init__(self) -> None:
        super().__init__()
        self._triples: List[Tuple[int, int, float]] = []
        self._latest: Dict[Tuple[int, int], int] = {}
        self._row_set: Dict[int, int] = {}

    @property
    def n_rows(self) -> int:
        return len(self._row_set)

    def rows(self) -> Iterator[int]:
        return iter(self._row_set)

    def set(self, row: int, column: str, value: float) -> None:
        column_id = self.column_id(column)
        position = len(self._triples)
        self._triples.append((row, column_id, value))
        self._latest[(row, column_id)] = position
        self._row_set[row] = self._row_set.get(row, 0) + 1

    def get(self, row: int, column: str) -> float:
        column_id = self._column_ids.get(column)
        if column_id is None:
            return 0.0
        position = self._latest.get((row, column_id))
        if position is None:
            return 0.0
        return self._triples[position][2]

    def get_row(self, row: int) -> Dict[str, float]:
        result: Dict[str, float] = {}
        for (entry_row, column_id), position in self._latest.items():
            if entry_row == row:
                value = self._triples[position][2]
                if value != 0.0:
                    result[self._column_names[column_id]] = value
        return result

    def nnz(self) -> int:
        return sum(1 for position in self._latest.values() if self._triples[position][2] != 0.0)

    def triples(self) -> Iterator[Tuple[int, str, float]]:
        """Iterate over the *latest* value of every (row, column) pair."""
        for (row, column_id), position in self._latest.items():
            value = self._triples[position][2]
            if value != 0.0:
                yield row, self._column_names[column_id], value

    def delete_column(self, column: str) -> int:
        """Remove every entry of a column (a labeling function being deleted)."""
        column_id = self._column_ids.get(column)
        if column_id is None:
            return 0
        removed = 0
        for key in [k for k in self._latest if k[1] == column_id]:
            del self._latest[key]
            removed += 1
        return removed
