"""Sparse annotation matrices: LIL, COO and a frozen CSR.

Appendix C.2 of the paper studies how the physical representation of the
``Features`` and ``Labels`` abstract data structures affects runtime under the
three access patterns of the pipeline — materialization, updates, and queries —
and recommends: Features as LIL always; Labels as COO during development (fast
updates when labeling functions change) and LIL in production (fast row reads).

All classes here implement the same :class:`AnnotationMatrix` interface so the
pipeline can swap representations, and the Appendix-C benchmark measures the
same trade-offs the paper reports (LIL faster to query, COO faster to update).

:class:`CSRMatrix` extends the study to the *consumption* access pattern: once
featurization is done the matrix is read-only, and compressed sparse rows
(three flat numpy arrays) give contiguous row slices and vectorized
matrix-vector products for the label model and the discriminative step.  Both
mutable representations convert via ``to_csr()``; the featurizer can also
emit rows straight into a :class:`CSRBuilder` (``Featurizer.featurize_csr``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class AnnotationMatrix:
    """Interface shared by the sparse representations.

    Rows are candidates (keyed by integer candidate id); columns are named
    annotations (feature names or labeling-function names) interned to integer
    column ids.  Values are floats (feature values or labels in {-1, 0, +1},
    where 0/absent means "no annotation").
    """

    def __init__(self) -> None:
        self._column_ids: Dict[str, int] = {}
        self._column_names: List[str] = []

    # --------------------------------------------------------------- columns
    def column_id(self, name: str) -> int:
        """Intern a column name, returning its integer id."""
        if name not in self._column_ids:
            self._column_ids[name] = len(self._column_names)
            self._column_names.append(name)
        return self._column_ids[name]

    @property
    def column_names(self) -> List[str]:
        return list(self._column_names)

    @property
    def n_columns(self) -> int:
        return len(self._column_names)

    # ------------------------------------------------------------ interface
    @property
    def n_rows(self) -> int:
        raise NotImplementedError

    def set(self, row: int, column: str, value: float) -> None:
        raise NotImplementedError

    def get_row(self, row: int) -> Dict[str, float]:
        raise NotImplementedError

    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        raise NotImplementedError

    def rows(self) -> Iterator[int]:
        raise NotImplementedError

    # ------------------------------------------------------------- utilities
    def set_many(self, entries: Iterable[Tuple[int, str, float]]) -> None:
        for row, column, value in entries:
            self.set(row, column, value)

    def to_dense(self, row_order: Optional[Sequence[int]] = None) -> np.ndarray:
        """Materialize a dense ``(n_rows, n_columns)`` array (small matrices only)."""
        row_list = list(row_order) if row_order is not None else sorted(self.rows())
        dense = np.zeros((len(row_list), self.n_columns))
        column_ids = self._column_ids
        for i, row in enumerate(row_list):
            for name, value in self.get_row(row).items():
                dense[i, column_ids[name]] = value
        return dense

    def density(self) -> float:
        total = self.n_rows * self.n_columns
        return self.nnz() / total if total else 0.0

    def to_csr(self, row_order: Optional[Sequence[int]] = None) -> "CSRMatrix":
        """Freeze this matrix into compressed sparse rows.

        Rows follow ``row_order`` when given, else ascending row id (the same
        convention as :meth:`to_dense`).  Column interning is preserved, so
        column ids and names agree with the source matrix.
        """
        row_list = list(row_order) if row_order is not None else sorted(self.rows())
        builder = CSRBuilder(column_ids=dict(self._column_ids))
        for row in row_list:
            builder.add_row(row, self.get_row(row).items())
        return builder.build()


class LILMatrix(AnnotationMatrix):
    """List-of-lists: each row stores a list of (column id, value) pairs.

    Retrieving an entire row is a single lookup; updating a value requires a
    scan of the row's sublist (paper Appendix C.2).
    """

    def __init__(self) -> None:
        super().__init__()
        self._rows: Dict[int, List[Tuple[int, float]]] = {}

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[int]:
        return iter(self._rows)

    def set(self, row: int, column: str, value: float) -> None:
        column_id = self.column_id(column)
        row_list = self._rows.setdefault(row, [])
        for index, (existing_column, _) in enumerate(row_list):
            if existing_column == column_id:
                if value == 0.0:
                    del row_list[index]
                else:
                    row_list[index] = (column_id, value)
                return
        if value != 0.0:
            row_list.append((column_id, value))

    def get(self, row: int, column: str) -> float:
        column_id = self._column_ids.get(column)
        if column_id is None:
            return 0.0
        for existing_column, value in self._rows.get(row, []):
            if existing_column == column_id:
                return value
        return 0.0

    def get_row(self, row: int) -> Dict[str, float]:
        return {
            self._column_names[column_id]: value
            for column_id, value in self._rows.get(row, [])
        }

    def nnz(self) -> int:
        return sum(len(row_list) for row_list in self._rows.values())

    @classmethod
    def from_coo(cls, coo: "COOMatrix") -> "LILMatrix":
        """Convert a COO matrix to LIL (the development → production switch)."""
        lil = cls()
        for row, column, value in coo.triples():
            lil.set(row, column, value)
        return lil


class COOMatrix(AnnotationMatrix):
    """Coordinate list: stores (row, column id, value) triples.

    Appending a new value is O(1); fetching a row requires a scan (amortized
    here with a lazily maintained row index so queries remain usable).
    """

    def __init__(self) -> None:
        super().__init__()
        self._triples: List[Tuple[int, int, float]] = []
        self._latest: Dict[Tuple[int, int], int] = {}
        self._row_set: Dict[int, int] = {}

    @property
    def n_rows(self) -> int:
        return len(self._row_set)

    def rows(self) -> Iterator[int]:
        return iter(self._row_set)

    def set(self, row: int, column: str, value: float) -> None:
        column_id = self.column_id(column)
        position = len(self._triples)
        self._triples.append((row, column_id, value))
        self._latest[(row, column_id)] = position
        self._row_set[row] = self._row_set.get(row, 0) + 1

    def get(self, row: int, column: str) -> float:
        column_id = self._column_ids.get(column)
        if column_id is None:
            return 0.0
        position = self._latest.get((row, column_id))
        if position is None:
            return 0.0
        return self._triples[position][2]

    def get_row(self, row: int) -> Dict[str, float]:
        result: Dict[str, float] = {}
        for (entry_row, column_id), position in self._latest.items():
            if entry_row == row:
                value = self._triples[position][2]
                if value != 0.0:
                    result[self._column_names[column_id]] = value
        return result

    def nnz(self) -> int:
        return sum(1 for position in self._latest.values() if self._triples[position][2] != 0.0)

    def triples(self) -> Iterator[Tuple[int, str, float]]:
        """Iterate over the *latest* value of every (row, column) pair."""
        for (row, column_id), position in self._latest.items():
            value = self._triples[position][2]
            if value != 0.0:
                yield row, self._column_names[column_id], value

    def delete_column(self, column: str) -> int:
        """Remove every entry of a column (a labeling function being deleted)."""
        column_id = self._column_ids.get(column)
        if column_id is None:
            return 0
        removed = 0
        for key in [k for k in self._latest if k[1] == column_id]:
            del self._latest[key]
            removed += 1
        return removed


class CSRBuilder:
    """Append-only builder for :class:`CSRMatrix` (one pass, no intermediates).

    The featurizer streams each candidate's features through
    :meth:`add_indicator_row`; conversion from LIL/COO streams
    ``(name, value)`` pairs through :meth:`add_row`.
    """

    def __init__(self, column_ids: Optional[Dict[str, int]] = None) -> None:
        self._column_ids: Dict[str, int] = dict(column_ids or {})
        names: List[str] = [""] * len(self._column_ids)
        for name, column_id in self._column_ids.items():
            names[column_id] = name
        self._column_names: List[str] = names
        self._indptr: List[int] = [0]
        self._indices: List[int] = []
        self._data: List[float] = []
        self._row_ids: List[int] = []

    def _column_id(self, name: str) -> int:
        column_id = self._column_ids.get(name)
        if column_id is None:
            column_id = len(self._column_names)
            self._column_ids[name] = column_id
            self._column_names.append(name)
        return column_id

    def add_row(self, row_id: int, items: Iterable[Tuple[str, float]]) -> None:
        """Append one row of (column name, value) pairs; zeros are skipped."""
        for name, value in items:
            if value != 0.0:
                self._indices.append(self._column_id(name))
                self._data.append(value)
        self._indptr.append(len(self._indices))
        self._row_ids.append(row_id)

    def add_indicator_row(self, row_id: int, names: Iterable[str]) -> None:
        """Append one binary-indicator row, deduplicating repeated features.

        Keeps first-occurrence order, matching the ``{name: 1.0}`` dict rows
        the legacy featurization path produces.
        """
        seen = set()
        for name in names:
            if name in seen:
                continue
            seen.add(name)
            self._indices.append(self._column_id(name))
            self._data.append(1.0)
        self._indptr.append(len(self._indices))
        self._row_ids.append(row_id)

    def build(self) -> "CSRMatrix":
        return CSRMatrix(
            indptr=np.asarray(self._indptr, dtype=np.int64),
            indices=np.asarray(self._indices, dtype=np.int64),
            data=np.asarray(self._data, dtype=np.float64),
            row_ids=list(self._row_ids),
            column_ids=self._column_ids,
            column_names=self._column_names,
        )


class CSRMatrix(AnnotationMatrix):
    """Compressed sparse rows: a frozen, numpy-backed annotation matrix.

    Three flat arrays (``indptr``, ``indices``, ``data``) hold every stored
    entry; row ``i``'s entries live in the contiguous slice
    ``indptr[i]:indptr[i+1]``.  Queries are array slices and the matrix-vector
    product the downstream models need is a vectorized ``reduceat`` — the
    representation of choice once annotations stop changing (the pipeline's
    "consume" phase, after materialization and updates are done).

    CSR is immutable: :meth:`set` raises.  Build one with
    :class:`CSRBuilder`, :meth:`from_rows`, or ``to_csr()`` on LIL/COO.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        row_ids: List[int],
        column_ids: Dict[str, int],
        column_names: List[str],
    ) -> None:
        super().__init__()
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self._row_ids = list(row_ids)
        self._row_pos = {row: i for i, row in enumerate(self._row_ids)}
        self._column_ids = dict(column_ids)
        self._column_names = list(column_names)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Dict[str, float]],
        row_ids: Optional[Sequence[int]] = None,
    ) -> "CSRMatrix":
        """Build from per-row feature dicts (row ids default to positions)."""
        if row_ids is not None and len(row_ids) != len(rows):
            raise ValueError(f"Got {len(rows)} rows but {len(row_ids)} row ids")
        builder = CSRBuilder()
        for position, row in enumerate(rows):
            row_id = row_ids[position] if row_ids is not None else position
            builder.add_row(row_id, row.items())
        return builder.build()

    # --------------------------------------------------------------- interface
    @property
    def n_rows(self) -> int:
        return len(self._row_ids)

    @property
    def row_ids(self) -> List[int]:
        return list(self._row_ids)

    def rows(self) -> Iterator[int]:
        return iter(self._row_ids)

    def set(self, row: int, column: str, value: float) -> None:
        raise TypeError(
            "CSRMatrix is immutable; build a new one via CSRBuilder or to_csr()"
        )

    def row_entries(self, position: int) -> Tuple[np.ndarray, np.ndarray]:
        """(column ids, values) of the row at ``position`` — zero-copy views."""
        start, end = self.indptr[position], self.indptr[position + 1]
        return self.indices[start:end], self.data[start:end]

    def get_row(self, row: int) -> Dict[str, float]:
        position = self._row_pos.get(row)
        if position is None:
            return {}
        columns, values = self.row_entries(position)
        return {
            self._column_names[int(c)]: float(v) for c, v in zip(columns, values)
        }

    def get(self, row: int, column: str) -> float:
        position = self._row_pos.get(row)
        column_id = self._column_ids.get(column)
        if position is None or column_id is None:
            return 0.0
        columns, values = self.row_entries(position)
        matches = np.nonzero(columns == column_id)[0]
        return float(values[matches[-1]]) if matches.size else 0.0

    def nnz(self) -> int:
        return int(self.data.size)

    # ---------------------------------------------------------------- numerics
    def to_dense(self, row_order: Optional[Sequence[int]] = None) -> np.ndarray:
        """Vectorized densification (row order defaults to stored order)."""
        if row_order is None:
            positions = np.arange(self.n_rows)
        else:
            positions = np.asarray([self._row_pos[row] for row in row_order])
        dense = np.zeros((len(positions), self.n_columns))
        for out_row, position in enumerate(positions):
            columns, values = self.row_entries(int(position))
            dense[out_row, columns] = values
        return dense

    def dot(self, weights: np.ndarray) -> np.ndarray:
        """Matrix-vector product ``A @ weights`` over the stored rows.

        ``weights`` is indexed by this matrix's column ids.  Empty rows
        contribute 0.
        """
        weights = np.asarray(weights)
        if weights.shape[0] != self.n_columns:
            raise ValueError(
                f"weights has {weights.shape[0]} entries for {self.n_columns} columns"
            )
        if self.data.size == 0:
            return np.zeros(self.n_rows)
        products = self.data * weights[self.indices]
        # Per-row segment sums via reduceat, restricted to non-empty rows:
        # reduceat mis-handles zero-length segments (it returns the element at
        # the segment start), and summing per row keeps rounding error bounded
        # by each row's own nnz — a whole-matrix prefix sum would accumulate
        # cancellation error proportional to the total nnz instead.
        out = np.zeros(self.n_rows)
        starts = self.indptr[:-1]
        nonempty = self.indptr[1:] > starts
        if nonempty.any():
            # Consecutive non-empty starts delimit exactly one row's entries
            # (empty rows in between contribute zero-width segments).
            out[nonempty] = np.add.reduceat(products, starts[nonempty])
        return out

    def select_positions(self, positions: Sequence[int]) -> "CSRMatrix":
        """A new CSR holding the rows at the given positions (in that order)."""
        indptr = [0]
        chunks_idx: List[np.ndarray] = []
        chunks_val: List[np.ndarray] = []
        row_ids: List[int] = []
        for position in positions:
            columns, values = self.row_entries(int(position))
            chunks_idx.append(columns)
            chunks_val.append(values)
            indptr.append(indptr[-1] + len(columns))
            row_ids.append(self._row_ids[int(position)])
        return CSRMatrix(
            indptr=np.asarray(indptr, dtype=np.int64),
            indices=(
                np.concatenate(chunks_idx) if chunks_idx else np.zeros(0, dtype=np.int64)
            ),
            data=(
                np.concatenate(chunks_val) if chunks_val else np.zeros(0, dtype=np.float64)
            ),
            row_ids=row_ids,
            column_ids=self._column_ids,
            column_names=self._column_names,
        )
