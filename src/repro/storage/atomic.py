"""Durable atomic file replacement: write-temp + fsync + rename + dir fsync.

Every persistent artifact in the repository — shard manifests, per-shard
``stages.json`` checkpoints, pickled slabs, trainer checkpoints, KB segments
and the KB snapshot pointer — is rewritten in place via the classic
write-temp-then-``os.replace`` idiom.  The rename alone is *not* durable: the
kernel may reorder the rename ahead of the temp file's data blocks reaching
disk, so a power loss shortly after ``os.replace`` can leave a file that is
**visible under its final name but truncated or empty** — exactly the
corruption the atomic idiom exists to prevent.  (A process crash without a
system crash is safe either way; the window here is machine/power failure.)

:func:`atomic_write` closes that window with the full durability sequence:

1. write the payload to ``<name>.tmp`` in the *same directory* (same
   filesystem, so the rename stays atomic),
2. ``flush`` + ``os.fsync`` the temp file — its bytes are on disk before the
   rename can make them visible,
3. ``os.replace`` onto the final name,
4. ``os.fsync`` the parent directory — the rename itself (the directory
   entry) is on disk, so the new file cannot vanish after a crash.

If the writer raises (or the process dies) before step 3, the temp file is
removed/orphaned and the previous complete file stays untouched; after step 3
the new complete file stands.  There is no state in which a partial file is
visible under the final name.

Directory fsync is skipped on platforms that cannot ``open`` a directory
(Windows); step 2 is the load-bearing half everywhere.

Tests inject crashes by monkeypatching this module's ``os.fsync`` /
``os.replace`` to raise mid-sequence — see ``tests/test_atomic.py``.  The
chaos suite goes further through the :mod:`repro.testing.faults` hook inside
:func:`atomic_write`: between the temp-file fsync and the rename an active
:class:`~repro.testing.faults.FaultPlan` may corrupt the temp file (torn
write, bit flip — the rename then publishes the corruption, modelling disk
misbehaviour the durability sequence cannot see) or raise a transient
``EIO``/``ENOSPC``.  :func:`atomic_write_bytes` retries those transient
errnos under a :class:`~repro.storage.retry.RetryPolicy`; corruption is the
read side's job (:mod:`repro.storage.integrity` checksums).
"""

from __future__ import annotations

import contextlib
import errno as errno_module
import os
import threading
from pathlib import Path
from typing import IO, Iterator, List, Optional, Union

from repro.storage.retry import RetryPolicy
from repro.testing import faults

PathLike = Union[str, os.PathLike]

#: OSError errnos treated as transient (worth retrying) by
#: :func:`atomic_write_bytes`.  Everything else — including the errno-less
#: OSErrors the crash-injection tests raise — propagates immediately.
TRANSIENT_ERRNOS = frozenset(
    {errno_module.EIO, errno_module.ENOSPC, errno_module.EAGAIN}
)

#: Default policy for transient-IO retries around durable writes.
DEFAULT_IO_RETRY = RetryPolicy(attempts=3, base_delay=0.02, max_delay=0.5)

#: Telemetry of transient-IO retries: one dict per retried failure
#: ({"path", "errno", "attempt"}), appended under a lock.  The chaos suite
#: reads this to prove an injected EIO was *retried* (detected), not
#: silently absorbed.  Bounded by trimming the oldest entries.
_RETRY_EVENTS: List[dict] = []
_RETRY_LOCK = threading.Lock()
_RETRY_EVENTS_MAX = 1024


def is_transient_io_error(error: BaseException) -> bool:
    """True for OSErrors whose errno marks a retry-worthy transient fault."""
    return isinstance(error, OSError) and error.errno in TRANSIENT_ERRNOS


def retry_events() -> List[dict]:
    """A copy of the recorded transient-IO retry events."""
    with _RETRY_LOCK:
        return list(_RETRY_EVENTS)


def clear_retry_events() -> None:
    with _RETRY_LOCK:
        _RETRY_EVENTS.clear()


def _record_retry(path: PathLike, error: OSError, attempt: int) -> None:
    with _RETRY_LOCK:
        _RETRY_EVENTS.append(
            {"path": str(path), "errno": error.errno, "attempt": attempt}
        )
        if len(_RETRY_EVENTS) > _RETRY_EVENTS_MAX:
            del _RETRY_EVENTS[: -_RETRY_EVENTS_MAX]


def fsync_file(handle: IO) -> None:
    """Flush and fsync one open file handle (step 2 of the sequence)."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_dir(path: PathLike) -> None:
    """Fsync a directory so a just-renamed entry inside it is durable.

    Best-effort: platforms that cannot open a directory for reading
    (Windows) or filesystems that reject directory fsync are skipped —
    the file-level fsync before the rename already happened.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_write(path: PathLike, mode: str = "wb") -> Iterator[IO]:
    """Context manager: write ``path`` atomically *and* durably.

    Yields a file handle open on ``<path>.tmp``; on clean exit the temp file
    is fsynced, renamed over ``path``, and the parent directory is fsynced.
    On an exception the temp file is removed and ``path`` is untouched.

    ``mode`` must be a write mode (``"wb"`` or ``"w"``).
    """
    target = Path(path)
    tmp_path = target.with_name(target.name + ".tmp")
    handle = open(tmp_path, mode)
    try:
        yield handle
        fsync_file(handle)
        plan = faults.active_plan()
        if plan is not None:
            plan.on_durable_write(tmp_path, target)
    except BaseException:
        handle.close()
        tmp_path.unlink(missing_ok=True)
        raise
    finally:
        if not handle.closed:
            handle.close()
    os.replace(tmp_path, target)
    fsync_dir(target.parent)


def atomic_write_bytes(
    path: PathLike, payload: bytes, retry: Optional[RetryPolicy] = None
) -> None:
    """Atomically and durably replace ``path`` with ``payload``.

    Transient IO errors (:data:`TRANSIENT_ERRNOS` — a flaky disk's ``EIO``,
    a momentary ``ENOSPC``) are retried under ``retry`` (default
    :data:`DEFAULT_IO_RETRY`) with bounded exponential backoff; each retried
    failure is recorded in :func:`retry_events`.  Non-transient OSErrors
    propagate immediately, preserving the crash-injection tests' semantics.
    """
    policy = retry or DEFAULT_IO_RETRY
    for attempt in range(policy.attempts):
        try:
            with atomic_write(path, "wb") as handle:
                handle.write(payload)
            return
        except OSError as error:
            if not is_transient_io_error(error) or attempt + 1 >= policy.attempts:
                raise
            _record_retry(path, error, attempt)
            policy.backoff(attempt)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically and durably replace ``path`` with ``text`` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"))
