"""Storage substrate: relational engine, sparse annotation matrices, knowledge base.

Fonduer stores candidates, features, labels and the output KB in PostgreSQL
(paper Section 5.1) and studies the effect of sparse-matrix representations on
the Features/Labels tables (Appendix C.2).  This subpackage substitutes an
embedded, dependency-free relational engine with the same roles:

* :mod:`repro.storage.database` — typed tables, inserts, filtered selects,
  secondary indexes, JSON persistence.
* :mod:`repro.storage.sparse` — the two sparse-matrix representations the paper
  compares: list-of-lists (LIL) and coordinate list (COO).
* :mod:`repro.storage.kb` — relation schemas and the output knowledge base.
"""

from repro.storage.database import Database, TableSchema, ColumnType
from repro.storage.sparse import COOMatrix, LILMatrix, AnnotationMatrix
from repro.storage.kb import KnowledgeBase, RelationSchema

__all__ = [
    "AnnotationMatrix",
    "COOMatrix",
    "ColumnType",
    "Database",
    "KnowledgeBase",
    "LILMatrix",
    "RelationSchema",
    "TableSchema",
]
