"""Storage substrate: relational engine, sparse annotation matrices, knowledge base.

Fonduer stores candidates, features, labels and the output KB in PostgreSQL
(paper Section 5.1) and studies the effect of sparse-matrix representations on
the Features/Labels tables (Appendix C.2).  This subpackage substitutes an
embedded, dependency-free relational engine with the same roles:

* :mod:`repro.storage.database` — typed tables, inserts, filtered selects,
  secondary indexes, JSON persistence.
* :mod:`repro.storage.sparse` — the two sparse-matrix representations the paper
  compares: list-of-lists (LIL) and coordinate list (COO).
* :mod:`repro.storage.kb` — relation schemas and the output knowledge base.
* :mod:`repro.storage.shards` — the out-of-core sharded corpus store behind
  streaming mode: content-addressed on-disk shards with per-stage slabs, a
  checkpoint manifest and an LRU bound on resident shards.
* :mod:`repro.storage.atomic` — durable atomic file replacement (fsynced
  temp + rename + directory fsync) shared by every persistent writer.
* :mod:`repro.storage.lru` — the shared bounded LRU behind every residency
  cache (resident shards, slab batch sources, KB segments).

The *queryable* KB store and its serving layer live in :mod:`repro.kb`.
"""

from repro.storage.atomic import atomic_write, atomic_write_bytes, atomic_write_text
from repro.storage.database import Database, TableSchema, ColumnType
from repro.storage.lru import BoundedLRU
from repro.storage.kb import KnowledgeBase, RelationSchema
from repro.storage.shards import (
    SHARD_SCHEMA_VERSION,
    FeatureSlab,
    ShardHandle,
    ShardStore,
    concat_feature_slabs,
    concat_label_slabs,
    partition_corpus,
    shard_content_id,
)
from repro.storage.sparse import AnnotationMatrix, COOMatrix, CSRMatrix, LILMatrix

__all__ = [
    "AnnotationMatrix",
    "BoundedLRU",
    "COOMatrix",
    "CSRMatrix",
    "ColumnType",
    "Database",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "FeatureSlab",
    "KnowledgeBase",
    "LILMatrix",
    "RelationSchema",
    "SHARD_SCHEMA_VERSION",
    "ShardHandle",
    "ShardStore",
    "TableSchema",
    "concat_feature_slabs",
    "concat_label_slabs",
    "partition_corpus",
    "shard_content_id",
]
