"""Relation schemas and the output knowledge base.

Phase 1 of the pipeline (paper Section 3.2) asks the user for a target schema
``SR(T1, ..., Tn)`` and initializes an empty relational database for the output
KB.  :class:`RelationSchema` captures that schema; :class:`KnowledgeBase` is the
relational store the classified relation mentions are written into and the
object the evaluation code compares against gold KBs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.storage.database import ColumnType, Database


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one n-ary relation: its name and the names of its entity types.

    Example (paper Example 3.2)::

        RelationSchema("has_collector_current", ("transistor_part", "current"))
    """

    name: str
    entity_types: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.entity_types:
            raise ValueError("A relation schema needs at least one entity type")
        if len(set(self.entity_types)) != len(self.entity_types):
            raise ValueError("Entity type names must be distinct")

    @property
    def arity(self) -> int:
        return len(self.entity_types)

    def to_sql(self) -> str:
        """The CREATE TABLE statement the paper shows for a schema."""
        columns = ",\n    ".join(f"{t} varchar" for t in self.entity_types)
        return f"CREATE TABLE {self.name} (\n    {columns});"


class KnowledgeBase:
    """The output KB: one relational table per relation schema.

    Entries are tuples of entity strings (normalized to lowercase, stripped) —
    the relation *mentions* classified as true, deduplicated to entity level as
    in the paper's comparison with existing KBs (Table 3).
    """

    def __init__(self, schemas: Sequence[RelationSchema], name: str = "kb") -> None:
        self.name = name
        self.schemas: Dict[str, RelationSchema] = {}
        self._database = Database(name)
        for schema in schemas:
            self.add_schema(schema)

    def add_schema(self, schema: RelationSchema) -> None:
        if schema.name in self.schemas:
            raise ValueError(f"Relation {schema.name!r} already registered")
        self.schemas[schema.name] = schema
        columns = [(entity_type, ColumnType.TEXT) for entity_type in schema.entity_types]
        self._database.create_table(schema.name, columns)

    # ------------------------------------------------------------------ DML
    @staticmethod
    def normalize(value: str) -> str:
        return " ".join(str(value).strip().lower().split())

    def add(self, relation: str, entities: Sequence[str]) -> bool:
        """Insert one relation entry; returns False when it was already present."""
        schema = self._schema(relation)
        if len(entities) != schema.arity:
            raise ValueError(
                f"Relation {relation!r} expects {schema.arity} entities, got {len(entities)}"
            )
        normalized = tuple(self.normalize(e) for e in entities)
        if self.contains(relation, normalized):
            return False
        self._database.table(relation).insert(
            dict(zip(schema.entity_types, normalized))
        )
        return True

    def add_many(self, relation: str, entries: Iterable[Sequence[str]]) -> int:
        added = 0
        for entities in entries:
            if self.add(relation, entities):
                added += 1
        return added

    # ------------------------------------------------------------------ DQL
    def contains(self, relation: str, entities: Sequence[str]) -> bool:
        schema = self._schema(relation)
        normalized = {t: self.normalize(e) for t, e in zip(schema.entity_types, entities)}
        return bool(self._database.table(relation).select(where=normalized, limit=1))

    def entries(self, relation: str) -> List[Tuple[str, ...]]:
        schema = self._schema(relation)
        return [
            tuple(row[t] for t in schema.entity_types)
            for row in self._database.table(relation).all()
        ]

    def size(self, relation: Optional[str] = None) -> int:
        if relation is not None:
            return len(self._database.table(self._schema(relation).name))
        return sum(len(self._database.table(name)) for name in self.schemas)

    def relations(self) -> List[str]:
        return sorted(self.schemas)

    def __contains__(self, item: Tuple[str, Sequence[str]]) -> bool:
        relation, entities = item
        return self.contains(relation, entities)

    def __iter__(self) -> Iterator[Tuple[str, Tuple[str, ...]]]:
        for relation in self.relations():
            for entry in self.entries(relation):
                yield relation, entry

    # ---------------------------------------------------------- persistence
    def save(self, path: str) -> None:
        self._database.save(path)

    def _schema(self, relation: str) -> RelationSchema:
        if relation not in self.schemas:
            raise KeyError(f"Unknown relation {relation!r}")
        return self.schemas[relation]
