"""Out-of-core sharded corpus store: the disk substrate of streaming mode.

The paper runs KBC over millions of richly formatted documents by leaning on
PostgreSQL as its spill substrate (Section 5.1, Appendix C.2).  This module is
our equivalent: a :class:`ShardStore` partitions a corpus into fixed-size,
*content-addressed* shards and persists every stage's per-shard output as an
on-disk slab, so corpus size is bounded by disk instead of memory.

Layout under the store's ``workdir``::

    workdir/
      manifest.json                    # shard order, ids, membership
      shards/
        shard-00000-<shard_id>/
          stages.json                  # this shard's per-stage checkpoint records
          docs.pkl                     # parse slab: pickled Document batch
          nodes.npz                    # node slab: per-doc pre/post interval tables
          candidates.pkl               # candidate slab: per-doc ExtractionResults
          candidates_meta.json         # light view: (doc, entity tuple) + stats
          features.npz                 # featurize slab: local CSR arrays
          feature_columns.json         # local column interning of the slab
          labels.npy                   # label slab: dense (n_cands, n_lfs) block

The manifest holds only shard identity and membership, written once per
``open_corpus``; per-stage checkpoint records live in each shard's own
``stages.json``, so checkpointing one shard × stage rewrites one small file —
O(1) per boundary instead of O(corpus).

Content addressing
------------------
A shard's id is the combined content hash of its member raw documents (path +
content + format), truncated for readability.  Partitioning is positional
(chunks of ``shard_size`` documents in corpus order), so editing one
document's content changes exactly one shard id: every other shard keeps its
id, its manifest stage records and its slabs, and a re-run recomputes one
shard only.

Checkpoint / resume
-------------------
The manifest records, per shard and per stage, the derived cache key
``H(... | operator fingerprint)`` under which the stage last completed.  A
stage is *resumable-complete* when the recorded key matches the key the
current configuration derives **and** the slab file exists — so killing the
process at any point and re-invoking resumes from the last completed
shard × stage boundary, and a configuration change (different operator
fingerprint) correctly re-runs from the first affected stage.

Memory bound
------------
At most ``max_resident_shards`` shards' heavy objects (parsed documents,
candidate sets) are held in an LRU; everything else lives in the slabs and is
re-read on demand.  Feature and label slabs are flat numpy arrays that
concatenate into the global matrices without ever materializing per-candidate
dict rows (:func:`concat_feature_slabs`, :func:`concat_label_slabs`).

Multiprocess access contract
----------------------------
Slab files are written atomically (write-temp + fsync + rename) and are
immutable once their stage record lands, which makes them safe shared-memory
currency between processes: the persistent worker pool
(:mod:`repro.engine.pool`) forks workers that each hold their *own*
``ShardStore`` copy (own LRU, same ``workdir``) and read/write slab files
directly — only result statistics cross process boundaries.  The one
structure that must not be written concurrently is a shard's ``stages.json``:
by convention exactly one process (the streaming parent) invalidates and
marks stage records, in shard order, after the slab writes it is recording
have completed.  Slab writes themselves are idempotent (same content ⇒ same
bytes), so a crashed worker's partial progress is simply overwritten on
retry.

Read-side integrity
-------------------
Every slab write serializes its payload to bytes first, records the
payload's sha256 in the stage record (``"checksums"``), and only then hits
disk — so the recorded checksum reflects *intent*, and a torn write or bit
flip between intent and disk is detectable by construction.  Reads verify
under the store's :class:`~repro.storage.integrity.IntegrityPolicy`
(``off``/``sample``/``always``); resume checks
(:meth:`ShardStore.stage_complete`) always verify when the policy is
enabled.  A corrupt artifact is quarantined under ``<workdir>/quarantine/``
and either *repaired in place* — when a repairer is registered
(:meth:`ShardStore.set_repairer`; the streaming pipeline registers one that
recomputes exactly the corrupt shard-stage through the engine key chain) —
or its stage record is dropped and :class:`CorruptArtifactError` raised, so
the normal resume machinery recomputes it on the next run.  Forked pool
workers never write checkpoint records, so their corruption handling
detects and raises but leaves ``stages.json`` to the parent.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.candidates.extractor import ExtractionResult
from repro.data_model.context import Document
from repro.data_model.nodes import span_interval
from repro.engine.fingerprint import combine_keys, raw_document_fingerprint
from repro.parsing.corpus import RawDocument
from repro.storage.atomic import atomic_write_bytes, atomic_write_text
from repro.storage.integrity import (
    DEFAULT_SAMPLE_EVERY,
    QUARANTINE_DIR,
    CorruptArtifactError,
    IntegrityPolicy,
    file_checksum,
    payload_checksum,
    quarantine_count,
    quarantine_file,
)
from repro.storage.lru import BoundedLRU
from repro.storage.sparse import CSRBuilder, CSRMatrix

#: Version of the on-disk shard layout; bumped on incompatible changes.  A
#: manifest written under a different version is discarded (safe rebuild).
SHARD_SCHEMA_VERSION = 1

#: Stage names in execution order, with the slab artifact each one emits.
#: ``marginals`` is corpus-global (the label model's EM reads every shard's
#: label slab) but its output is still sliced back into per-shard slabs, which
#: is what lets the training runtime stream feature rows *and* their marginal
#: targets shard by shard with bounded residency.
STAGE_ARTIFACTS: Dict[str, Tuple[str, ...]] = {
    "parse": ("docs.pkl",),
    "nodes": ("nodes.npz",),
    "candidates": ("candidates.pkl", "candidates_meta.json"),
    "featurize": ("features.npz", "feature_columns.json"),
    "label": ("labels.npy",),
    "marginals": ("marginals.npy",),
}


@dataclass
class ShardHandle:
    """One shard of the corpus: identity, membership and stage records.

    Handles are what streaming stages consume and emit instead of in-memory
    lists: a handle names the shard's slabs on disk, and the store decides
    whether the heavy objects behind it are resident or must be re-read.
    """

    position: int
    shard_id: str
    dirname: str
    doc_names: List[str]
    doc_paths: List[str]
    raw_fingerprints: List[str]
    stages: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: The member raw documents (attached by ``open_corpus``; not persisted).
    #: When the store has a lazy loader these carry empty ``content`` — use
    #: :meth:`ShardStore.shard_raws` to obtain full documents.
    raws: Optional[List[RawDocument]] = field(default=None, repr=False)

    @property
    def n_documents(self) -> int:
        return len(self.doc_paths)

    def to_manifest(self) -> Dict[str, Any]:
        # Identity and membership only: stage records live in the shard's own
        # stages.json so a checkpoint never rewrites the whole manifest.
        return {
            "position": self.position,
            "shard_id": self.shard_id,
            "dirname": self.dirname,
            "doc_names": list(self.doc_names),
            "doc_paths": list(self.doc_paths),
            "raw_fingerprints": list(self.raw_fingerprints),
        }

    @classmethod
    def from_manifest(cls, record: Dict[str, Any]) -> "ShardHandle":
        return cls(
            position=int(record["position"]),
            shard_id=str(record["shard_id"]),
            dirname=str(record["dirname"]),
            doc_names=list(record["doc_names"]),
            doc_paths=list(record["doc_paths"]),
            raw_fingerprints=list(record["raw_fingerprints"]),
        )


@dataclass
class FeatureSlab:
    """One shard's feature rows as a local CSR block.

    ``columns`` is the slab-local interning (first-occurrence order within the
    shard); :func:`concat_feature_slabs` remaps local column ids onto a global
    interning that is byte-identical to what the in-memory path produces.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    columns: List[str]

    @property
    def n_rows(self) -> int:
        return len(self.indptr) - 1


def shard_content_id(
    raws: Sequence[RawDocument] = (),
    fingerprints: Optional[Sequence[str]] = None,
) -> str:
    """Content-addressed shard id: combined hash of the member raw documents.

    ``fingerprints`` (precomputed per-document content hashes) takes
    precedence over hashing ``raws`` — the lazy corpus path streams documents
    once, keeps only their fingerprints, and must address shards identically.
    """
    if fingerprints is None:
        fingerprints = [raw_document_fingerprint(raw) for raw in raws]
    if not fingerprints:
        return "empty"
    return combine_keys(*fingerprints)[:16]


def partition_corpus(
    raws: Sequence[RawDocument], shard_size: int
) -> List[List[RawDocument]]:
    """Positional partition: chunks of ``shard_size`` documents in corpus order."""
    if shard_size < 1:
        raise ValueError("shard_size must be at least 1")
    raws = list(raws)
    return [raws[lo : lo + shard_size] for lo in range(0, len(raws), shard_size)]


class ShardStore:
    """Disk-resident shard storage with an LRU of resident shards.

    Parameters
    ----------
    workdir:
        Root directory of the store (created if missing).
    max_resident_shards:
        Upper bound on how many shards' heavy objects (parsed documents and
        candidate sets) are kept in memory at once.
    integrity:
        Read-side verification policy — ``"off"``, ``"sample"`` (default;
        every ``sample_every``-th slab read hashes its file, resume checks
        always do) or ``"always"``.
    sample_every:
        Sampling period of the ``"sample"`` policy.
    """

    def __init__(
        self,
        workdir: os.PathLike,
        max_resident_shards: int = 4,
        integrity: str = "sample",
        sample_every: int = DEFAULT_SAMPLE_EVERY,
    ) -> None:
        if max_resident_shards < 1:
            raise ValueError("max_resident_shards must be at least 1")
        self.workdir = Path(workdir)
        self.max_resident_shards = max_resident_shards
        self.shards_dir = self.workdir / "shards"
        self.manifest_path = self.workdir / "manifest.json"
        self.quarantine_dir = self.workdir / QUARANTINE_DIR
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self.shards: List[ShardHandle] = []
        # shard_id -> {"docs": [...], "candidates": [...]} — the residency LRU.
        self._resident: BoundedLRU = BoundedLRU(max_resident_shards)
        # Optional lazy loader: shard -> full raw documents (set by
        # open_corpus when the caller streams raw content from disk instead
        # of holding the whole corpus's text in memory).
        self._raw_loader: Optional[Any] = None
        # ---- read-side integrity state --------------------------------
        self._integrity = IntegrityPolicy(integrity, sample_every)
        # shard_id -> {artifact: sha256} of payloads written by *this*
        # process, pending adoption into the stage record at mark_stage.
        self._pending_checksums: Dict[str, Dict[str, str]] = {}
        # Optional (shard, stage) -> None recompute hook healing corrupt
        # artifacts in place (see set_repairer / docs/RELIABILITY.md).
        self._repairer: Optional[Callable[[ShardHandle, str], None]] = None
        self._repairing: set = set()
        # The process that owns stages.json writes (forked pool workers
        # inherit a copy of the store but must never persist records).
        self._owner_pid = os.getpid()
        # Telemetry: every detection event plus running counters, surfaced
        # through integrity_report() and the chaos suite's assertions.
        self.integrity_events: List[Dict[str, Any]] = []
        self.n_verified = 0
        self.n_corrupt = 0
        self.n_repaired = 0

    # ------------------------------------------------------------- manifest
    def _load_manifest(self) -> List[ShardHandle]:
        if not self.manifest_path.exists():
            return []
        try:
            payload = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as error:
            # A corrupt manifest must not silently discard every checkpoint:
            # quarantine it (post-mortem evidence) and rebuild.  Shard dirs
            # are content-addressed, so open_corpus re-derives the same
            # dirnames and re-adopts each shard's stages.json records.
            self._note_corruption(
                "manifest", "manifest.json", f"unreadable: {error}",
                quarantine_file(self.manifest_path, self.quarantine_dir),
            )
            return []
        except OSError:
            return []
        if payload.get("schema_version") != SHARD_SCHEMA_VERSION:
            return []
        return [ShardHandle.from_manifest(r) for r in payload.get("shards", [])]

    def save_manifest(self) -> None:
        """Persist shard identity/membership atomically and durably.

        Called once per ``open_corpus`` — per-boundary checkpoints go to each
        shard's own ``stages.json`` instead, so checkpoint cost is O(1) in
        the number of shards.
        """
        payload = {
            "schema_version": SHARD_SCHEMA_VERSION,
            "n_shards": len(self.shards),
            "shards": [shard.to_manifest() for shard in self.shards],
        }
        atomic_write_text(self.manifest_path, json.dumps(payload, indent=2, sort_keys=True))

    def _stage_records_path(self, shard: ShardHandle) -> Path:
        return self.shards_dir / shard.dirname / "stages.json"

    def _load_stage_records(self, shard: ShardHandle) -> Dict[str, Dict[str, Any]]:
        path = self._stage_records_path(shard)
        if not path.exists():
            return {}
        try:
            return dict(json.loads(path.read_text()))
        except json.JSONDecodeError as error:
            # Corrupt checkpoint records read as "nothing completed" (the
            # slabs recompute), but the evidence is preserved and counted.
            self._note_corruption(
                shard.dirname, "stages.json", f"unreadable: {error}",
                quarantine_file(path, self.quarantine_dir),
            )
            return {}
        except OSError:
            return {}

    def open_corpus(
        self,
        raws: Sequence[RawDocument],
        shard_size: int,
        fingerprints: Optional[Sequence[str]] = None,
        raw_loader: Optional[Any] = None,
    ) -> List[ShardHandle]:
        """Partition a corpus into shards, reconciling with the manifest.

        A shard whose position *and* content-addressed id match an existing
        manifest record keeps that record (and therefore its completed-stage
        checkpoints from ``stages.json``); a mismatch — the document set at
        that position changed — replaces the record, drops its stale slab
        directory, and the shard starts from scratch.  Trailing manifest
        records beyond the new corpus length are dropped the same way.

        ``fingerprints`` (one per raw document, aligned with ``raws``) lets a
        caller that streamed raw content from disk supply precomputed content
        hashes; with it, ``raws`` may carry empty ``content`` and
        ``raw_loader`` (shard → full raw documents) is used by
        :meth:`shard_raws` to materialize a shard's documents on demand — the
        whole corpus's text is then never resident at once.
        """
        if fingerprints is not None and len(fingerprints) != len(raws):
            raise ValueError(
                f"Got {len(raws)} documents but {len(fingerprints)} fingerprints"
            )
        previous = {shard.position: shard for shard in self._load_manifest()}
        shards: List[ShardHandle] = []
        raws = list(raws)
        for position, members in enumerate(partition_corpus(raws, shard_size)):
            lo = position * shard_size
            member_fps = (
                list(fingerprints[lo : lo + len(members)])
                if fingerprints is not None
                else [raw_document_fingerprint(raw) for raw in members]
            )
            shard_id = shard_content_id(fingerprints=member_fps)
            dirname = f"shard-{position:05d}-{shard_id}"
            old = previous.pop(position, None)
            if old is not None and old.shard_id == shard_id:
                shard = old
                shard.stages = self._load_stage_records(shard)
            else:
                if old is not None:
                    self._drop_shard_dir(old)
                shard = ShardHandle(
                    position=position,
                    shard_id=shard_id,
                    dirname=dirname,
                    doc_names=[raw.name for raw in members],
                    doc_paths=[raw.path or raw.name for raw in members],
                    raw_fingerprints=member_fps,
                )
                # Re-adopt any stage records already on disk for this
                # content-addressed dirname: after a quarantined (corrupt)
                # manifest the handle is "fresh" but the shard's own
                # stages.json still holds its checkpoints, and stage keys —
                # not the manifest — decide whether they are reusable.
                shard.stages = self._load_stage_records(shard)
            shard.raws = list(members)
            (self.shards_dir / shard.dirname).mkdir(parents=True, exist_ok=True)
            shards.append(shard)
        for old in previous.values():
            self._drop_shard_dir(old)
        self.shards = shards
        self._raw_loader = raw_loader
        self.save_manifest()
        return shards

    def open_existing(self) -> List[ShardHandle]:
        """Adopt the shards already on disk without a corpus in hand.

        ``python -m repro verify`` inspects a workdir as-is: the manifest
        supplies the shard handles and each shard's ``stages.json`` its
        completed-stage records (checksums included), with no reconciliation
        and no raw documents — enough for :meth:`verify_artifacts` and the
        slab loaders, not for recomputation.
        """
        self.shards = self._load_manifest()
        for shard in self.shards:
            shard.stages = self._load_stage_records(shard)
        return self.shards

    def shard_raws(self, shard: ShardHandle) -> List[RawDocument]:
        """This shard's full raw documents (via the lazy loader when set)."""
        if self._raw_loader is not None:
            return list(self._raw_loader(shard))
        return list(shard.raws or [])

    def _drop_shard_dir(self, shard: ShardHandle) -> None:
        shutil.rmtree(self.shards_dir / shard.dirname, ignore_errors=True)
        self._resident.pop(shard.shard_id, None)

    # ------------------------------------------------------------ stage keys
    def stage_complete(self, shard: ShardHandle, stage: str, key: str) -> bool:
        """True when this shard × stage completed under exactly this key.

        Requires the checkpoint record (key match), the slab artifacts on
        disk, *and* — when integrity verification is enabled — recorded
        checksums matching the files' bytes, so a crash between slab write
        and record update, a manually deleted slab, or bit rot since the
        write all read as incomplete.  With a repairer registered a corrupt
        artifact is healed in place and the stage stays complete; otherwise
        the corrupt file is quarantined, the record dropped, and the caller
        recomputes through the normal resume path.
        """
        record = shard.stages.get(stage)
        if not record or record.get("key") != key or not record.get("complete"):
            return False
        shard_dir = self.shards_dir / shard.dirname
        if not all(
            (shard_dir / artifact).exists()
            for artifact in STAGE_ARTIFACTS.get(stage, ())
        ):
            return False
        if self._integrity.enabled:
            try:
                self._maybe_verify(shard, stage, force=True)
            except CorruptArtifactError:
                return False
        return True

    def _persist_stage_records(self, shard: ShardHandle) -> None:
        atomic_write_text(
            self._stage_records_path(shard),
            json.dumps(shard.stages, indent=2, sort_keys=True),
        )

    def mark_stage(
        self,
        shard: ShardHandle,
        stage: str,
        key: str,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Checkpoint one shard × stage completion.

        Persists only this shard's ``stages.json`` (atomically and durably,
        via :func:`~repro.storage.atomic.atomic_write`), so per-boundary
        checkpoint cost is independent of how many shards the corpus has.
        """
        record: Dict[str, Any] = {"key": key, "complete": True}
        if extra:
            record.update(extra)
        # Adopt artifact checksums: ones shipped in ``extra`` (a pool worker
        # wrote the slabs and computed them at serialization time) win; this
        # process's own pending set (the serial path) fills the gaps.
        checksums = dict(record.get("checksums") or {})
        for artifact, digest in self.stage_checksums(shard, stage).items():
            checksums.setdefault(artifact, digest)
        if checksums:
            record["checksums"] = checksums
        shard.stages[stage] = record
        self._persist_stage_records(shard)

    def invalidate_stage(self, shard: ShardHandle, stage: str) -> bool:
        """Drop one shard × stage record before its slab is rewritten.

        Called at the start of every recompute: slab files are overwritten in
        place, so a still-standing record from a previous configuration could
        otherwise pair with a half-rewritten slab after a crash and be
        resurrected by a later run under the old configuration.  Dropping the
        record first makes any such crash read as "incomplete" everywhere.
        Returns whether a record existed.
        """
        if stage not in shard.stages:
            return False
        del shard.stages[stage]
        self._persist_stage_records(shard)
        return True

    # ------------------------------------------------------------- integrity
    def set_repairer(self, repairer: Optional[Callable[[ShardHandle, str], None]]) -> None:
        """Register the recompute hook used to heal corrupt artifacts.

        ``repairer(shard, stage)`` must rewrite that shard × stage's slab
        artifacts from their upstream inputs (the streaming pipeline derives
        one from its operator key chain).  Register in the parent only —
        forked pool workers must detect and raise, never repair, because
        repair rewrites ``stages.json`` which the parent owns.
        """
        self._repairer = repairer

    def stage_checksums(self, shard: ShardHandle, stage: str) -> Dict[str, str]:
        """Checksums of this stage's artifacts written by *this* process.

        Pool workers ship these back to the parent inside the stage result's
        ``extra`` dict (the parent never saw the payload bytes, so it cannot
        compute them itself); serially the parent's own pending set is read
        directly by :meth:`mark_stage`.
        """
        pending = self._pending_checksums.get(shard.shard_id, {})
        return {
            artifact: pending[artifact]
            for artifact in STAGE_ARTIFACTS.get(stage, ())
            if artifact in pending
        }

    def _note_corruption(
        self,
        scope: str,
        artifact: str,
        reason: str,
        quarantined_to: Optional[Path] = None,
    ) -> None:
        self.n_corrupt += 1
        self.integrity_events.append(
            {
                "scope": scope,
                "artifact": artifact,
                "reason": reason,
                "quarantined_to": str(quarantined_to) if quarantined_to else None,
            }
        )

    def verify_stage(
        self, shard: ShardHandle, stage: str
    ) -> List[Tuple[str, str]]:
        """Check one shard × stage's artifacts; ``(artifact, reason)`` per failure.

        Pure inspection — no quarantine, no repair, no record changes (that
        is :meth:`_handle_corruption`'s job).  Artifacts without a recorded
        checksum (records written before checksums existed) are skipped:
        existence is still required, content cannot be judged.
        """
        bad: List[Tuple[str, str]] = []
        record = shard.stages.get(stage) or {}
        checksums = record.get("checksums") or {}
        shard_dir = self._shard_dir(shard)
        for artifact in STAGE_ARTIFACTS.get(stage, ()):
            path = shard_dir / artifact
            if not path.exists():
                bad.append((artifact, "missing"))
                continue
            recorded = checksums.get(artifact)
            if recorded is None:
                continue
            actual = file_checksum(path)
            if actual != recorded:
                bad.append(
                    (
                        artifact,
                        f"checksum mismatch (recorded {recorded[:12]}, "
                        f"on disk {actual[:12]})",
                    )
                )
        return bad

    def _maybe_verify(self, shard: ShardHandle, stage: str, force: bool = False) -> None:
        """Verify one shard × stage per the read policy; heal or raise on failure."""
        if not self._integrity.should_verify(force):
            return
        self.n_verified += 1
        bad = self.verify_stage(shard, stage)
        if bad:
            self._handle_corruption(shard, stage, bad)

    def _refresh_stage_checksums(self, shard: ShardHandle, stage: str) -> None:
        """Fold freshly written payload checksums into the stage record."""
        record = shard.stages.get(stage)
        if record is None:
            return
        checksums = dict(record.get("checksums") or {})
        checksums.update(self.stage_checksums(shard, stage))
        if checksums:
            record["checksums"] = checksums
            if os.getpid() == self._owner_pid:
                self._persist_stage_records(shard)

    def _handle_corruption(
        self, shard: ShardHandle, stage: str, bad: List[Tuple[str, str]]
    ) -> None:
        """Contain (quarantine), then heal via the repairer or raise.

        Without a repairer the stage record is dropped so the normal resume
        machinery recomputes the stage on the next run; record persistence is
        parent-only (a forked worker updates its in-memory copy and raises —
        the parent's retry of the task recomputes and re-marks).
        """
        shard_dir = self._shard_dir(shard)
        first_dest: Optional[Path] = None
        for artifact, reason in bad:
            dest = quarantine_file(shard_dir / artifact, self.quarantine_dir)
            self._note_corruption(shard.dirname, artifact, reason, dest)
            if first_dest is None:
                first_dest = dest
        self._resident.pop(shard.shard_id, None)
        token = (shard.shard_id, stage)
        if self._repairer is not None and token not in self._repairing:
            self._repairing.add(token)
            try:
                self._repairer(shard, stage)
            finally:
                self._repairing.discard(token)
            self._refresh_stage_checksums(shard, stage)
            remaining = self.verify_stage(shard, stage)
            if not remaining:
                self.n_repaired += 1
                self.integrity_events.append(
                    {
                        "scope": shard.dirname,
                        "artifact": stage,
                        "reason": "repaired",
                        "quarantined_to": None,
                    }
                )
                return
            artifact, reason = remaining[0]
            raise CorruptArtifactError(
                shard_dir / artifact, f"repair failed: {reason}"
            )
        if stage in shard.stages:
            del shard.stages[stage]
            if os.getpid() == self._owner_pid:
                self._persist_stage_records(shard)
        artifact, reason = bad[0]
        raise CorruptArtifactError(
            shard_dir / artifact, reason, quarantined_to=first_dest
        )

    def verify_artifacts(self, repair: bool = False) -> Dict[str, Any]:
        """Force-verify every recorded shard × stage (``repro verify``'s core).

        ``repair=False`` is a read-only diagnostic: corrupt stages are
        reported but files and records are untouched.  ``repair=True`` runs
        the full containment path per corrupt stage — quarantine, recompute
        via the registered repairer (or record-drop when none is set), and
        re-verification.
        """
        report: Dict[str, Any] = {
            "n_stages": 0,
            "n_ok": 0,
            "corrupt": [],
            "repaired": [],
        }
        for shard in self.shards:
            for stage in list(shard.stages):
                if stage not in STAGE_ARTIFACTS:
                    continue
                report["n_stages"] += 1
                bad = self.verify_stage(shard, stage)
                if not bad:
                    report["n_ok"] += 1
                    continue
                entry = {
                    "shard": shard.dirname,
                    "stage": stage,
                    "failures": [
                        {"artifact": artifact, "reason": reason}
                        for artifact, reason in bad
                    ],
                }
                if not repair:
                    report["corrupt"].append(entry)
                    continue
                try:
                    self._handle_corruption(shard, stage, bad)
                except CorruptArtifactError as error:
                    entry["error"] = str(error)
                    report["corrupt"].append(entry)
                else:
                    report["repaired"].append(entry)
        return report

    def integrity_report(self) -> Dict[str, Any]:
        """Verification/corruption telemetry for results, /health and tests."""
        return {
            "policy": self._integrity.policy,
            "n_verified": self.n_verified,
            "n_corrupt": self.n_corrupt,
            "n_repaired": self.n_repaired,
            "n_quarantined": quarantine_count(self.workdir),
            "events": list(self.integrity_events),
        }

    # ------------------------------------------------------------- residency
    def _shard_dir(self, shard: ShardHandle) -> Path:
        return self.shards_dir / shard.dirname

    def _cache_resident(self, shard: ShardHandle, kind: str, value: Any) -> None:
        entry = self._resident.get(shard.shard_id)
        if entry is None:
            entry = {}
        entry[kind] = value
        self._resident.put(shard.shard_id, entry)

    def _resident_value(self, shard: ShardHandle, kind: str) -> Any:
        entry = self._resident.get(shard.shard_id)
        if entry is None or kind not in entry:
            return None
        return entry[kind]

    @property
    def evictions(self) -> int:
        """How many resident shards have been evicted over the LRU bound."""
        return self._resident.evictions

    @property
    def n_resident(self) -> int:
        """How many shards currently hold heavy objects in memory."""
        return len(self._resident)

    def evict_all(self) -> None:
        """Drop every resident shard (slabs on disk are unaffected)."""
        self._resident.clear()

    # ------------------------------------------------------------- slab io
    def _write_artifact(self, shard: ShardHandle, artifact: str, payload: bytes) -> None:
        """Persist one slab artifact atomically and durably, noting its checksum.

        The checksum is computed from ``payload`` — the bytes we *intend* to
        persist — never by re-reading the file, so a torn write or bit flip
        between intent and disk is detectable by construction.  Slabs are
        rewritten in place on recompute, and a crash mid-write (or a power
        loss after the rename) must not leave a truncated file where a
        complete one stood; transient ``EIO``/``ENOSPC`` is retried inside
        :func:`~repro.storage.atomic.atomic_write_bytes`.
        """
        atomic_write_bytes(self._shard_dir(shard) / artifact, payload)
        self._pending_checksums.setdefault(shard.shard_id, {})[artifact] = (
            payload_checksum(payload)
        )

    @staticmethod
    def _read_pickle(path: Path) -> Any:
        with open(path, "rb") as handle:
            return pickle.load(handle)

    @staticmethod
    def _canonical_pickle(payload: Any) -> bytes:
        """Pickle ``payload`` into provenance-independent bytes.

        Raw pickle bytes encode object *sharing*, and sharing depends on how
        the graph was built: a freshly parsed shard shares interned literals
        across objects, while the same values re-derived from a slab
        round-trip share whatever the previous dump's memo recorded instead.
        One load/dump cycle projects the graph onto exactly the sharing
        pickle itself preserves, making the bytes a pure function of the
        value graph — which is what lets integrity repair rewrite a slab
        byte-identically regardless of which process re-derives it.
        """
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return pickle.dumps(pickle.loads(data), protocol=pickle.HIGHEST_PROTOCOL)

    def _read_artifact(
        self, shard: ShardHandle, stage: str, artifact: str, reader: Callable[[Path], Any]
    ) -> Any:
        """Read one slab artifact with verify-on-read and in-place repair.

        Checksum verification (per the store's policy) runs *before* the
        read; a deserialization failure afterwards — the file slipped past
        sampling or predates checksums, yet cannot be parsed — is itself
        corruption and takes the same quarantine/repair path, after which
        the read is retried once against the healed file.
        """
        path = self._shard_dir(shard) / artifact
        self._maybe_verify(shard, stage)
        try:
            return reader(path)
        except (FileNotFoundError, CorruptArtifactError):
            raise
        except Exception as error:
            self._handle_corruption(
                shard, stage, [(artifact, f"unreadable: {error}")]
            )
            return reader(path)

    # ------------------------------------------------------------ parse slab
    def write_docs(self, shard: ShardHandle, docs: Sequence[Document]) -> None:
        docs = list(docs)
        self._write_artifact(shard, "docs.pkl", self._canonical_pickle(docs))
        self._cache_resident(shard, "docs", docs)

    def load_docs(self, shard: ShardHandle) -> List[Document]:
        resident = self._resident_value(shard, "docs")
        if resident is not None:
            return resident
        docs = self._read_artifact(shard, "parse", "docs.pkl", self._read_pickle)
        self._cache_resident(shard, "docs", docs)
        return docs

    # ------------------------------------------------------------- node slab
    def write_node_slab(
        self, shard: ShardHandle, per_doc_arrays: Sequence[Dict[str, np.ndarray]]
    ) -> None:
        """Persist one shard's per-document node tables as one npz slab.

        Each document's block (see :data:`repro.data_model.nodes.NODE_COLUMNS`
        plus the tag/kind vocabularies) is stored under ``"{position}.{name}"``
        keys; the npz bytes are deterministic, so repair rewrites the slab
        byte-identically like every other artifact.
        """
        payload: Dict[str, np.ndarray] = {
            "n_documents": np.asarray([len(per_doc_arrays)], dtype=np.int64)
        }
        for position, arrays in enumerate(per_doc_arrays):
            for name, array in arrays.items():
                payload[f"{position:05d}.{name}"] = array
        buffer = io.BytesIO()
        np.savez(buffer, **payload)
        self._write_artifact(shard, "nodes.npz", buffer.getvalue())

    def load_node_slab(self, shard: ShardHandle) -> List[Dict[str, np.ndarray]]:
        """Per-document node-table blocks, in shard document order."""

        def read_tables(path: Path) -> List[Dict[str, np.ndarray]]:
            with np.load(path, allow_pickle=False) as arrays:
                n = int(arrays["n_documents"][0])
                tables: List[Dict[str, np.ndarray]] = [{} for _ in range(n)]
                for key in arrays.files:
                    if key == "n_documents":
                        continue
                    position, name = key.split(".", 1)
                    tables[int(position)][name] = arrays[key]
            return tables

        return self._read_artifact(shard, "nodes", "nodes.npz", read_tables)

    # -------------------------------------------------------- candidate slab
    def write_candidates(
        self, shard: ShardHandle, extractions: Sequence[ExtractionResult]
    ) -> None:
        extractions = list(extractions)
        self._write_artifact(
            shard, "candidates.pkl", self._canonical_pickle(extractions)
        )
        merged = ExtractionResult.merge(extractions)
        meta = {
            "entries": [
                [
                    (candidate.document.name if candidate.document else ""),
                    list(candidate.entity_tuple),
                ]
                for candidate in merged.candidates
            ],
            # Span provenance, aligned with "entries": one [entity_type,
            # positional span key, mention text] triple per mention.  The KB
            # store serves these so every published tuple points back at the
            # exact text spans it was extracted from without re-reading the
            # heavy pickle.  Keys are *positional* (sentence position within
            # the document + word range) rather than context stable ids —
            # context ids come from a process-local counter, and published
            # provenance must be byte-identical across processes and re-runs.
            "spans": [
                [
                    [
                        mention.entity_type,
                        f"sent:{mention.span.sentence.position}"
                        f":{mention.span.word_start}-{mention.span.word_end}",
                        mention.text,
                    ]
                    for mention in candidate.mentions
                ]
                for candidate in merged.candidates
            ],
            # Span intervals, aligned with "entries": the [lo, hi] pre-rank
            # range of each tuple's mention sentences in its document's
            # pre/post-order node table (repro.data_model.nodes).  The KB
            # publishes these so structural ``within`` queries can filter
            # tuples by container subtree without touching the heavy pickle.
            # Pre ranks are deterministic parse-order ranks — byte-identical
            # across traversal modes, executors and re-runs.
            "intervals": [
                list(span_interval(candidate.spans))
                for candidate in merged.candidates
            ],
            "per_doc_counts": [len(e.candidates) for e in extractions],
            "mentions_by_type": dict(merged.mentions_by_type),
            "n_raw_candidates": merged.n_raw_candidates,
            "n_throttled": merged.n_throttled,
        }
        self._write_artifact(
            shard,
            "candidates_meta.json",
            json.dumps(meta, indent=2, sort_keys=True).encode("utf-8"),
        )
        self._cache_resident(shard, "candidates", extractions)

    def load_candidates(self, shard: ShardHandle) -> List[ExtractionResult]:
        resident = self._resident_value(shard, "candidates")
        if resident is not None:
            return resident
        extractions = self._read_artifact(
            shard, "candidates", "candidates.pkl", self._read_pickle
        )
        self._cache_resident(shard, "candidates", extractions)
        return extractions

    def load_candidates_meta(self, shard: ShardHandle) -> Dict[str, Any]:
        """The light candidate view: (doc name, entity tuple) pairs + stats."""
        meta = self._read_artifact(
            shard,
            "candidates",
            "candidates_meta.json",
            lambda path: json.loads(path.read_text()),
        )
        meta["entries"] = [
            (doc_name, tuple(entities)) for doc_name, entities in meta["entries"]
        ]
        # Metas written before span provenance existed lack the field; the
        # KB tail treats a missing list as "no span provenance recorded".
        meta.setdefault("spans", [[] for _ in meta["entries"]])
        # Likewise for span intervals (pre node-table metas): [-1, -1] is the
        # "no interval recorded" sentinel, never matched by a within filter.
        meta.setdefault("intervals", [[-1, -1] for _ in meta["entries"]])
        return meta

    # ---------------------------------------------------------- feature slab
    def write_feature_slab(
        self, shard: ShardHandle, per_doc_rows: Sequence[Sequence[Dict[str, float]]]
    ) -> FeatureSlab:
        """Freeze one shard's per-document feature rows into a CSR slab."""
        builder = CSRBuilder()
        row_position = 0
        for doc_rows in per_doc_rows:
            for row in doc_rows:
                builder.add_row(row_position, row.items())
                row_position += 1
        matrix = builder.build()
        slab = FeatureSlab(
            indptr=matrix.indptr,
            indices=matrix.indices,
            data=matrix.data,
            columns=matrix.column_names,
        )
        buffer = io.BytesIO()
        np.savez(buffer, indptr=slab.indptr, indices=slab.indices, data=slab.data)
        self._write_artifact(shard, "features.npz", buffer.getvalue())
        self._write_artifact(
            shard, "feature_columns.json", json.dumps(slab.columns).encode("utf-8")
        )
        return slab

    def load_feature_slab(self, shard: ShardHandle) -> FeatureSlab:
        def read_arrays(path: Path) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            with np.load(path) as arrays:
                return arrays["indptr"], arrays["indices"], arrays["data"]

        indptr, indices, data = self._read_artifact(
            shard, "featurize", "features.npz", read_arrays
        )
        columns = self._read_artifact(
            shard,
            "featurize",
            "feature_columns.json",
            lambda path: json.loads(path.read_text()),
        )
        return FeatureSlab(indptr=indptr, indices=indices, data=data, columns=columns)

    # ------------------------------------------------------------ label slab
    def write_label_slab(self, shard: ShardHandle, block: np.ndarray) -> None:
        buffer = io.BytesIO()
        np.save(buffer, np.asarray(block))
        self._write_artifact(shard, "labels.npy", buffer.getvalue())

    def load_label_slab(self, shard: ShardHandle) -> np.ndarray:
        return self._read_artifact(shard, "label", "labels.npy", np.load)

    # -------------------------------------------------------- marginals slab
    def write_marginal_slab(self, shard: ShardHandle, values: np.ndarray) -> None:
        """Persist this shard's slice of the global noise-aware marginals."""
        buffer = io.BytesIO()
        np.save(buffer, np.asarray(values, dtype=np.float64))
        self._write_artifact(shard, "marginals.npy", buffer.getvalue())

    def load_marginal_slab(self, shard: ShardHandle) -> np.ndarray:
        return self._read_artifact(shard, "marginals", "marginals.npy", np.load)


def concat_feature_slabs(slabs: Iterable[FeatureSlab]) -> CSRMatrix:
    """Concatenate per-shard CSR slabs into the global feature matrix.

    Local column ids are remapped onto a global interning built in
    first-occurrence order of the *entry scan* (slabs in shard order, each
    slab's entries in storage order) — exactly the order
    :meth:`CSRMatrix.from_rows` interns when the in-memory path scans the
    corpus-order dict rows, so the result is byte-identical to it: same
    ``indptr``/``indices``/``data`` arrays, same column names, same row ids.
    """
    column_ids: Dict[str, int] = {}
    column_names: List[str] = []
    indptr_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    indices_parts: List[np.ndarray] = []
    data_parts: List[np.ndarray] = []
    nnz_offset = 0
    n_rows = 0
    for slab in slabs:
        if slab.indices.size:
            # Map each local id to a global id, interning new names in the
            # slab's own id order: CSRBuilder interns a column at its first
            # *stored* entry, so local ids 0..n-1 are already first-occurrence
            # order of the slab's entry scan — walking slab.columns in order
            # continues the global scan exactly.
            lut = np.empty(len(slab.columns), dtype=np.int64)
            for local_id, name in enumerate(slab.columns):
                global_id = column_ids.get(name)
                if global_id is None:
                    global_id = len(column_names)
                    column_ids[name] = global_id
                    column_names.append(name)
                lut[local_id] = global_id
            indices_parts.append(lut[slab.indices])
            data_parts.append(slab.data)
        if slab.n_rows:
            indptr_parts.append(slab.indptr[1:].astype(np.int64) + nnz_offset)
        nnz_offset += int(slab.indptr[-1]) if len(slab.indptr) else 0
        n_rows += slab.n_rows
    indices = (
        np.concatenate(indices_parts) if indices_parts else np.zeros(0, dtype=np.int64)
    )
    data = np.concatenate(data_parts) if data_parts else np.zeros(0, dtype=np.float64)
    return CSRMatrix(
        indptr=np.concatenate(indptr_parts),
        indices=indices,
        data=data,
        row_ids=list(range(n_rows)),
        column_ids=column_ids,
        column_names=column_names,
    )


def concat_label_slabs(blocks: Iterable[np.ndarray]) -> np.ndarray:
    """Stack per-shard dense label blocks into the global label matrix Λ."""
    blocks = [np.asarray(block) for block in blocks]
    if not blocks:
        return np.zeros((0, 0), dtype=np.int8)
    return np.vstack(blocks)
