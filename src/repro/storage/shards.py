"""Out-of-core sharded corpus store: the disk substrate of streaming mode.

The paper runs KBC over millions of richly formatted documents by leaning on
PostgreSQL as its spill substrate (Section 5.1, Appendix C.2).  This module is
our equivalent: a :class:`ShardStore` partitions a corpus into fixed-size,
*content-addressed* shards and persists every stage's per-shard output as an
on-disk slab, so corpus size is bounded by disk instead of memory.

Layout under the store's ``workdir``::

    workdir/
      manifest.json                    # shard order, ids, membership
      shards/
        shard-00000-<shard_id>/
          stages.json                  # this shard's per-stage checkpoint records
          docs.pkl                     # parse slab: pickled Document batch
          candidates.pkl               # candidate slab: per-doc ExtractionResults
          candidates_meta.json         # light view: (doc, entity tuple) + stats
          features.npz                 # featurize slab: local CSR arrays
          feature_columns.json         # local column interning of the slab
          labels.npy                   # label slab: dense (n_cands, n_lfs) block

The manifest holds only shard identity and membership, written once per
``open_corpus``; per-stage checkpoint records live in each shard's own
``stages.json``, so checkpointing one shard × stage rewrites one small file —
O(1) per boundary instead of O(corpus).

Content addressing
------------------
A shard's id is the combined content hash of its member raw documents (path +
content + format), truncated for readability.  Partitioning is positional
(chunks of ``shard_size`` documents in corpus order), so editing one
document's content changes exactly one shard id: every other shard keeps its
id, its manifest stage records and its slabs, and a re-run recomputes one
shard only.

Checkpoint / resume
-------------------
The manifest records, per shard and per stage, the derived cache key
``H(... | operator fingerprint)`` under which the stage last completed.  A
stage is *resumable-complete* when the recorded key matches the key the
current configuration derives **and** the slab file exists — so killing the
process at any point and re-invoking resumes from the last completed
shard × stage boundary, and a configuration change (different operator
fingerprint) correctly re-runs from the first affected stage.

Memory bound
------------
At most ``max_resident_shards`` shards' heavy objects (parsed documents,
candidate sets) are held in an LRU; everything else lives in the slabs and is
re-read on demand.  Feature and label slabs are flat numpy arrays that
concatenate into the global matrices without ever materializing per-candidate
dict rows (:func:`concat_feature_slabs`, :func:`concat_label_slabs`).

Multiprocess access contract
----------------------------
Slab files are written atomically (write-temp + fsync + rename) and are
immutable once their stage record lands, which makes them safe shared-memory
currency between processes: the persistent worker pool
(:mod:`repro.engine.pool`) forks workers that each hold their *own*
``ShardStore`` copy (own LRU, same ``workdir``) and read/write slab files
directly — only result statistics cross process boundaries.  The one
structure that must not be written concurrently is a shard's ``stages.json``:
by convention exactly one process (the streaming parent) invalidates and
marks stage records, in shard order, after the slab writes it is recording
have completed.  Slab writes themselves are idempotent (same content ⇒ same
bytes), so a crashed worker's partial progress is simply overwritten on
retry.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.candidates.extractor import ExtractionResult
from repro.data_model.context import Document
from repro.engine.fingerprint import combine_keys, raw_document_fingerprint
from repro.parsing.corpus import RawDocument
from repro.storage.atomic import atomic_write, atomic_write_text
from repro.storage.lru import BoundedLRU
from repro.storage.sparse import CSRBuilder, CSRMatrix

#: Version of the on-disk shard layout; bumped on incompatible changes.  A
#: manifest written under a different version is discarded (safe rebuild).
SHARD_SCHEMA_VERSION = 1

#: Stage names in execution order, with the slab artifact each one emits.
#: ``marginals`` is corpus-global (the label model's EM reads every shard's
#: label slab) but its output is still sliced back into per-shard slabs, which
#: is what lets the training runtime stream feature rows *and* their marginal
#: targets shard by shard with bounded residency.
STAGE_ARTIFACTS: Dict[str, Tuple[str, ...]] = {
    "parse": ("docs.pkl",),
    "candidates": ("candidates.pkl", "candidates_meta.json"),
    "featurize": ("features.npz", "feature_columns.json"),
    "label": ("labels.npy",),
    "marginals": ("marginals.npy",),
}


@dataclass
class ShardHandle:
    """One shard of the corpus: identity, membership and stage records.

    Handles are what streaming stages consume and emit instead of in-memory
    lists: a handle names the shard's slabs on disk, and the store decides
    whether the heavy objects behind it are resident or must be re-read.
    """

    position: int
    shard_id: str
    dirname: str
    doc_names: List[str]
    doc_paths: List[str]
    raw_fingerprints: List[str]
    stages: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: The member raw documents (attached by ``open_corpus``; not persisted).
    #: When the store has a lazy loader these carry empty ``content`` — use
    #: :meth:`ShardStore.shard_raws` to obtain full documents.
    raws: Optional[List[RawDocument]] = field(default=None, repr=False)

    @property
    def n_documents(self) -> int:
        return len(self.doc_paths)

    def to_manifest(self) -> Dict[str, Any]:
        # Identity and membership only: stage records live in the shard's own
        # stages.json so a checkpoint never rewrites the whole manifest.
        return {
            "position": self.position,
            "shard_id": self.shard_id,
            "dirname": self.dirname,
            "doc_names": list(self.doc_names),
            "doc_paths": list(self.doc_paths),
            "raw_fingerprints": list(self.raw_fingerprints),
        }

    @classmethod
    def from_manifest(cls, record: Dict[str, Any]) -> "ShardHandle":
        return cls(
            position=int(record["position"]),
            shard_id=str(record["shard_id"]),
            dirname=str(record["dirname"]),
            doc_names=list(record["doc_names"]),
            doc_paths=list(record["doc_paths"]),
            raw_fingerprints=list(record["raw_fingerprints"]),
        )


@dataclass
class FeatureSlab:
    """One shard's feature rows as a local CSR block.

    ``columns`` is the slab-local interning (first-occurrence order within the
    shard); :func:`concat_feature_slabs` remaps local column ids onto a global
    interning that is byte-identical to what the in-memory path produces.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    columns: List[str]

    @property
    def n_rows(self) -> int:
        return len(self.indptr) - 1


def shard_content_id(
    raws: Sequence[RawDocument] = (),
    fingerprints: Optional[Sequence[str]] = None,
) -> str:
    """Content-addressed shard id: combined hash of the member raw documents.

    ``fingerprints`` (precomputed per-document content hashes) takes
    precedence over hashing ``raws`` — the lazy corpus path streams documents
    once, keeps only their fingerprints, and must address shards identically.
    """
    if fingerprints is None:
        fingerprints = [raw_document_fingerprint(raw) for raw in raws]
    if not fingerprints:
        return "empty"
    return combine_keys(*fingerprints)[:16]


def partition_corpus(
    raws: Sequence[RawDocument], shard_size: int
) -> List[List[RawDocument]]:
    """Positional partition: chunks of ``shard_size`` documents in corpus order."""
    if shard_size < 1:
        raise ValueError("shard_size must be at least 1")
    raws = list(raws)
    return [raws[lo : lo + shard_size] for lo in range(0, len(raws), shard_size)]


class ShardStore:
    """Disk-resident shard storage with an LRU of resident shards.

    Parameters
    ----------
    workdir:
        Root directory of the store (created if missing).
    max_resident_shards:
        Upper bound on how many shards' heavy objects (parsed documents and
        candidate sets) are kept in memory at once.
    """

    def __init__(self, workdir: os.PathLike, max_resident_shards: int = 4) -> None:
        if max_resident_shards < 1:
            raise ValueError("max_resident_shards must be at least 1")
        self.workdir = Path(workdir)
        self.max_resident_shards = max_resident_shards
        self.shards_dir = self.workdir / "shards"
        self.manifest_path = self.workdir / "manifest.json"
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self.shards: List[ShardHandle] = []
        # shard_id -> {"docs": [...], "candidates": [...]} — the residency LRU.
        self._resident: BoundedLRU = BoundedLRU(max_resident_shards)
        # Optional lazy loader: shard -> full raw documents (set by
        # open_corpus when the caller streams raw content from disk instead
        # of holding the whole corpus's text in memory).
        self._raw_loader: Optional[Any] = None

    # ------------------------------------------------------------- manifest
    def _load_manifest(self) -> List[ShardHandle]:
        if not self.manifest_path.exists():
            return []
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return []
        if payload.get("schema_version") != SHARD_SCHEMA_VERSION:
            return []
        return [ShardHandle.from_manifest(r) for r in payload.get("shards", [])]

    def save_manifest(self) -> None:
        """Persist shard identity/membership atomically and durably.

        Called once per ``open_corpus`` — per-boundary checkpoints go to each
        shard's own ``stages.json`` instead, so checkpoint cost is O(1) in
        the number of shards.
        """
        payload = {
            "schema_version": SHARD_SCHEMA_VERSION,
            "n_shards": len(self.shards),
            "shards": [shard.to_manifest() for shard in self.shards],
        }
        atomic_write_text(self.manifest_path, json.dumps(payload, indent=2, sort_keys=True))

    def _stage_records_path(self, shard: ShardHandle) -> Path:
        return self.shards_dir / shard.dirname / "stages.json"

    def _load_stage_records(self, shard: ShardHandle) -> Dict[str, Dict[str, Any]]:
        path = self._stage_records_path(shard)
        if not path.exists():
            return {}
        try:
            return dict(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError):
            return {}

    def open_corpus(
        self,
        raws: Sequence[RawDocument],
        shard_size: int,
        fingerprints: Optional[Sequence[str]] = None,
        raw_loader: Optional[Any] = None,
    ) -> List[ShardHandle]:
        """Partition a corpus into shards, reconciling with the manifest.

        A shard whose position *and* content-addressed id match an existing
        manifest record keeps that record (and therefore its completed-stage
        checkpoints from ``stages.json``); a mismatch — the document set at
        that position changed — replaces the record, drops its stale slab
        directory, and the shard starts from scratch.  Trailing manifest
        records beyond the new corpus length are dropped the same way.

        ``fingerprints`` (one per raw document, aligned with ``raws``) lets a
        caller that streamed raw content from disk supply precomputed content
        hashes; with it, ``raws`` may carry empty ``content`` and
        ``raw_loader`` (shard → full raw documents) is used by
        :meth:`shard_raws` to materialize a shard's documents on demand — the
        whole corpus's text is then never resident at once.
        """
        if fingerprints is not None and len(fingerprints) != len(raws):
            raise ValueError(
                f"Got {len(raws)} documents but {len(fingerprints)} fingerprints"
            )
        previous = {shard.position: shard for shard in self._load_manifest()}
        shards: List[ShardHandle] = []
        raws = list(raws)
        for position, members in enumerate(partition_corpus(raws, shard_size)):
            lo = position * shard_size
            member_fps = (
                list(fingerprints[lo : lo + len(members)])
                if fingerprints is not None
                else [raw_document_fingerprint(raw) for raw in members]
            )
            shard_id = shard_content_id(fingerprints=member_fps)
            dirname = f"shard-{position:05d}-{shard_id}"
            old = previous.pop(position, None)
            if old is not None and old.shard_id == shard_id:
                shard = old
                shard.stages = self._load_stage_records(shard)
            else:
                if old is not None:
                    self._drop_shard_dir(old)
                shard = ShardHandle(
                    position=position,
                    shard_id=shard_id,
                    dirname=dirname,
                    doc_names=[raw.name for raw in members],
                    doc_paths=[raw.path or raw.name for raw in members],
                    raw_fingerprints=member_fps,
                )
            shard.raws = list(members)
            (self.shards_dir / shard.dirname).mkdir(parents=True, exist_ok=True)
            shards.append(shard)
        for old in previous.values():
            self._drop_shard_dir(old)
        self.shards = shards
        self._raw_loader = raw_loader
        self.save_manifest()
        return shards

    def shard_raws(self, shard: ShardHandle) -> List[RawDocument]:
        """This shard's full raw documents (via the lazy loader when set)."""
        if self._raw_loader is not None:
            return list(self._raw_loader(shard))
        return list(shard.raws or [])

    def _drop_shard_dir(self, shard: ShardHandle) -> None:
        shutil.rmtree(self.shards_dir / shard.dirname, ignore_errors=True)
        self._resident.pop(shard.shard_id, None)

    # ------------------------------------------------------------ stage keys
    def stage_complete(self, shard: ShardHandle, stage: str, key: str) -> bool:
        """True when this shard × stage completed under exactly this key.

        Requires both the manifest record (key match) and the slab artifacts
        on disk, so a crash between slab write and manifest update — or a
        manually deleted slab — correctly reads as incomplete.
        """
        record = shard.stages.get(stage)
        if not record or record.get("key") != key or not record.get("complete"):
            return False
        shard_dir = self.shards_dir / shard.dirname
        return all(
            (shard_dir / artifact).exists() for artifact in STAGE_ARTIFACTS[stage]
        )

    def _persist_stage_records(self, shard: ShardHandle) -> None:
        atomic_write_text(
            self._stage_records_path(shard),
            json.dumps(shard.stages, indent=2, sort_keys=True),
        )

    def mark_stage(
        self,
        shard: ShardHandle,
        stage: str,
        key: str,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Checkpoint one shard × stage completion.

        Persists only this shard's ``stages.json`` (atomically and durably,
        via :func:`~repro.storage.atomic.atomic_write`), so per-boundary
        checkpoint cost is independent of how many shards the corpus has.
        """
        record: Dict[str, Any] = {"key": key, "complete": True}
        if extra:
            record.update(extra)
        shard.stages[stage] = record
        self._persist_stage_records(shard)

    def invalidate_stage(self, shard: ShardHandle, stage: str) -> bool:
        """Drop one shard × stage record before its slab is rewritten.

        Called at the start of every recompute: slab files are overwritten in
        place, so a still-standing record from a previous configuration could
        otherwise pair with a half-rewritten slab after a crash and be
        resurrected by a later run under the old configuration.  Dropping the
        record first makes any such crash read as "incomplete" everywhere.
        Returns whether a record existed.
        """
        if stage not in shard.stages:
            return False
        del shard.stages[stage]
        self._persist_stage_records(shard)
        return True

    # ------------------------------------------------------------- residency
    def _shard_dir(self, shard: ShardHandle) -> Path:
        return self.shards_dir / shard.dirname

    def _cache_resident(self, shard: ShardHandle, kind: str, value: Any) -> None:
        entry = self._resident.get(shard.shard_id)
        if entry is None:
            entry = {}
        entry[kind] = value
        self._resident.put(shard.shard_id, entry)

    def _resident_value(self, shard: ShardHandle, kind: str) -> Any:
        entry = self._resident.get(shard.shard_id)
        if entry is None or kind not in entry:
            return None
        return entry[kind]

    @property
    def evictions(self) -> int:
        """How many resident shards have been evicted over the LRU bound."""
        return self._resident.evictions

    @property
    def n_resident(self) -> int:
        """How many shards currently hold heavy objects in memory."""
        return len(self._resident)

    def evict_all(self) -> None:
        """Drop every resident shard (slabs on disk are unaffected)."""
        self._resident.clear()

    # ------------------------------------------------------------- slab io
    @staticmethod
    def _atomic_pickle(path: Path, obj: Any) -> None:
        """Write a pickle atomically and durably — slabs are rewritten in
        place on recompute, and a crash mid-write (or a power loss after the
        rename) must not leave a truncated file where a complete one stood."""
        with atomic_write(path, "wb") as handle:
            pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def _atomic_text(path: Path, text: str) -> None:
        atomic_write_text(path, text)

    # ------------------------------------------------------------ parse slab
    def write_docs(self, shard: ShardHandle, docs: Sequence[Document]) -> None:
        self._atomic_pickle(self._shard_dir(shard) / "docs.pkl", list(docs))
        self._cache_resident(shard, "docs", list(docs))

    def load_docs(self, shard: ShardHandle) -> List[Document]:
        resident = self._resident_value(shard, "docs")
        if resident is not None:
            return resident
        path = self._shard_dir(shard) / "docs.pkl"
        with open(path, "rb") as handle:
            docs = pickle.load(handle)
        self._cache_resident(shard, "docs", docs)
        return docs

    # -------------------------------------------------------- candidate slab
    def write_candidates(
        self, shard: ShardHandle, extractions: Sequence[ExtractionResult]
    ) -> None:
        shard_dir = self._shard_dir(shard)
        self._atomic_pickle(shard_dir / "candidates.pkl", list(extractions))
        merged = ExtractionResult.merge(extractions)
        meta = {
            "entries": [
                [
                    (candidate.document.name if candidate.document else ""),
                    list(candidate.entity_tuple),
                ]
                for candidate in merged.candidates
            ],
            # Span provenance, aligned with "entries": one [entity_type,
            # positional span key, mention text] triple per mention.  The KB
            # store serves these so every published tuple points back at the
            # exact text spans it was extracted from without re-reading the
            # heavy pickle.  Keys are *positional* (sentence position within
            # the document + word range) rather than context stable ids —
            # context ids come from a process-local counter, and published
            # provenance must be byte-identical across processes and re-runs.
            "spans": [
                [
                    [
                        mention.entity_type,
                        f"sent:{mention.span.sentence.position}"
                        f":{mention.span.word_start}-{mention.span.word_end}",
                        mention.text,
                    ]
                    for mention in candidate.mentions
                ]
                for candidate in merged.candidates
            ],
            "per_doc_counts": [len(e.candidates) for e in extractions],
            "mentions_by_type": dict(merged.mentions_by_type),
            "n_raw_candidates": merged.n_raw_candidates,
            "n_throttled": merged.n_throttled,
        }
        self._atomic_text(
            shard_dir / "candidates_meta.json", json.dumps(meta, indent=2, sort_keys=True)
        )
        self._cache_resident(shard, "candidates", list(extractions))

    def load_candidates(self, shard: ShardHandle) -> List[ExtractionResult]:
        resident = self._resident_value(shard, "candidates")
        if resident is not None:
            return resident
        with open(self._shard_dir(shard) / "candidates.pkl", "rb") as handle:
            extractions = pickle.load(handle)
        self._cache_resident(shard, "candidates", extractions)
        return extractions

    def load_candidates_meta(self, shard: ShardHandle) -> Dict[str, Any]:
        """The light candidate view: (doc name, entity tuple) pairs + stats."""
        meta = json.loads(
            (self._shard_dir(shard) / "candidates_meta.json").read_text()
        )
        meta["entries"] = [
            (doc_name, tuple(entities)) for doc_name, entities in meta["entries"]
        ]
        # Metas written before span provenance existed lack the field; the
        # KB tail treats a missing list as "no span provenance recorded".
        meta.setdefault("spans", [[] for _ in meta["entries"]])
        return meta

    # ---------------------------------------------------------- feature slab
    def write_feature_slab(
        self, shard: ShardHandle, per_doc_rows: Sequence[Sequence[Dict[str, float]]]
    ) -> FeatureSlab:
        """Freeze one shard's per-document feature rows into a CSR slab."""
        builder = CSRBuilder()
        row_position = 0
        for doc_rows in per_doc_rows:
            for row in doc_rows:
                builder.add_row(row_position, row.items())
                row_position += 1
        matrix = builder.build()
        slab = FeatureSlab(
            indptr=matrix.indptr,
            indices=matrix.indices,
            data=matrix.data,
            columns=matrix.column_names,
        )
        shard_dir = self._shard_dir(shard)
        with atomic_write(shard_dir / "features.npz", "wb") as handle:
            np.savez(
                handle, indptr=slab.indptr, indices=slab.indices, data=slab.data
            )
        self._atomic_text(shard_dir / "feature_columns.json", json.dumps(slab.columns))
        return slab

    def load_feature_slab(self, shard: ShardHandle) -> FeatureSlab:
        shard_dir = self._shard_dir(shard)
        with np.load(shard_dir / "features.npz") as arrays:
            indptr = arrays["indptr"]
            indices = arrays["indices"]
            data = arrays["data"]
        columns = json.loads((shard_dir / "feature_columns.json").read_text())
        return FeatureSlab(indptr=indptr, indices=indices, data=data, columns=columns)

    # ------------------------------------------------------------ label slab
    def write_label_slab(self, shard: ShardHandle, block: np.ndarray) -> None:
        with atomic_write(self._shard_dir(shard) / "labels.npy", "wb") as handle:
            np.save(handle, np.asarray(block))

    def load_label_slab(self, shard: ShardHandle) -> np.ndarray:
        return np.load(self._shard_dir(shard) / "labels.npy")

    # -------------------------------------------------------- marginals slab
    def write_marginal_slab(self, shard: ShardHandle, values: np.ndarray) -> None:
        """Persist this shard's slice of the global noise-aware marginals."""
        with atomic_write(self._shard_dir(shard) / "marginals.npy", "wb") as handle:
            np.save(handle, np.asarray(values, dtype=np.float64))

    def load_marginal_slab(self, shard: ShardHandle) -> np.ndarray:
        return np.load(self._shard_dir(shard) / "marginals.npy")


def concat_feature_slabs(slabs: Iterable[FeatureSlab]) -> CSRMatrix:
    """Concatenate per-shard CSR slabs into the global feature matrix.

    Local column ids are remapped onto a global interning built in
    first-occurrence order of the *entry scan* (slabs in shard order, each
    slab's entries in storage order) — exactly the order
    :meth:`CSRMatrix.from_rows` interns when the in-memory path scans the
    corpus-order dict rows, so the result is byte-identical to it: same
    ``indptr``/``indices``/``data`` arrays, same column names, same row ids.
    """
    column_ids: Dict[str, int] = {}
    column_names: List[str] = []
    indptr_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    indices_parts: List[np.ndarray] = []
    data_parts: List[np.ndarray] = []
    nnz_offset = 0
    n_rows = 0
    for slab in slabs:
        if slab.indices.size:
            # Map each local id to a global id, interning new names in the
            # slab's own id order: CSRBuilder interns a column at its first
            # *stored* entry, so local ids 0..n-1 are already first-occurrence
            # order of the slab's entry scan — walking slab.columns in order
            # continues the global scan exactly.
            lut = np.empty(len(slab.columns), dtype=np.int64)
            for local_id, name in enumerate(slab.columns):
                global_id = column_ids.get(name)
                if global_id is None:
                    global_id = len(column_names)
                    column_ids[name] = global_id
                    column_names.append(name)
                lut[local_id] = global_id
            indices_parts.append(lut[slab.indices])
            data_parts.append(slab.data)
        if slab.n_rows:
            indptr_parts.append(slab.indptr[1:].astype(np.int64) + nnz_offset)
        nnz_offset += int(slab.indptr[-1]) if len(slab.indptr) else 0
        n_rows += slab.n_rows
    indices = (
        np.concatenate(indices_parts) if indices_parts else np.zeros(0, dtype=np.int64)
    )
    data = np.concatenate(data_parts) if data_parts else np.zeros(0, dtype=np.float64)
    return CSRMatrix(
        indptr=np.concatenate(indptr_parts),
        indices=indices,
        data=data,
        row_ids=list(range(n_rows)),
        column_ids=column_ids,
        column_names=column_names,
    )


def concat_label_slabs(blocks: Iterable[np.ndarray]) -> np.ndarray:
    """Stack per-shard dense label blocks into the global label matrix Λ."""
    blocks = [np.asarray(block) for block in blocks]
    if not blocks:
        return np.zeros((0, 0), dtype=np.int8)
    return np.vstack(blocks)
