"""One bounded LRU to rule them all.

Three components grew hand-rolled ``OrderedDict`` LRUs with subtly different
bound handling: the shard store's resident-shard cache validated its bound,
the slab batch sources silently clamped theirs to 1, and only two of the
three counted evictions.  :class:`BoundedLRU` is the single shared
implementation — strict bound validation (a silent clamp hides a caller bug),
uniform "insert, touch, evict-from-the-cold-end while over bound" semantics,
and eviction/load accounting for the residency tests and benchmarks.

Used by :class:`~repro.storage.shards.ShardStore` (resident heavy objects),
the slab-backed batch sources in :mod:`repro.learning.trainer` (feature,
marginal and label slabs), the KB segment cache in :mod:`repro.kb.store`,
and the serving tier's response cache in :mod:`repro.kb.server` (keyed on
``(snapshot generation, canonical query)``; the ``hits``/``loads`` counters
feed the ``/v1/metrics`` cache hit ratio).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterator


class BoundedLRU:
    """A mapping bounded to ``max_entries``, evicting least-recently-used.

    ``get`` and ``put`` both count as a *use* (they move the key to the hot
    end).  When an insert pushes the size past ``max_entries``, entries are
    evicted from the cold end until the bound holds again — so the cache
    never holds more than ``max_entries`` entries after any operation.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._store: "OrderedDict[Any, Any]" = OrderedDict()
        #: How many entries have been evicted over the bound (cumulative).
        self.evictions = 0
        #: How many ``get_or_load`` calls missed and invoked their loader.
        self.loads = 0
        #: How many ``get_or_load`` calls were answered from the cache —
        #: hits / (hits + loads) is the serving tier's cache hit ratio.
        self.hits = 0

    # -------------------------------------------------------------- mapping
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Any) -> bool:
        return key in self._store

    def __iter__(self) -> Iterator[Any]:
        return iter(self._store)

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value for ``key`` (touching it), or ``default``."""
        if key not in self._store:
            return default
        self._store.move_to_end(key)
        return self._store[key]

    def put(self, key: Any, value: Any) -> None:
        """Insert/replace ``key`` at the hot end, evicting over the bound."""
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self.evictions += 1

    def get_or_load(self, key: Any, loader: Callable[[], Any]) -> Any:
        """Return the cached value or load, insert and return it.

        The ``loads`` counter increments only on a miss — the residency
        tests assert exactly how many slab reads a schedule causes.
        """
        if key in self._store:
            self.hits += 1
            self._store.move_to_end(key)
            return self._store[key]
        value = loader()
        self.loads += 1
        self.put(key, value)
        return value

    def pop(self, key: Any, default: Any = None) -> Any:
        """Remove ``key`` without counting an eviction (explicit invalidation)."""
        return self._store.pop(key, default)

    def clear(self) -> int:
        """Drop every entry, counting them as evictions; returns the count."""
        dropped = len(self._store)
        self.evictions += dropped
        self._store.clear()
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"BoundedLRU(max_entries={self.max_entries}, "
            f"size={len(self._store)}, evictions={self.evictions})"
        )


def resolve_bound(max_entries: int, minimum: int = 1) -> int:
    """Validate an LRU bound uniformly (shared by every call site).

    The old hand-rolled LRUs disagreed here: one raised on a bound below 1,
    two silently clamped with ``max(1, bound)`` — so a caller passing a
    misconfigured 0 got one shard of residency in some components and a
    ``ValueError`` in others.  One strict rule now: bounds must be >= 1.
    """
    if max_entries < minimum:
        raise ValueError(f"LRU bound must be at least {minimum}, got {max_entries}")
    return max_entries
