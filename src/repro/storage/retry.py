"""Bounded-exponential-backoff retry policy, shared across the system.

Transient faults — a worker that died and must be respawned, an ``EIO`` from
a flaky disk, a serving endpoint mid-restart — all want the same answer:
retry a bounded number of times with exponentially growing, capped delays.
:class:`RetryPolicy` is that answer in one place, reused by

* :func:`repro.storage.atomic.atomic_write_bytes` — transient-IO retries
  (``EIO``/``ENOSPC``/``EAGAIN``) around durable slab/segment writes,
* :class:`repro.engine.pool.PersistentWorkerPool` — backoff between
  respawns of a repeatedly dying worker slot (so a crash loop cannot spin
  the fork path at full speed),
* ``python -m repro query --url`` — connect/read timeouts plus retries
  against a serving endpoint that is restarting or shedding load.

The policy object is immutable configuration; it carries no attempt state,
so one instance can be shared freely across threads and call sites.  Delays
are deterministic (no jitter) — reproducibility is a global invariant of
this codebase and the call sites are low-fan-out, so thundering herds are
not a concern here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``base_delay * 2**attempt``, capped.

    Parameters
    ----------
    attempts:
        Total tries (initial call + retries); must be >= 1.
    base_delay:
        Delay before the first retry, in seconds.
    max_delay:
        Upper bound on any single delay.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed try number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.max_delay, self.base_delay * (2.0**attempt))

    def backoff(self, attempt: int) -> None:
        """Sleep the delay for failed try number ``attempt`` (0-based)."""
        seconds = self.delay(attempt)
        if seconds > 0:
            self.sleep(seconds)

    def call(
        self,
        fn: Callable[[], Any],
        retry_on: Tuple[Type[BaseException], ...] = (OSError,),
        should_retry: Optional[Callable[[BaseException], bool]] = None,
    ) -> Any:
        """Run ``fn`` under this policy.

        Exceptions outside ``retry_on`` — or rejected by ``should_retry``
        (e.g. an OSError whose errno is not transient) — propagate
        immediately; the last exception propagates when attempts run out.
        """
        for attempt in range(self.attempts):
            try:
                return fn()
            except retry_on as error:
                if should_retry is not None and not should_retry(error):
                    raise
                if attempt + 1 >= self.attempts:
                    raise
                self.backoff(attempt)
        raise AssertionError("unreachable")  # pragma: no cover
