"""An embedded relational engine.

The engine supports the access patterns the KBC pipeline needs — typed schemas,
inserts, equality/predicate selects, secondary hash indexes, deletes, ordering,
and JSON persistence — while staying dependency-free.  It intentionally does not
try to be a SQL database; it is the stand-in for the PostgreSQL instance of the
original system (see DESIGN.md §2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class ColumnType(Enum):
    """Supported column types."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    BOOLEAN = "boolean"
    JSON = "json"

    def validate(self, value: Any) -> bool:
        if value is None:
            return True
        if self is ColumnType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.REAL:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        if self is ColumnType.BOOLEAN:
            return isinstance(value, bool)
        if self is ColumnType.JSON:
            return True
        return False  # pragma: no cover - exhaustive enum


@dataclass(frozen=True)
class TableSchema:
    """Schema of one table: ordered column names and their types."""

    name: str
    columns: Tuple[Tuple[str, ColumnType], ...]
    primary_key: Optional[str] = None

    @classmethod
    def create(
        cls,
        name: str,
        columns: Sequence[Tuple[str, ColumnType]],
        primary_key: Optional[str] = None,
    ) -> "TableSchema":
        column_names = [c[0] for c in columns]
        if len(set(column_names)) != len(column_names):
            raise ValueError(f"Duplicate column names in schema {name!r}")
        if primary_key is not None and primary_key not in column_names:
            raise ValueError(f"Primary key {primary_key!r} is not a column of {name!r}")
        return cls(name=name, columns=tuple(columns), primary_key=primary_key)

    @property
    def column_names(self) -> List[str]:
        return [c[0] for c in self.columns]

    def column_type(self, column: str) -> ColumnType:
        for name, column_type in self.columns:
            if name == column:
                return column_type
        raise KeyError(f"No column {column!r} in table {self.name!r}")

    def validate_row(self, row: Dict[str, Any]) -> None:
        for column in row:
            if column not in self.column_names:
                raise KeyError(f"Unknown column {column!r} for table {self.name!r}")
        for name, column_type in self.columns:
            if name in row and not column_type.validate(row[name]):
                raise TypeError(
                    f"Value {row[name]!r} is not valid for column {name!r} "
                    f"of type {column_type.value} in table {self.name!r}"
                )


class Table:
    """One relational table: rows are dicts keyed by column name."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: List[Dict[str, Any]] = []
        self._indexes: Dict[str, Dict[Any, List[int]]] = {}
        self._pk_index: Dict[Any, int] = {}

    # ------------------------------------------------------------------ DML
    def insert(self, row: Dict[str, Any]) -> int:
        """Insert a row and return its internal row id (position)."""
        self.schema.validate_row(row)
        stored = {name: row.get(name) for name in self.schema.column_names}
        pk = self.schema.primary_key
        if pk is not None:
            key = stored.get(pk)
            if key in self._pk_index:
                raise ValueError(
                    f"Duplicate primary key {key!r} for table {self.schema.name!r}"
                )
        row_id = len(self._rows)
        self._rows.append(stored)
        if pk is not None:
            self._pk_index[stored[pk]] = row_id
        for column, index in self._indexes.items():
            index.setdefault(stored.get(column), []).append(row_id)
        return row_id

    def insert_many(self, rows: Iterable[Dict[str, Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def update(self, predicate: Callable[[Dict[str, Any]], bool], changes: Dict[str, Any]) -> int:
        """Update rows matching ``predicate`` with ``changes``; returns count.

        Updates never move rows, so only the indexes whose columns appear in
        ``changes`` can be stale — those are rebuilt; the rest are untouched.
        """
        self.schema.validate_row(changes)
        updated = 0
        for row in self._rows:
            if row is not None and predicate(row):
                row.update(changes)
                updated += 1
        if updated:
            if self.schema.primary_key in changes:
                self._rebuild_pk_index()
            for column in self._indexes:
                if column in changes:
                    self.create_index(column)
        return updated

    def delete(self, predicate: Callable[[Dict[str, Any]], bool]) -> int:
        """Delete rows matching ``predicate``; returns count."""
        before = len(self._rows)
        self._rows = [row for row in self._rows if not predicate(row)]
        deleted = before - len(self._rows)
        if deleted:
            self._rebuild_indexes()
        return deleted

    # ------------------------------------------------------------------ DQL
    def select(
        self,
        where: Optional[Dict[str, Any]] = None,
        predicate: Optional[Callable[[Dict[str, Any]], bool]] = None,
        order_by: Optional[str] = None,
        descending: bool = False,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Select rows by equality conditions and/or an arbitrary predicate."""
        rows: Iterable[Dict[str, Any]]
        if where:
            indexed = [c for c in where if c in self._indexes]
            if indexed:
                column = indexed[0]
                candidate_ids = self._indexes[column].get(where[column], [])
                rows = [self._rows[i] for i in candidate_ids]
            else:
                rows = self._rows
            rows = [r for r in rows if all(r.get(k) == v for k, v in where.items())]
        else:
            rows = list(self._rows)
        if predicate is not None:
            rows = [r for r in rows if predicate(r)]
        if order_by is not None:
            rows = sorted(rows, key=lambda r: (r.get(order_by) is None, r.get(order_by)), reverse=descending)
        if limit is not None:
            rows = list(rows)[:limit]
        return [dict(r) for r in rows]

    def get(self, key: Any) -> Optional[Dict[str, Any]]:
        """Fetch a row by primary key."""
        if self.schema.primary_key is None:
            raise ValueError(f"Table {self.schema.name!r} has no primary key")
        row_id = self._pk_index.get(key)
        return dict(self._rows[row_id]) if row_id is not None else None

    def count(self, where: Optional[Dict[str, Any]] = None) -> int:
        if not where:
            return len(self._rows)
        return len(self.select(where=where))

    def all(self) -> List[Dict[str, Any]]:
        return [dict(r) for r in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.all())

    # --------------------------------------------------------------- indexes
    def create_index(self, column: str) -> None:
        if column not in self.schema.column_names:
            raise KeyError(f"No column {column!r} in table {self.schema.name!r}")
        index: Dict[Any, List[int]] = {}
        for row_id, row in enumerate(self._rows):
            index.setdefault(row.get(column), []).append(row_id)
        self._indexes[column] = index

    def _rebuild_pk_index(self) -> None:
        self._pk_index = {}
        pk = self.schema.primary_key
        if pk is not None:
            for row_id, row in enumerate(self._rows):
                self._pk_index[row.get(pk)] = row_id

    def _rebuild_indexes(self) -> None:
        self._rebuild_pk_index()
        for column in list(self._indexes):
            self.create_index(column)


class Database:
    """A named collection of tables with JSON persistence."""

    def __init__(self, name: str = "fonduer") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}

    def create_table(
        self,
        name: str,
        columns: Sequence[Tuple[str, ColumnType]],
        primary_key: Optional[str] = None,
        if_not_exists: bool = False,
    ) -> Table:
        if name in self._tables:
            if if_not_exists:
                return self._tables[name]
            raise ValueError(f"Table {name!r} already exists")
        schema = TableSchema.create(name, columns, primary_key)
        table = Table(schema)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"No table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise KeyError(f"No table {name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # ---------------------------------------------------------- persistence
    def save(self, path: str | Path) -> None:
        """Serialize all tables to a JSON file."""
        payload = {
            "name": self.name,
            "tables": {
                name: {
                    "schema": {
                        "columns": [[c, t.value] for c, t in table.schema.columns],
                        "primary_key": table.schema.primary_key,
                    },
                    "rows": table.all(),
                }
                for name, table in self._tables.items()
            },
        }
        Path(path).write_text(json.dumps(payload, indent=2, default=str))

    @classmethod
    def load(cls, path: str | Path) -> "Database":
        payload = json.loads(Path(path).read_text())
        database = cls(payload.get("name", "fonduer"))
        for name, table_payload in payload.get("tables", {}).items():
            columns = [
                (column, ColumnType(type_name))
                for column, type_name in table_payload["schema"]["columns"]
            ]
            table = database.create_table(
                name, columns, table_payload["schema"].get("primary_key")
            )
            for row in table_payload["rows"]:
                table.insert(row)
        return database
