"""End-to-end artifact integrity: checksums, verification policy, quarantine.

The stores are content-addressed on the *write* side (shard ids, cache keys,
segment filenames all derive from content hashes), but until this module
nothing ever verified bytes on the *read* side: a flipped bit in a slab file
flowed silently into features, marginals and ultimately the published KB.
This module closes that gap with three small pieces shared by
:class:`~repro.storage.shards.ShardStore` and :class:`~repro.kb.store.KBStore`:

:func:`payload_checksum`
    The canonical artifact checksum (sha256 hex of the serialized payload).
    Writers compute it from the bytes they *intend* to persist — never by
    re-reading the file — so a torn write or bit flip between intent and
    disk is detectable by construction.

:class:`IntegrityPolicy`
    When to verify on read: ``off`` (never), ``sample`` (every read is
    *eligible*, every ``sample_every``-th read per store actually hashes;
    resume-time :meth:`~repro.storage.shards.ShardStore.stage_complete`
    checks always verify regardless), ``always`` (every read).

:func:`quarantine_file`
    Containment: a corrupt artifact is atomically renamed into the store's
    ``quarantine/`` directory — preserved for post-mortems, out of the way
    of repair (a recompute writes a fresh file; nothing can accidentally
    adopt the corrupt one).

Detection raises :class:`CorruptArtifactError` unless a *repairer* is
registered (the streaming pipeline registers one that recomputes exactly the
corrupt shard-stage through the engine key chain — see
``FonduerPipeline._make_repairer``), in which case the store heals in place
and the read proceeds.  ``python -m repro verify [--repair]`` drives the same
machinery from the command line; ``docs/RELIABILITY.md`` has the full
failure-mode matrix.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional

#: Recognized verify-on-read policies.
INTEGRITY_POLICIES = ("off", "sample", "always")

#: Every Nth eligible read is hashed under the ``sample`` policy.
DEFAULT_SAMPLE_EVERY = 8

#: Subdirectory (under a store root) where corrupt artifacts are preserved.
QUARANTINE_DIR = "quarantine"


class CorruptArtifactError(RuntimeError):
    """A persisted artifact failed integrity verification (and no repair).

    Carries enough context for operators: the artifact path, why it failed
    (checksum mismatch, unreadable, missing), and where the bytes went
    (quarantine) when containment ran.
    """

    def __init__(self, path: os.PathLike, reason: str, quarantined_to: Optional[Path] = None):
        self.path = Path(path)
        self.reason = reason
        self.quarantined_to = quarantined_to
        suffix = f" (quarantined to {quarantined_to})" if quarantined_to else ""
        super().__init__(f"corrupt artifact {self.path}: {reason}{suffix}")


def payload_checksum(payload: bytes) -> str:
    """sha256 hex digest of an artifact's intended serialized payload."""
    return hashlib.sha256(payload).hexdigest()


def file_checksum(path: os.PathLike) -> str:
    """sha256 hex digest of a file's current on-disk bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class IntegrityPolicy:
    """Read-side verification schedule for one store instance.

    ``should_verify()`` consumes one eligible read: under ``sample`` it
    returns True every ``sample_every``-th call (starting with the first, so
    short test runs still exercise the path); ``always``/``off`` are
    constant.  Forced checks (resume verification, ``repro verify``) bypass
    the sampler via ``force=True``.
    """

    def __init__(self, policy: str = "sample", sample_every: int = DEFAULT_SAMPLE_EVERY):
        if policy not in INTEGRITY_POLICIES:
            raise ValueError(
                f"unknown integrity policy {policy!r}; expected one of "
                f"{', '.join(INTEGRITY_POLICIES)}"
            )
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        self.policy = policy
        self.sample_every = sample_every
        self._reads = 0

    @property
    def enabled(self) -> bool:
        return self.policy != "off"

    def should_verify(self, force: bool = False) -> bool:
        if self.policy == "off":
            return False
        if force or self.policy == "always":
            return True
        eligible = self._reads % self.sample_every == 0
        self._reads += 1
        return eligible


def quarantine_file(path: os.PathLike, quarantine_dir: os.PathLike) -> Optional[Path]:
    """Atomically move a corrupt artifact into ``quarantine_dir``.

    The destination name keeps the source name plus a collision counter, so
    repeated corruption of the same artifact preserves every generation.
    Returns the destination, or None when the source had already vanished
    (a concurrent repair or prune got there first — containment is done
    either way).
    """
    source = Path(path)
    directory = Path(quarantine_dir)
    directory.mkdir(parents=True, exist_ok=True)
    destination = directory / source.name
    counter = 0
    while destination.exists():
        counter += 1
        destination = directory / f"{source.name}.{counter}"
    try:
        os.replace(source, destination)
    except FileNotFoundError:
        return None
    return destination


def quarantine_count(store_root: os.PathLike) -> int:
    """How many artifacts sit in a store's quarantine directory."""
    directory = Path(store_root) / QUARANTINE_DIR
    if not directory.is_dir():
        return 0
    return sum(1 for entry in directory.iterdir() if entry.is_file())
