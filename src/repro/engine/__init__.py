"""The incremental, document-parallel execution engine.

Every phase of the KBC pipeline — parsing, candidate generation, multimodal
featurization, labeling — is a pure function over per-document work units
(documents are the atomic processing units of the paper, Section 3.2).  This
subpackage compiles those phases into a DAG of :class:`Operator` nodes and
executes it through a pluggable :class:`Executor` with an
:class:`IncrementalCache` in front of every stage:

* :mod:`repro.engine.operators` — ``ParseOp``, ``CandidateOp``,
  ``FeaturizeOp``, ``LabelOp`` wrapping the existing phase components, plus
  the corpus-global learning-tail operators ``MarginalsOp`` and ``TrainOp``
  (fingerprint carriers for the label model and the training runtime);
* :mod:`repro.engine.executors` — ``SerialExecutor``, ``ThreadExecutor``,
  ``ProcessExecutor`` (chunked, order-preserving, fork-based), ``PoolExecutor``;
* :mod:`repro.engine.pool` — ``PersistentWorkerPool``, the fork-once
  shared-memory worker pool streaming runs dispatch shard stages through,
  and ``LatencyAutotuner``, its chunk-size feedback loop;
* :mod:`repro.engine.cache` — content-addressed per-document result cache;
* :mod:`repro.engine.fingerprint` — stable hashes of documents and operator
  configurations (the cache keys);
* :mod:`repro.engine.dag` — ``PipelineEngine``, the stage runner.

See ``docs/ENGINE.md`` for the cache-key contract and usage examples.
"""

from repro.engine.cache import MISS, IncrementalCache
from repro.engine.dag import (
    PipelineEngine,
    ShardStageStats,
    Stage,
    StageOutput,
    StageStats,
)
from repro.engine.executors import (
    EXECUTOR_NAMES,
    Executor,
    PoolExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
)
from repro.engine.pool import (
    LatencyAutotuner,
    PersistentWorkerPool,
    WorkerCrashError,
    WorkerTaskError,
)
from repro.engine.fingerprint import (
    combine_keys,
    document_fingerprint,
    raw_document_fingerprint,
    stable_fingerprint,
)
from repro.engine.operators import (
    CandidateOp,
    FeaturizeOp,
    LabelOp,
    MarginalsOp,
    Operator,
    ParseOp,
    TrainOp,
)

__all__ = [
    "CandidateOp",
    "EXECUTOR_NAMES",
    "Executor",
    "FeaturizeOp",
    "IncrementalCache",
    "LabelOp",
    "LatencyAutotuner",
    "MISS",
    "MarginalsOp",
    "Operator",
    "ParseOp",
    "PersistentWorkerPool",
    "PipelineEngine",
    "PoolExecutor",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardStageStats",
    "Stage",
    "StageOutput",
    "StageStats",
    "ThreadExecutor",
    "TrainOp",
    "WorkerCrashError",
    "WorkerTaskError",
    "combine_keys",
    "create_executor",
    "document_fingerprint",
    "raw_document_fingerprint",
    "stable_fingerprint",
]
