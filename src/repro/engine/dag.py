"""The engine: a compiled DAG of per-document operators, executed incrementally.

``PipelineEngine`` takes a list of :class:`Stage` (operator + optional
upstream stage name), an :class:`~repro.engine.executors.Executor` and an
:class:`~repro.engine.cache.IncrementalCache`, and runs the DAG over a list of
source work units:

1. every stage's per-unit cache key is derived as
   ``H(input_key | operator_fingerprint)`` — for source stages the input key
   is the unit's content hash, for downstream stages it is the upstream
   stage's *output* key, so configuration changes propagate invalidation
   downstream automatically;
2. cache hits are returned as-is; only the missing units are dispatched to
   the executor (chunked, order-preserving);
3. each stage reports :class:`StageStats` (units, hits, computed, seconds),
   which is how development mode proves it skipped Phase 2.

The DAG shape the Fonduer pipeline compiles to::

    parse ──► candidates ──► featurize
                        └──► label

Streaming mode runs the same operators at *shard* granularity: one shard is
one cache unit and one executor dispatch (:meth:`PipelineEngine.run_shard_stage`),
and per-stage accounting rolls up into :class:`ShardStageStats` so resume runs
can prove which shard × stage pairs they skipped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.engine.cache import MISS, IncrementalCache
from repro.engine.executors import Executor, SerialExecutor
from repro.engine.fingerprint import combine_keys
from repro.engine.operators import Operator


@dataclass
class StageStats:
    """Execution accounting for one stage of one engine run."""

    name: str
    n_units: int = 0
    n_cached: int = 0
    n_computed: int = 0
    seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.n_cached / self.n_units if self.n_units else 0.0


@dataclass
class ShardStageStats:
    """Execution accounting of one stage across one streaming run's shards.

    ``n_resumed`` counts shards skipped because the store already records a
    completed run under the current key (checkpoint/resume); ``n_computed``
    counts shards actually executed.  ``n_units`` is the total work units
    (documents or per-document candidate sets) across computed shards.
    """

    name: str
    n_shards: int = 0
    n_resumed: int = 0
    n_computed: int = 0
    n_units: int = 0
    seconds: float = 0.0

    @property
    def resume_rate(self) -> float:
        return self.n_resumed / self.n_shards if self.n_shards else 0.0


@dataclass
class StageOutput:
    """Per-unit results of one stage, with their cache keys and stats."""

    results: List[Any]
    keys: List[str]
    stats: StageStats


@dataclass
class Stage:
    """One node of the DAG: an operator plus the stage it consumes from.

    ``upstream=None`` marks a source stage mapping over the engine's input
    units; otherwise the stage maps over the named upstream stage's
    per-unit outputs (several stages may share one upstream — a fan-out).
    """

    operator: Operator
    upstream: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.operator.name


class PipelineEngine:
    """Execute a DAG of per-document operators with incremental caching."""

    def __init__(
        self,
        stages: Sequence[Stage] = (),
        executor: Optional[Executor] = None,
        cache: Optional[IncrementalCache] = None,
    ) -> None:
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"Stage names must be unique, got {names}")
        seen: set = set()
        for stage in stages:
            if stage.upstream is not None and stage.upstream not in seen:
                raise ValueError(
                    f"Stage {stage.name!r} consumes unknown or later stage "
                    f"{stage.upstream!r}; stages must be listed in topological order"
                )
            seen.add(stage.name)
        self.stages = list(stages)
        self.executor = executor if executor is not None else SerialExecutor()
        # Explicit None check: an empty IncrementalCache is falsy (len() == 0),
        # so `cache or ...` would silently discard a caller-provided cache.
        self.cache = cache if cache is not None else IncrementalCache()

    # ------------------------------------------------------------------ core
    def run_stage(
        self,
        operator: Operator,
        inputs: Sequence[Any],
        input_keys: Sequence[str],
    ) -> StageOutput:
        """Run one operator over inputs whose cache keys are already known."""
        inputs = list(inputs)
        if len(inputs) != len(input_keys):
            raise ValueError(
                f"Got {len(inputs)} inputs but {len(input_keys)} input keys"
            )
        start = time.perf_counter()
        operator_fp = operator.fingerprint()
        keys = [combine_keys(input_key, operator_fp) for input_key in input_keys]
        results: List[Any] = [self.cache.lookup(key) for key in keys]
        missing = [i for i, value in enumerate(results) if value is MISS]
        if missing:
            computed = self.executor.map(operator.process, [inputs[i] for i in missing])
            for i, value in zip(missing, computed):
                self.cache.put(keys[i], value)
                results[i] = value
        stats = StageStats(
            name=operator.name,
            n_units=len(inputs),
            n_cached=len(inputs) - len(missing),
            n_computed=len(missing),
            seconds=time.perf_counter() - start,
        )
        return StageOutput(results=results, keys=keys, stats=stats)

    def run_shard_stage(
        self,
        operator: Operator,
        units: Sequence[Any],
        n_tasks: Optional[int] = None,
    ) -> List[Any]:
        """Run one operator over one *shard* as a single executor dispatch.

        Shard-level cache keys follow the same chaining rule as per-document
        keys — ``H(input_key | operator fingerprint)`` — but key derivation,
        checkpointing and reuse are owned by the caller and the shard store
        (slabs + stage records, plus ``IncrementalCache.record_stage_key``
        for the in-process view): holding every shard's output in the engine
        cache would defeat the ``max_resident_shards`` memory bound.
        ``n_tasks`` splits the shard into that many batches for the
        executor — each batch is one worker task; ``None`` asks the executor
        (:meth:`~repro.engine.executors.Executor.suggest_task_count`).

        Process-based executors in streaming mode do not reach this method
        for their shard stages at all: ``run_streaming`` routes whole shards
        through the persistent fork-once pool (:mod:`repro.engine.pool`),
        where one *shard × stage-group* is one worker task and results stay
        on disk as slabs.
        """
        units = list(units)
        if n_tasks is None:
            n_tasks = self.executor.suggest_task_count(len(units))
        n_tasks = max(1, min(n_tasks, len(units) or 1))
        bounds = np.array_split(np.arange(len(units)), n_tasks)
        batches = [[units[i] for i in chunk] for chunk in bounds if len(chunk)]
        grouped = self.executor.map_batches(operator.process, batches)
        return [result for batch in grouped for result in batch]

    def run(
        self,
        units: Sequence[Any],
        unit_keys: Optional[Sequence[str]] = None,
    ) -> Dict[str, StageOutput]:
        """Run the whole DAG over source units; returns stage name → output.

        ``unit_keys`` (content hashes of the source units) may be supplied by
        the caller; otherwise each source stage derives them through its
        operator's :meth:`~repro.engine.operators.Operator.unit_fingerprint`.
        """
        units = list(units)
        if unit_keys is not None and len(unit_keys) != len(units):
            raise ValueError(f"Got {len(units)} units but {len(unit_keys)} unit keys")
        outputs: Dict[str, StageOutput] = {}
        source_keys: Optional[List[str]] = list(unit_keys) if unit_keys is not None else None
        for stage in self.stages:
            if stage.upstream is None:
                if source_keys is None:
                    source_keys = [stage.operator.unit_fingerprint(unit) for unit in units]
                inputs, input_keys = units, source_keys
            else:
                upstream = outputs[stage.upstream]
                inputs, input_keys = upstream.results, upstream.keys
            output = self.run_stage(stage.operator, inputs, input_keys)
            output.stats.name = stage.name
            outputs[stage.name] = output
        return outputs
