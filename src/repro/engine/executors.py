"""Pluggable executors: how an operator is mapped over its work units.

Every phase of the KBC pipeline is embarrassingly parallel at document
granularity (paper Section 3.2: documents are atomic processing units), so the
engine needs exactly one primitive — an order-preserving ``map`` — with three
strategies:

* :class:`SerialExecutor` — the reference implementation; a plain loop.
* :class:`ThreadExecutor` — a thread pool; useful when the UDF releases the
  GIL or is I/O bound, and as a cheap concurrency-safety check.
* :class:`ProcessExecutor` — a chunked, fork-based process pool for CPU-bound
  phases.  Work units and the operator are *inherited* by the forked workers
  through process memory rather than pickled through the task queue, so
  closures (lambda matchers, labeling functions, throttlers) parallelize
  without restriction; only chunk bounds go in and picklable results come out.
* :class:`PoolExecutor` — same contract, but shard-granular workloads
  (streaming runs) are routed through the *persistent* fork-once worker pool
  of :mod:`repro.engine.pool` instead of forking per map.

All executors preserve input order exactly, so every strategy produces
byte-identical downstream results; the choice is purely a throughput knob
(selected via ``FonduerConfig.executor``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.pool import LatencyAutotuner


class _BatchApplier:
    """Picklable per-batch adapter: applies a per-item function to one batch.

    Lets :meth:`Executor.map_batches` reuse each strategy's ``map`` with the
    *batch* as the work unit, so one batch (e.g. one corpus shard in streaming
    mode) is one worker task regardless of the strategy's own chunking.
    """

    def __init__(self, function: Callable[[Any], Any]) -> None:
        self.function = function

    def __call__(self, batch: Sequence[Any]) -> List[Any]:
        return [self.function(item) for item in batch]


class Executor:
    """Strategy for mapping a per-unit function over work units, in order."""

    name = "base"

    def map(self, function: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        raise NotImplementedError

    def map_batches(
        self,
        function: Callable[[Any], Any],
        batches: Iterable[Sequence[Any]],
    ) -> List[List[Any]]:
        """Apply a per-item function batch-by-batch, one batch per worker task.

        The streaming pipeline uses this to make a corpus *shard* the unit of
        dispatch: each worker task processes one whole shard (bounded memory
        per worker, no per-document IPC), and results come back grouped per
        batch, in order.  Strategies inherit this default, which delegates to
        their own ``map`` with batches as the work units.
        """
        return self.map(_BatchApplier(function), [list(batch) for batch in batches])

    def suggest_task_count(self, n_units: int) -> int:
        """How many batches a shard of ``n_units`` should split into.

        The engine asks the executor instead of the caller guessing: a
        serial strategy wants one batch (no dispatch overhead), parallel
        strategies want one batch per worker.
        """
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run every unit in the calling thread (the reference executor)."""

    name = "serial"

    def map(self, function: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return [function(item) for item in items]


class ThreadExecutor(Executor):
    """Map units over a thread pool (order-preserving)."""

    name = "thread"

    def __init__(self, n_workers: int = 4) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.n_workers = n_workers

    def map(self, function: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        items = list(items)
        if len(items) <= 1 or self.n_workers == 1:
            return [function(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(function, items))

    def suggest_task_count(self, n_units: int) -> int:
        return max(1, min(self.n_workers, n_units))

    def __repr__(self) -> str:  # pragma: no cover
        return f"ThreadExecutor(n_workers={self.n_workers})"


# Work shared with forked children, keyed by a per-map token.  Each map()
# call registers its (function, items) under a fresh token immediately
# before the fork; workers read their inherited copy of the registry and
# index it with the token carried in every task, so tasks on the queue are
# only (token, lo, hi) triples and nothing unpicklable ever crosses a
# process boundary on the way in.  Because every call owns a distinct
# token (CPython dict writes and ``itertools.count`` are atomic under the
# GIL), concurrent map() calls from different threads never see each
# other's work — the old single-slot ``_FORK_WORK`` global and the
# process-wide ``_FORK_LOCK`` that serialized every parallel map are gone.
_WORK_REGISTRY: Dict[int, Tuple[Callable[[Any], Any], List[Any]]] = {}
_WORK_TOKENS = itertools.count()


def _run_chunk(task: Tuple[int, int, int]) -> List[Any]:
    token, lo, hi = task
    function, items = _WORK_REGISTRY[token]
    return [function(items[i]) for i in range(lo, hi)]


class ProcessExecutor(Executor):
    """Chunked, order-preserving, fork-per-map process pool.

    This is the *fallback* strategy for non-shard in-memory maps: each call
    forks a fresh pool, which is acceptable for one large map but pays the
    fork cost per call.  Streaming runs route their shard stages through the
    persistent fork-once pool instead (:mod:`repro.engine.pool`), which this
    executor's presence selects (see ``FonduerPipeline.run_streaming``).

    Parameters
    ----------
    n_workers:
        Number of worker processes.
    chunk_size:
        Units per task; ``None`` (the default) lets a
        :class:`~repro.engine.pool.LatencyAutotuner` pick — the first map
        uses the classic ``ceil(n / (4 * n_workers))`` split, later maps
        are sized from the observed per-unit latency so cheap units get
        amortized into larger chunks and expensive units fall back to
        fine-grained load balancing.
    """

    name = "process"

    def __init__(self, n_workers: int = 4, chunk_size: Optional[int] = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive (or None for automatic)")
        if not self.is_supported():
            # Fail fast at construction: the fork-inheritance design cannot
            # work under spawn/forkserver (closures in matchers, labeling
            # functions and throttlers are not picklable), and discovering
            # that mid-run via an opaque pickling traceback deep inside
            # multiprocessing helps nobody.
            raise RuntimeError(
                "ProcessExecutor requires the 'fork' start method, which this "
                "platform does not provide (available: "
                f"{', '.join(multiprocessing.get_all_start_methods())}). "
                "Work units are inherited through forked process memory, so "
                "spawn-only platforms (e.g. Windows) cannot run it — use "
                "executor='thread' or executor='serial' instead."
            )
        self.n_workers = n_workers
        self.chunk_size = chunk_size
        self._autotuner = LatencyAutotuner()

    @staticmethod
    def is_supported() -> bool:
        """Fork start method available (true on Linux/macOS CPython)."""
        return "fork" in multiprocessing.get_all_start_methods()

    def _chunk_bounds(self, n: int) -> List[Tuple[int, int]]:
        chunk = self.chunk_size or self._autotuner.chunk_for(n, self.n_workers)
        return [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]

    def map(self, function: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        items = list(items)
        if len(items) <= 1 or self.n_workers == 1:
            return [function(item) for item in items]
        bounds = self._chunk_bounds(len(items))
        token = next(_WORK_TOKENS)
        _WORK_REGISTRY[token] = (function, items)
        start = time.perf_counter()
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=min(self.n_workers, len(bounds))) as pool:
                chunk_results = pool.map(
                    _run_chunk, [(token, lo, hi) for lo, hi in bounds]
                )
        finally:
            _WORK_REGISTRY.pop(token, None)
        if self.chunk_size is None:
            # Latency feedback for the next map: approximate one unit's
            # service time from the parallel wall time (optimistic — fork
            # overhead is charged to the units, which only biases chunks
            # smaller, never starves workers).
            elapsed = time.perf_counter() - start
            effective = min(self.n_workers, len(bounds))
            self._autotuner.observe(len(items), elapsed * effective)
        return [result for chunk in chunk_results for result in chunk]

    def suggest_task_count(self, n_units: int) -> int:
        return max(1, min(self.n_workers, n_units))

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessExecutor(n_workers={self.n_workers}, chunk_size={self.chunk_size})"


class PoolExecutor(ProcessExecutor):
    """Selects the persistent fork-once worker pool for shard workloads.

    Streaming runs (and the shard-stage benchmarks) route their work through
    :class:`~repro.engine.pool.PersistentWorkerPool` whenever the configured
    executor is process-based; this subclass exists so configuration can ask
    for that explicitly (``executor='pool'``).  For plain in-memory maps —
    where the work function is created *after* any pool could have forked —
    it behaves exactly like :class:`ProcessExecutor` (fork-per-map), which
    is the documented fallback for non-shard maps.
    """

    name = "pool"

    def __repr__(self) -> str:  # pragma: no cover
        return f"PoolExecutor(n_workers={self.n_workers}, chunk_size={self.chunk_size})"


EXECUTOR_NAMES = ("serial", "thread", "process", "pool")


def create_executor(
    name: str = "serial",
    n_workers: int = 4,
    chunk_size: Optional[int] = None,
) -> Executor:
    """Build an executor from configuration values (``FonduerConfig`` knobs).

    ``"process"`` and ``"pool"`` on a platform without the ``fork`` start
    method degrade to a :class:`ThreadExecutor` with a warning instead of
    raising: executor choice is a throughput knob, and a config written on
    Linux should still *run* (every strategy produces identical results)
    when replayed on a spawn-only platform.  Constructing
    :class:`ProcessExecutor`/:class:`PoolExecutor` directly still fails
    fast with the full explanation.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor(n_workers=n_workers)
    if name in ("process", "pool"):
        if not ProcessExecutor.is_supported():
            warnings.warn(
                f"executor={name!r} needs the 'fork' start method, which this "
                "platform does not provide; falling back to executor='thread' "
                f"with n_workers={n_workers} (results are identical across "
                "executors — only throughput differs)",
                RuntimeWarning,
                stacklevel=2,
            )
            return ThreadExecutor(n_workers=n_workers)
        cls = PoolExecutor if name == "pool" else ProcessExecutor
        return cls(n_workers=n_workers, chunk_size=chunk_size)
    raise ValueError(f"Unknown executor {name!r}; expected one of {EXECUTOR_NAMES}")
