"""Pluggable executors: how an operator is mapped over its work units.

Every phase of the KBC pipeline is embarrassingly parallel at document
granularity (paper Section 3.2: documents are atomic processing units), so the
engine needs exactly one primitive — an order-preserving ``map`` — with three
strategies:

* :class:`SerialExecutor` — the reference implementation; a plain loop.
* :class:`ThreadExecutor` — a thread pool; useful when the UDF releases the
  GIL or is I/O bound, and as a cheap concurrency-safety check.
* :class:`ProcessExecutor` — a chunked, fork-based process pool for CPU-bound
  phases.  Work units and the operator are *inherited* by the forked workers
  through process memory rather than pickled through the task queue, so
  closures (lambda matchers, labeling functions, throttlers) parallelize
  without restriction; only chunk bounds go in and picklable results come out.

All executors preserve input order exactly, so every strategy produces
byte-identical downstream results; the choice is purely a throughput knob
(selected via ``FonduerConfig.executor``).
"""

from __future__ import annotations

import math
import multiprocessing
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple


class _BatchApplier:
    """Picklable per-batch adapter: applies a per-item function to one batch.

    Lets :meth:`Executor.map_batches` reuse each strategy's ``map`` with the
    *batch* as the work unit, so one batch (e.g. one corpus shard in streaming
    mode) is one worker task regardless of the strategy's own chunking.
    """

    def __init__(self, function: Callable[[Any], Any]) -> None:
        self.function = function

    def __call__(self, batch: Sequence[Any]) -> List[Any]:
        return [self.function(item) for item in batch]


class Executor:
    """Strategy for mapping a per-unit function over work units, in order."""

    name = "base"

    def map(self, function: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        raise NotImplementedError

    def map_batches(
        self,
        function: Callable[[Any], Any],
        batches: Iterable[Sequence[Any]],
    ) -> List[List[Any]]:
        """Apply a per-item function batch-by-batch, one batch per worker task.

        The streaming pipeline uses this to make a corpus *shard* the unit of
        dispatch: each worker task processes one whole shard (bounded memory
        per worker, no per-document IPC), and results come back grouped per
        batch, in order.  Strategies inherit this default, which delegates to
        their own ``map`` with batches as the work units.
        """
        return self.map(_BatchApplier(function), [list(batch) for batch in batches])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run every unit in the calling thread (the reference executor)."""

    name = "serial"

    def map(self, function: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return [function(item) for item in items]


class ThreadExecutor(Executor):
    """Map units over a thread pool (order-preserving)."""

    name = "thread"

    def __init__(self, n_workers: int = 4) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.n_workers = n_workers

    def map(self, function: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        items = list(items)
        if len(items) <= 1 or self.n_workers == 1:
            return [function(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(function, items))

    def __repr__(self) -> str:  # pragma: no cover
        return f"ThreadExecutor(n_workers={self.n_workers})"


# Work shared with forked children.  Set immediately before the fork and read
# by the workers from their inherited copy of the parent's memory; tasks on
# the queue are only (lo, hi) index pairs, so nothing unpicklable ever
# crosses a process boundary on the way in.  The slot is process-wide, so
# concurrent map() calls from different threads must take the lock — two
# unsynchronized calls would fork each other's work.
_FORK_WORK: Optional[Tuple[Callable[[Any], Any], List[Any]]] = None
_FORK_LOCK = threading.Lock()


def _run_chunk(bounds: Tuple[int, int]) -> List[Any]:
    function, items = _FORK_WORK  # type: ignore[misc]
    lo, hi = bounds
    return [function(items[i]) for i in range(lo, hi)]


class ProcessExecutor(Executor):
    """Chunked, order-preserving, fork-based process pool.

    Parameters
    ----------
    n_workers:
        Number of worker processes.
    chunk_size:
        Units per task; defaults to ``ceil(n / (4 * n_workers))`` so each
        worker sees several chunks (dynamic load balancing) without paying
        one IPC round-trip per document.
    """

    name = "process"

    def __init__(self, n_workers: int = 4, chunk_size: Optional[int] = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive (or None for automatic)")
        if not self.is_supported():
            # Fail fast at construction: the fork-inheritance design cannot
            # work under spawn/forkserver (closures in matchers, labeling
            # functions and throttlers are not picklable), and discovering
            # that mid-run via an opaque pickling traceback deep inside
            # multiprocessing helps nobody.
            raise RuntimeError(
                "ProcessExecutor requires the 'fork' start method, which this "
                "platform does not provide (available: "
                f"{', '.join(multiprocessing.get_all_start_methods())}). "
                "Work units are inherited through forked process memory, so "
                "spawn-only platforms (e.g. Windows) cannot run it — use "
                "executor='thread' or executor='serial' instead."
            )
        self.n_workers = n_workers
        self.chunk_size = chunk_size

    @staticmethod
    def is_supported() -> bool:
        """Fork start method available (true on Linux/macOS CPython)."""
        return "fork" in multiprocessing.get_all_start_methods()

    def _chunk_bounds(self, n: int) -> List[Tuple[int, int]]:
        chunk = self.chunk_size or max(1, math.ceil(n / (4 * self.n_workers)))
        return [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]

    def map(self, function: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        items = list(items)
        if len(items) <= 1 or self.n_workers == 1:
            return [function(item) for item in items]
        global _FORK_WORK
        bounds = self._chunk_bounds(len(items))
        with _FORK_LOCK:
            _FORK_WORK = (function, items)
            try:
                context = multiprocessing.get_context("fork")
                with context.Pool(processes=min(self.n_workers, len(bounds))) as pool:
                    chunk_results = pool.map(_run_chunk, bounds)
            finally:
                _FORK_WORK = None
        return [result for chunk in chunk_results for result in chunk]

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessExecutor(n_workers={self.n_workers}, chunk_size={self.chunk_size})"


EXECUTOR_NAMES = ("serial", "thread", "process")


def create_executor(
    name: str = "serial",
    n_workers: int = 4,
    chunk_size: Optional[int] = None,
) -> Executor:
    """Build an executor from configuration values (``FonduerConfig`` knobs).

    ``"process"`` on a platform without the ``fork`` start method degrades to
    a :class:`ThreadExecutor` with a warning instead of raising: executor
    choice is a throughput knob, and a config written on Linux should still
    *run* (every strategy produces identical results) when replayed on a
    spawn-only platform.  Constructing :class:`ProcessExecutor` directly
    still fails fast with the full explanation.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor(n_workers=n_workers)
    if name == "process":
        if not ProcessExecutor.is_supported():
            warnings.warn(
                "executor='process' needs the 'fork' start method, which this "
                "platform does not provide; falling back to executor='thread' "
                f"with n_workers={n_workers} (results are identical across "
                "executors — only throughput differs)",
                RuntimeWarning,
                stacklevel=2,
            )
            return ThreadExecutor(n_workers=n_workers)
        return ProcessExecutor(n_workers=n_workers, chunk_size=chunk_size)
    raise ValueError(f"Unknown executor {name!r}; expected one of {EXECUTOR_NAMES}")
