"""Stable content fingerprints for the incremental execution engine.

The engine caches per-document stage outputs under keys of the form
``H(upstream_key | operator_fingerprint)``.  Both halves are produced here:

* :func:`stable_fingerprint` hashes arbitrary configuration state — dataclass
  configs, matcher/throttler objects, labeling functions (including their
  bytecode and closure cells, so editing an LF's body changes its
  fingerprint), compiled regexes, enums and plain containers.
* :func:`document_fingerprint` hashes the *content* of a parsed data-model
  :class:`~repro.data_model.context.Document` — its name, format, every
  sentence's words/tags/markup, cell coordinates and word bounding boxes —
  so that editing a document invalidates exactly that document's cache rows.
* :func:`raw_document_fingerprint` does the same for an unparsed
  :class:`~repro.parsing.corpus.RawDocument`.

Fingerprints are hex SHA-256 digests: cheap to compare, safe to combine.
"""

from __future__ import annotations

import hashlib
import re
import types
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any

_MAX_DEPTH = 16

#: On-disk schema generation of the pre/post-order node table
#: (:mod:`repro.data_model.nodes`): the per-shard ``nodes.npz`` slab layout
#: and the candidate span intervals derived from it.  Bumping it re-keys the
#: nodes stage (and, through the chained keys, everything downstream that
#: consumes intervals), so slabs written under an older layout re-derive
#: cleanly through the normal resume path instead of being misread.
NODE_TABLE_SCHEMA_VERSION = 1


def _update(h: "hashlib._Hash", token: str) -> None:
    h.update(token.encode("utf-8", "surrogatepass"))
    h.update(b"\x00")


def _walk(h: "hashlib._Hash", obj: Any, depth: int = 0) -> None:
    if depth > _MAX_DEPTH:
        _update(h, "<max-depth>")
        return
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        _update(h, f"{type(obj).__name__}:{obj!r}")
    elif isinstance(obj, Enum):
        _update(h, f"enum:{type(obj).__qualname__}.{obj.name}")
    elif isinstance(obj, re.Pattern):
        _update(h, f"regex:{obj.pattern!r}:{obj.flags}")
    elif isinstance(obj, dict):
        _update(h, f"dict:{len(obj)}")
        for key in sorted(obj, key=repr):
            _walk(h, key, depth + 1)
            _walk(h, obj[key], depth + 1)
    elif isinstance(obj, (list, tuple)):
        _update(h, f"seq:{len(obj)}")
        for item in obj:
            _walk(h, item, depth + 1)
    elif isinstance(obj, (set, frozenset)):
        _update(h, f"set:{len(obj)}")
        for item in sorted(obj, key=repr):
            _walk(h, item, depth + 1)
    elif isinstance(obj, types.CodeType):
        _update(h, f"code:{obj.co_name}:{obj.co_code.hex()}")
        for const in obj.co_consts:
            if isinstance(const, (types.CodeType, type(None), bool, int, float, str, bytes)):
                _walk(h, const, depth + 1)
    elif callable(obj) and hasattr(obj, "__code__"):
        _update(h, f"fn:{getattr(obj, '__module__', '')}.{getattr(obj, '__qualname__', '')}")
        _walk(h, obj.__code__, depth + 1)
        for cell in getattr(obj, "__closure__", None) or ():
            try:
                _walk(h, cell.cell_contents, depth + 1)
            except ValueError:  # pragma: no cover - empty cell
                _update(h, "<empty-cell>")
        defaults = getattr(obj, "__defaults__", None)
        if defaults:
            _walk(h, defaults, depth + 1)
    elif is_dataclass(obj) and not isinstance(obj, type):
        _update(h, f"dataclass:{type(obj).__qualname__}")
        for f in fields(obj):
            _update(h, f.name)
            _walk(h, getattr(obj, f.name), depth + 1)
    elif isinstance(obj, type):
        _update(h, f"type:{obj.__module__}.{obj.__qualname__}")
    else:
        # Generic object: class identity plus its full attribute dict (private
        # attributes included — matchers keep compiled state under _-names).
        _update(h, f"obj:{type(obj).__module__}.{type(obj).__qualname__}")
        state = getattr(obj, "__dict__", None)
        if state:
            for key in sorted(state):
                _update(h, key)
                _walk(h, state[key], depth + 1)


def stable_fingerprint(obj: Any) -> str:
    """Hex SHA-256 fingerprint of arbitrary (configuration) state."""
    h = hashlib.sha256()
    _walk(h, obj)
    return h.hexdigest()


def combine_keys(*parts: str) -> str:
    """Combine fingerprints/keys into one derived cache key."""
    h = hashlib.sha256()
    for part in parts:
        _update(h, part)
    return h.hexdigest()


def document_fingerprint(document: Any) -> str:
    """Content hash of a parsed data-model Document.

    Covers everything the downstream operators read: sentence words, lemmas,
    POS/NER tags, HTML markup, tabular coordinates and visual bounding boxes.
    Object identities (ids, parent pointers) are deliberately excluded so that
    re-parsing identical content yields the identical fingerprint.
    """
    h = hashlib.sha256()
    # The corpus-relative path participates alongside the name: two documents
    # may share a name (different directories), and their stable ids — which
    # downstream stage outputs embed — differ by path, so their stage outputs
    # must not share cache rows.
    _update(
        h,
        f"doc:{document.name}:{getattr(document, 'path', '')}:{getattr(document, 'format', '')}",
    )
    for sentence in document.sentences():
        _update(h, f"s:{sentence.position}:{sentence.html_tag}")
        _update(h, "\x1f".join(sentence.words))
        _update(h, "\x1f".join(sentence.lemmas))
        _update(h, "\x1f".join(sentence.pos_tags))
        _update(h, "\x1f".join(sentence.ner_tags))
        for key in sorted(sentence.html_attrs):
            _update(h, f"{key}={sentence.html_attrs[key]}")
        cell = sentence.cell
        if cell is not None:
            _update(
                h,
                f"cell:{cell.row_start}:{cell.col_start}:{cell.row_end}:{cell.col_end}:{cell.is_header}",
            )
        for box in sentence.word_boxes:
            if box is None:
                _update(h, "nobox")
            else:
                _walk(h, box, _MAX_DEPTH - 1)
    return h.hexdigest()


def raw_document_fingerprint(raw: Any) -> str:
    """Content hash of an unparsed RawDocument (name, content, format, metadata)."""
    return stable_fingerprint(raw)
