"""Persistent fork-once worker pool: shared-memory parallelism for slab stages.

``ProcessExecutor.map`` pays its setup cost on every call: each map forks a
fresh ``multiprocessing.Pool``, and results travel back through the task
queue as pickles.  That is fine for one large in-memory map, but the
streaming pipeline issues one small map per shard × stage — at 96 documents
that is ~100 forks per run, and ``benchmarks/results/engine_scaling.md``
showed the process executor *slower than serial* because of it.

:class:`PersistentWorkerPool` moves that cost into one-time setup, the same
philosophy the optimizing-compilation line of work applies to rule execution
(PAPERS.md): fork once per pipeline run, keep the workers alive across
batches *and* stages, and exchange only small control messages over pipes.
The contract that makes this safe and fast:

* **Inheritance over pickling.**  The handler (and everything it closes
  over: the shard store, operators, matchers, labeling functions) is
  inherited by the forked workers through process memory.  Nothing
  unpicklable ever crosses a process boundary; task messages are index
  tuples and result messages are small stat dicts.
* **Zero-copy slab handoff.**  Workers read their inputs from the
  content-addressed, immutable slab files of the
  :class:`~repro.storage.shards.ShardStore` and write their outputs as
  slabs themselves; the parent receives only result keys/stats.  Because
  slabs are written atomically (write-temp + rename) and never mutated in
  place, concurrent readers in other workers can never observe a torn file.
* **Warm per-worker caches.**  Each worker's forked copy of the store keeps
  its own ``BoundedLRU`` of resident shards, so a worker that parses shard
  *k* still holds its documents when the candidate stage of shard *k*
  arrives (the caller steers this with ``affinity``).  Aggregate residency
  is therefore bounded by ``n_workers × max_resident_shards``.
* **Crash containment.**  A worker killed mid-task (OOM killer, ``kill
  -9``) is detected through its process sentinel; the pool respawns the
  slot by re-forking from the parent and retries the in-flight chunk once
  before raising :class:`WorkerCrashError`.  The pool never hangs on a dead
  worker.

Chunk sizes are chosen by :class:`LatencyAutotuner` — a latency-feedback
loop targeting a fixed per-task service time — instead of the static
``ceil(n / (4 · workers))`` heuristic, so cheap units get amortized into
large chunks and expensive units fall back to fine-grained load balancing.

A *hung* worker (deadlocked handler, runaway regex, NFS stall) is the one
failure the sentinel cannot see: the process is alive, it just never
answers.  :class:`WatchdogConfig` closes that gap with per-task soft
deadlines derived from the same autotuner's latency EMA — a task expected
to take ``n · ema`` seconds that runs ``multiplier×`` past that is warned
about, then SIGTERMed, then SIGKILLed, at which point the ordinary death
path (respawn + bounded retry) takes over.  Deadlines scale with observed
service time, so slow-but-progressing workloads never get reaped while a
genuine hang is bounded by ``deadline + 2·grace``.  Respawns back off under
a shared :class:`~repro.storage.retry.RetryPolicy` so a worker that dies
instantly on every fork cannot hot-loop the parent.

Like :class:`~repro.engine.executors.ProcessExecutor`, the pool requires the
``fork`` start method; spawn-only platforms cannot inherit closures and must
use the thread/serial strategies (``create_executor`` degrades loudly).
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.storage.retry import RetryPolicy
from repro.testing import faults

#: Backoff applied between death-triggered worker respawns.
DEFAULT_RESPAWN_BACKOFF = RetryPolicy(attempts=4, base_delay=0.05, max_delay=1.0)


class WorkerCrashError(RuntimeError):
    """A pool worker died mid-task and the retry budget is exhausted."""


class WorkerTaskError(RuntimeError):
    """The handler raised inside a worker; carries the remote traceback."""


@dataclass(frozen=True)
class WatchdogConfig:
    """Deadline policy for detecting hung pool workers.

    A task of ``n`` items gets the soft deadline
    ``max(min_deadline, multiplier · ema · n)`` where ``ema`` is the
    autotuner's per-item service-time estimate — generous enough that load
    skew never trips it, tight enough that a genuine hang is reaped in
    bounded time.  While the EMA is cold (no completions yet)
    ``cold_deadline`` applies instead; its default ``None`` disables the
    watchdog for those first tasks rather than guessing.

    Escalation past the deadline: warn at ``+0``, SIGTERM at ``+grace``,
    SIGKILL at ``+2·grace``; the resulting death flows through the pool's
    normal respawn-and-retry path.
    """

    multiplier: float = 16.0
    min_deadline: float = 10.0
    grace: float = 2.0
    cold_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.multiplier <= 0 or self.min_deadline <= 0 or self.grace <= 0:
            raise ValueError("multiplier, min_deadline and grace must be positive")

    def deadline_for(self, n_items: int, per_item: Optional[float]) -> Optional[float]:
        """Soft deadline (seconds) for a task, or None (no supervision)."""
        if per_item is None or per_item <= 0:
            return self.cold_deadline
        return max(self.min_deadline, self.multiplier * per_item * n_items)


class _InflightTask:
    """Parent-side state of one dispatched chunk, including escalation."""

    __slots__ = ("task_id", "indices", "start", "deadline", "escalation")

    def __init__(
        self, task_id: int, indices: List[int], start: float, deadline: Optional[float]
    ) -> None:
        self.task_id = task_id
        self.indices = indices
        self.start = start
        self.deadline = deadline
        #: 0 running, 1 warned, 2 SIGTERM sent, 3 SIGKILL sent.
        self.escalation = 0


class LatencyAutotuner:
    """Latency-feedback chunk sizing: amortize IPC without losing balance.

    Observes ``(n_items, seconds)`` completions, keeps an exponential moving
    average of the per-item service time, and suggests the chunk size whose
    expected task latency hits ``target_seconds``: fast items get batched
    into large chunks (fewer round-trips), slow items degrade gracefully to
    chunk size 1 (fine-grained load balancing).  Replaces the static
    ``ceil(n / (4 · workers))`` heuristic, which knew neither.
    """

    def __init__(
        self,
        target_seconds: float = 0.25,
        min_chunk: int = 1,
        max_chunk: int = 256,
        smoothing: float = 0.5,
    ) -> None:
        if target_seconds <= 0:
            raise ValueError("target_seconds must be positive")
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        if min_chunk < 1 or max_chunk < min_chunk:
            raise ValueError("need 1 <= min_chunk <= max_chunk")
        self.target_seconds = target_seconds
        self.min_chunk = min_chunk
        self.max_chunk = max_chunk
        self.smoothing = smoothing
        self._per_item: Optional[float] = None

    @property
    def per_item_seconds(self) -> Optional[float]:
        """Current EMA of one unit's service time (None before any data)."""
        return self._per_item

    def observe(self, n_items: int, seconds: float) -> None:
        """Feed one completed task's size and wall-clock latency back in."""
        if n_items < 1:
            return
        sample = max(seconds, 0.0) / n_items
        if self._per_item is None:
            self._per_item = sample
        else:
            alpha = self.smoothing
            self._per_item = alpha * sample + (1 - alpha) * self._per_item

    def chunk(self) -> int:
        """Units per task that should take ~``target_seconds`` to serve."""
        if not self._per_item:
            # No data yet (or items measured as instantaneous): start small —
            # the first observations will grow the chunk within a few tasks.
            return self.min_chunk if self._per_item is None else self.max_chunk
        ideal = int(round(self.target_seconds / self._per_item))
        return max(self.min_chunk, min(self.max_chunk, ideal))

    def chunk_for(self, n_items: int, n_workers: int) -> int:
        """Chunk size for a one-shot map of ``n_items`` over ``n_workers``.

        Cold (no latency data) this reproduces the old static heuristic;
        warm it uses the latency target, capped so every worker still gets
        at least one chunk.
        """
        if n_items < 1:
            return 1
        per_worker = max(1, math.ceil(n_items / max(1, n_workers)))
        if self._per_item is None:
            return max(1, min(per_worker, math.ceil(n_items / (4 * max(1, n_workers)))))
        return min(self.chunk(), per_worker)


def _worker_loop(handler: Callable[[List[Any]], List[Any]], connection) -> None:
    """Recv → handle → send until the shutdown sentinel (or EOF) arrives."""
    # Ctrl-C interrupts the *parent*, which shuts the pool down cleanly
    # (sentinels, then terminate); workers ignoring SIGINT means the whole
    # process group's interrupt cannot kill a worker mid-slab-write and
    # strand a torn artifact behind a still-recorded checkpoint.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - non-main-thread fork
        pass
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, batch = message
        plan = faults.active_plan()
        if plan is not None:
            plan.on_worker_task()
        try:
            results = handler(batch)
            results = list(results)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"pool handler returned {len(results)} results "
                    f"for a batch of {len(batch)}"
                )
            reply = (task_id, True, results)
        except BaseException:
            reply = (task_id, False, traceback.format_exc())
        try:
            connection.send(reply)
        except (BrokenPipeError, OSError):  # parent went away
            break
    try:
        connection.close()
    except OSError:  # pragma: no cover - close is best-effort
        pass


class _Worker:
    """One pool slot: a forked process plus its duplex control pipe."""

    __slots__ = ("process", "connection")

    def __init__(self, process, connection) -> None:
        self.process = process
        self.connection = connection


class PersistentWorkerPool:
    """Fork-once worker pool driven by small control messages over pipes.

    Parameters
    ----------
    handler:
        ``handler(batch) -> results`` — called inside workers with a list of
        task payloads, must return one (picklable) result per payload.  The
        handler and its closure are inherited through the fork, so it may
        hold arbitrarily unpicklable state (stores, operators, lambdas).
    n_workers:
        Pool size.  Workers are forked lazily on first use, so parent state
        mutated before the first ``run``/``imap`` call is still inherited.
    retries:
        How many times a chunk whose worker *died* is retried on a freshly
        respawned worker before :class:`WorkerCrashError` (handler
        exceptions are never retried — they are deterministic).
    autotuner:
        Optional :class:`LatencyAutotuner` deciding units-per-task at
        dispatch time; ``None`` pins chunk size to 1 payload per task.
    watchdog:
        Optional :class:`WatchdogConfig` reaping hung workers.  Deadlines
        derive from the autotuner's latency EMA, so a watchdog without an
        autotuner supervises only through its ``cold_deadline``.
    respawn_backoff:
        :class:`~repro.storage.retry.RetryPolicy` shaping the delay between
        *consecutive* death-triggered respawns (reset by any successful
        task), so a crash loop cannot spin the parent at full speed.
    """

    def __init__(
        self,
        handler: Callable[[List[Any]], List[Any]],
        n_workers: int = 4,
        retries: int = 1,
        autotuner: Optional[LatencyAutotuner] = None,
        watchdog: Optional[WatchdogConfig] = None,
        respawn_backoff: Optional[RetryPolicy] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if not self.is_supported():
            raise RuntimeError(
                "PersistentWorkerPool requires the 'fork' start method, which "
                "this platform does not provide (available: "
                f"{', '.join(multiprocessing.get_all_start_methods())}). "
                "Workers inherit the handler and its state through forked "
                "process memory, so spawn-only platforms (e.g. Windows) "
                "cannot run it — use the thread or serial executor instead."
            )
        self._handler = handler
        self.n_workers = n_workers
        self.retries = retries
        self.autotuner = autotuner
        self.watchdog = watchdog
        self.respawn_backoff = respawn_backoff or DEFAULT_RESPAWN_BACKOFF
        self._context = multiprocessing.get_context("fork")
        self._workers: List[Optional[_Worker]] = [None] * n_workers
        self._task_ids = itertools.count()
        self._respawns = 0
        self._consecutive_respawns = 0
        self._watchdog_warnings = 0
        self._watchdog_kills = 0
        self.watchdog_events: List[Dict[str, Any]] = []
        self._closed = False

    @staticmethod
    def is_supported() -> bool:
        """Fork start method available (true on Linux/macOS CPython)."""
        return "fork" in multiprocessing.get_all_start_methods()

    @property
    def respawns(self) -> int:
        """How many workers have been respawned after dying mid-task."""
        return self._respawns

    @property
    def watchdog_warnings(self) -> int:
        """How many tasks ran past their soft deadline (warned or worse)."""
        return self._watchdog_warnings

    @property
    def watchdog_kills(self) -> int:
        """How many hung workers needed SIGKILL (survived SIGTERM + grace)."""
        return self._watchdog_kills

    def _note_watchdog(self, action: str, slot: int, task: "_InflightTask") -> None:
        self.watchdog_events.append(
            {
                "action": action,
                "slot": slot,
                "task_id": task.task_id,
                "n_items": len(task.indices),
                "deadline": task.deadline,
                "elapsed": time.perf_counter() - task.start,
            }
        )

    def _respawn_delay(self) -> None:
        """Back off before re-forking when deaths are arriving in a run."""
        if self._consecutive_respawns > 0:
            self.respawn_backoff.backoff(
                min(self._consecutive_respawns, self.respawn_backoff.attempts) - 1
            )

    # ------------------------------------------------------------- lifecycle
    def _spawn(self, slot: int) -> _Worker:
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_loop,
            args=(self._handler, child_end),
            daemon=True,
            name=f"repro-pool-{slot}",
        )
        process.start()
        # The parent's copy of the child end must close so only the worker
        # holds it; otherwise a dead worker's pipe would never report EOF.
        child_end.close()
        worker = _Worker(process, parent_end)
        self._workers[slot] = worker
        return worker

    def _discard(self, slot: int) -> None:
        worker = self._workers[slot]
        if worker is None:
            return
        try:
            worker.connection.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        self._workers[slot] = None

    def _ensure_alive(self, slot: int) -> _Worker:
        worker = self._workers[slot]
        if worker is not None and worker.process.is_alive():
            return worker
        if worker is not None:
            self._discard(slot)
            self._respawns += 1
        return self._spawn(slot)

    def close(self) -> None:
        """Shut the workers down (idempotent; also the context-manager exit)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.connection.send(None)
            except (BrokenPipeError, OSError):
                pass
        for slot in range(self.n_workers):
            self._discard(slot)

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ scheduling
    def run(
        self,
        items: Sequence[Any],
        affinity: Optional[Sequence[int]] = None,
    ) -> List[Any]:
        """Map the handler over ``items``; results in input order."""
        items = list(items)
        results: List[Any] = [None] * len(items)
        for index, result, _seconds in self.imap(items, affinity=affinity):
            results[index] = result
        return results

    def imap(
        self,
        items: Sequence[Any],
        affinity: Optional[Sequence[int]] = None,
    ) -> Iterator[Tuple[int, Any, float]]:
        """Yield ``(index, result, seconds_per_item)`` in completion order.

        ``affinity[i] % n_workers`` picks item *i*'s home worker (defaults
        to ``i % n_workers``), which is how callers keep one shard's stages
        on one worker so its forked ``BoundedLRU`` stays warm.  Idle workers
        steal from the longest backlog, so skew never idles the pool.
        """
        items = list(items)
        if not items:
            return
        if self._closed:
            raise RuntimeError("pool is closed")
        if affinity is not None and len(affinity) != len(items):
            raise ValueError(
                f"got {len(items)} items but {len(affinity)} affinity hints"
            )

        n = self.n_workers
        queues: List[deque] = [deque() for _ in range(n)]
        for index in range(len(items)):
            home = (affinity[index] if affinity is not None else index) % n
            queues[home].append(index)
        attempts: Dict[int, int] = {}
        inflight: Dict[int, _InflightTask] = {}

        def take_chunk(slot: int) -> List[int]:
            source = queues[slot]
            if not source:
                source = max(queues, key=len)
            if not source:
                return []
            size = self.autotuner.chunk() if self.autotuner is not None else 1
            size = max(1, min(size, len(source)))
            return [source.popleft() for _ in range(size)]

        def dispatch(slot: int) -> None:
            indices = take_chunk(slot)
            if not indices:
                return
            worker = self._ensure_alive(slot)
            task_id = next(self._task_ids)
            try:
                worker.connection.send((task_id, [items[i] for i in indices]))
            except (BrokenPipeError, OSError):
                # Died between the aliveness check and the send: not a task
                # failure (nothing ran), so requeue without charging retries.
                for i in reversed(indices):
                    queues[slot].appendleft(i)
                self._discard(slot)
                self._respawns += 1
                self._consecutive_respawns += 1
                self._respawn_delay()
                return
            deadline = None
            if self.watchdog is not None:
                per_item = (
                    self.autotuner.per_item_seconds
                    if self.autotuner is not None
                    else None
                )
                deadline = self.watchdog.deadline_for(len(indices), per_item)
            inflight[slot] = _InflightTask(
                task_id, indices, time.perf_counter(), deadline
            )

        def on_death(slot: int) -> None:
            task = inflight.pop(slot)
            worker = self._workers[slot]
            exitcode = worker.process.exitcode if worker is not None else None
            self._discard(slot)
            self._respawns += 1
            self._consecutive_respawns += 1
            for i in task.indices:
                attempts[i] = attempts.get(i, 0) + 1
                if attempts[i] > self.retries:
                    raise WorkerCrashError(
                        f"pool worker for slot {slot} died (exitcode "
                        f"{exitcode}) while processing task {task.task_id} "
                        f"(items {task.indices}); chunk already retried "
                        f"{self.retries} time(s)"
                    )
            for i in reversed(task.indices):
                queues[slot].appendleft(i)
            self._respawn_delay()

        def escalation_at(task: _InflightTask) -> Optional[float]:
            """Absolute time of this task's next watchdog action, or None."""
            if task.deadline is None or task.escalation >= 3:
                return None
            base = task.start + task.deadline
            return base + task.escalation * self.watchdog.grace

        def run_watchdog(now: float) -> None:
            for slot in list(inflight):
                task = inflight[slot]
                if task.deadline is None:
                    continue
                overshoot = now - task.start - task.deadline
                if overshoot < 0:
                    continue
                worker = self._workers[slot]
                if task.escalation == 0:
                    task.escalation = 1
                    self._watchdog_warnings += 1
                    self._note_watchdog("warn", slot, task)
                if task.escalation == 1 and overshoot >= self.watchdog.grace:
                    task.escalation = 2
                    self._note_watchdog("sigterm", slot, task)
                    worker.process.terminate()
                if task.escalation == 2 and overshoot >= 2 * self.watchdog.grace:
                    task.escalation = 3
                    self._watchdog_kills += 1
                    self._note_watchdog("sigkill", slot, task)
                    worker.process.kill()
                # The kill lands asynchronously; the sentinel wakes the wait
                # below and the ordinary death path respawns and retries.

        try:
            while inflight or any(queues):
                for slot in range(n):
                    if slot not in inflight and any(queues):
                        dispatch(slot)
                if not inflight:
                    continue
                waitables: List[Any] = []
                horizon: Optional[float] = None
                for slot, task in inflight.items():
                    worker = self._workers[slot]
                    waitables.append(worker.connection)
                    waitables.append(worker.process.sentinel)
                    wakeup = escalation_at(task)
                    if wakeup is not None:
                        horizon = wakeup if horizon is None else min(horizon, wakeup)
                timeout = (
                    None
                    if horizon is None
                    else max(0.0, horizon - time.perf_counter()) + 0.005
                )
                connection_wait(waitables, timeout=timeout)
                if self.watchdog is not None:
                    run_watchdog(time.perf_counter())
                for slot in list(inflight):
                    worker = self._workers[slot]
                    if worker.connection.poll():
                        task = inflight[slot]
                        try:
                            message = worker.connection.recv()
                        except (EOFError, OSError):
                            # Killed mid-send: a torn message is a death.
                            on_death(slot)
                            continue
                        if message[0] != task.task_id:
                            # Stale reply from a task whose consumer went
                            # away (generator closed mid-wave); drop it.
                            continue
                        inflight.pop(slot)
                        _task_id, ok, payload = message
                        if not ok:
                            raise WorkerTaskError(
                                "pool handler raised in worker "
                                f"{slot}:\n{payload}"
                            )
                        self._consecutive_respawns = 0
                        elapsed = time.perf_counter() - task.start
                        if self.autotuner is not None:
                            self.autotuner.observe(len(task.indices), elapsed)
                        per_item = elapsed / len(task.indices)
                        for i, result in zip(task.indices, payload):
                            yield i, result, per_item
                    elif not worker.process.is_alive():
                        on_death(slot)
        except BaseException:
            # A raised error (task failure, crash budget, caller abort via
            # generator close) leaves in-flight replies in the pipes; the
            # pool cannot tell them apart from the next call's replies, so
            # fail the whole pool rather than serve stale results.
            self.close()
            raise
