"""Operators: the per-document UDFs of the KBC pipeline, wrapped for the engine.

An :class:`Operator` is a ``map``-style unit of work — one picklable-output
function applied independently to each work unit (one document) — plus the two
fingerprints the incremental cache needs: a *configuration* fingerprint (what
the operator would compute) and a *unit* fingerprint (what it computes on).

The per-document concrete operators wrap the existing phase components
unchanged:

========================  ==============================  =====================
operator                  wraps                           unit → result
========================  ==============================  =====================
:class:`ParseOp`          ``CorpusParser``                RawDocument → Document
:class:`NodeTableOp`      ``NodeTable``                   Document → interval-encoding arrays
:class:`CandidateOp`      ``CandidateExtractor``          Document → ExtractionResult
:class:`FeaturizeOp`      ``Featurizer``                  ExtractionResult → feature rows
:class:`LabelOp`          ``LFApplier``                   ExtractionResult → dense label block
========================  ==============================  =====================

``FeaturizeOp`` and ``LabelOp`` consume the *upstream* candidate stage's
per-document output, so the engine can chain them in a DAG without re-keying.

The same operators serve both execution modes: the in-memory DAG maps them
over per-document units (`PipelineEngine.run`), and streaming mode maps them
over the documents of one :class:`~repro.storage.shards.ShardHandle` at a
time (`PipelineEngine.run_shard_stage`), consuming inputs from and emitting
outputs to the shard store's slabs instead of in-memory lists.  Operators are
granularity-agnostic — only the keying (per document vs per shard) differs.

Two further operators cover the *learning tail* of the pipeline.  Unlike the
per-document stages they are corpus-global — the label model's EM and the
discriminative training consume every shard's slabs — so they never run
through an executor map; they exist as operators for their **fingerprints**:

========================  ==============================  =====================
operator                  wraps                           input → result
========================  ==============================  =====================
:class:`MarginalsOp`      ``LabelModel`` / majority vote  label blocks → marginals
:class:`TrainOp`          registry model + ``Trainer``    batches → trained model
========================  ==============================  =====================

Their cache keys chain from every shard's upstream stage keys
(``H(label keys… | MarginalsOp fp)`` and ``H(marginals key | feature keys… |
TrainOp fp)``), so editing one labeling function re-runs exactly label →
marginals → train, and editing one model hyperparameter re-runs training
alone.

Finally, :class:`KBOp` closes the chain at the *knowledge base*: its derived
key per shard is ``H(candidates key | featurize key | train key | KBOp fp)``
— everything the shard's classified tuple set depends on (its candidates and
spans, the feature rows its marginals were predicted from, the trained model,
and the classification threshold carried in the fingerprint).  The streaming
pipeline hands these keys to the :class:`~repro.kb.store.KBStore` so an
incremental re-run republishes only the shards whose classify keys changed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.candidates.extractor import CandidateExtractor, ExtractionResult
from repro.data_model.context import Document
from repro.data_model.index import INDEX_SCHEMA_VERSION, traversal_mode
from repro.data_model.nodes import node_table
from repro.engine.fingerprint import (
    NODE_TABLE_SCHEMA_VERSION,
    combine_keys,
    document_fingerprint,
    raw_document_fingerprint,
    stable_fingerprint,
)
from repro.features.cache import MentionFeatureCache
from repro.features.featurizer import Featurizer
from repro.parsing.corpus import CorpusParser, RawDocument
from repro.supervision.labeling import LFApplier, LabelingFunction


class Operator:
    """A per-work-unit UDF with content-addressable configuration."""

    name = "operator"

    def config_state(self) -> Any:
        """Everything the computation depends on besides the unit itself."""
        return None

    def fingerprint(self) -> str:
        """Stable fingerprint of (operator type, configuration).

        Recomputed on every call — deliberately not memoized, so mutating the
        wrapped component's configuration between runs is picked up and
        invalidates the stage (hashing config state is cheap next to a stage).
        """
        return stable_fingerprint(
            (type(self).__qualname__, self.name, self.config_state())
        )

    def unit_fingerprint(self, unit: Any) -> str:
        """Content hash of one work unit (used for source-stage cache keys)."""
        return stable_fingerprint(unit)

    def process(self, unit: Any) -> Any:
        """Compute this operator's result for one work unit."""
        raise NotImplementedError

    def process_many(self, units: Sequence[Any]) -> List[Any]:
        """Compute results for a whole batch of units (one worker task).

        The persistent worker pool (:mod:`repro.engine.pool`) hands a forked
        worker an entire shard at once; operators may override this to hoist
        per-unit setup out of the loop (see :meth:`LabelOp.process_many`).
        Overrides must stay element-wise pure — the batch split is a
        scheduling decision, and every executor strategy must produce
        byte-identical results.
        """
        return [self.process(unit) for unit in units]

    def __call__(self, unit: Any) -> Any:
        return self.process(unit)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"


class ParseOp(Operator):
    """Phase 1: raw document → annotated data-model Document."""

    name = "parse"

    def __init__(self, parser: Optional[CorpusParser] = None) -> None:
        self.parser = parser or CorpusParser()

    def config_state(self) -> Any:
        # The full NLP pipeline object, not just its class: custom NER
        # dictionaries and any other component state must key the cache, or
        # differently-configured parsers would share parse results.
        return {
            "nlp": self.parser.nlp,
            "layout": self.parser.layout_engine.config,
        }

    def unit_fingerprint(self, unit: RawDocument) -> str:
        return raw_document_fingerprint(unit)

    def process(self, unit: RawDocument) -> Document:
        return self.parser.parse_document(unit)


class NodeTableOp(Operator):
    """Phase 1b: Document → pre/post-order node-table arrays.

    Materializes the interval encoding of each document's context tree
    (:class:`~repro.data_model.nodes.NodeTable`) as flat numpy columns; the
    streaming pipeline persists them as a per-shard ``nodes.npz`` slab with
    its own chained stage key, so the encoding is covered by the same
    resume / verify / repair machinery as every other artifact class.
    """

    name = "nodes"

    def config_state(self) -> Any:
        # Nothing configurable: the encoding is a pure function of the parsed
        # tree, keyed only by its slab-layout generation.
        return {"node_table_schema": NODE_TABLE_SCHEMA_VERSION}

    def unit_fingerprint(self, unit: Document) -> str:
        return document_fingerprint(unit)

    def process(self, unit: Document) -> Dict[str, np.ndarray]:
        return node_table(unit).to_arrays()


class CandidateOp(Operator):
    """Phase 2: Document → per-document ExtractionResult."""

    name = "candidates"

    def __init__(self, extractor: CandidateExtractor) -> None:
        self.extractor = extractor

    def config_state(self) -> Any:
        extractor = self.extractor
        return {
            "relation": extractor.relation,
            "matchers": extractor.matchers,
            "mention_space": extractor.mention_space,
            "throttlers": extractor.throttlers,
            "context_scope": extractor.context_scope,
            # The columnar-index path and its schema generation key the cache:
            # both paths produce identical results, but a future index layout
            # change must not silently reuse stage outputs computed under the
            # old one.
            "use_index": extractor.use_index,
            "index_schema": INDEX_SCHEMA_VERSION if extractor.use_index else None,
            # The candidate slab records each tuple's span interval (the
            # pre-rank range the KB's ``within`` filter evaluates), derived
            # from the node table on *both* traversal paths — so its schema
            # generation keys the stage unconditionally.
            "node_intervals": NODE_TABLE_SCHEMA_VERSION,
        }

    def unit_fingerprint(self, unit: Document) -> str:
        return document_fingerprint(unit)

    def process(self, unit: Document) -> ExtractionResult:
        return self.extractor.extract_from_document(unit)


class FeaturizeOp(Operator):
    """Phase 3a: per-document candidates → per-candidate feature rows.

    Each invocation featurizes one document's candidates against a fresh
    per-document mention cache, which keeps the paper's caching semantics
    (flush at document boundaries) *and* makes the operator safe to run
    concurrently from threads or forked processes.
    """

    name = "featurize"

    def __init__(self, featurizer: Featurizer) -> None:
        self.featurizer = featurizer

    def config_state(self) -> Any:
        config = self.featurizer.config
        return {
            "config": config,  # includes use_index (FeatureConfig field)
            "index_schema": INDEX_SCHEMA_VERSION if config.use_index else None,
        }

    def unit_fingerprint(self, unit: ExtractionResult) -> str:
        raise TypeError(
            "FeaturizeOp consumes an upstream candidate stage; "
            "chain it in a DAG instead of using it as a source stage"
        )

    def process(self, unit: ExtractionResult) -> List[Dict[str, float]]:
        cache = MentionFeatureCache(enabled=self.featurizer.config.use_cache)
        return self.featurizer.feature_rows(unit.candidates, cache=cache)


class LabelOp(Operator):
    """Phase 3b: per-document candidates → dense label-matrix block.

    The result is the ``(n_candidates_in_doc, n_lfs)`` slice of the label
    matrix Λ; the driver stacks the per-document blocks in corpus order.
    """

    name = "label"

    def __init__(
        self,
        labeling_functions: Sequence[LabelingFunction],
        use_index: bool = True,
    ) -> None:
        self.labeling_functions = list(labeling_functions)
        self.applier = LFApplier(self.labeling_functions) if self.labeling_functions else None
        self.use_index = use_index

    @property
    def lf_names(self) -> List[str]:
        """Column names of the label blocks (recorded in shard manifests)."""
        return [lf.name for lf in self.labeling_functions]

    def config_state(self) -> Any:
        # LabelingFunction is a dataclass holding the function object, so the
        # fingerprint covers LF names, modalities, bytecode and closures —
        # editing an LF's body is enough to invalidate the label stage.
        return {
            "lfs": self.labeling_functions,
            "use_index": self.use_index,
            "index_schema": INDEX_SCHEMA_VERSION if self.use_index else None,
        }

    def unit_fingerprint(self, unit: ExtractionResult) -> str:
        raise TypeError(
            "LabelOp consumes an upstream candidate stage; "
            "chain it in a DAG instead of using it as a source stage"
        )

    def process(self, unit: ExtractionResult) -> np.ndarray:
        if self.applier is None:
            return np.zeros((len(unit.candidates), 0), dtype=np.int8)
        # LFs call the traversal helpers (row_ngrams & friends); run them in
        # the configured traversal mode so the legacy fallback stays pure.
        with traversal_mode(self.use_index):
            return self.applier.apply_dense(unit.candidates)

    def process_many(self, units: Sequence[ExtractionResult]) -> List[np.ndarray]:
        # Enter the traversal mode once per batch instead of once per
        # document — pooled workers label whole shards per task, and the
        # mode switch is pure configuration (identical blocks either way).
        if self.applier is None:
            return [
                np.zeros((len(unit.candidates), 0), dtype=np.int8) for unit in units
            ]
        with traversal_mode(self.use_index):
            return [self.applier.apply_dense(unit.candidates) for unit in units]


class MarginalsOp(Operator):
    """Phase 3c: label matrix → per-candidate noise-aware marginals.

    Corpus-global: the generative model's EM estimates LF accuracies from the
    agreement structure of the *whole* label matrix, so this operator consumes
    a block source over every shard's label slab (or a resident matrix) rather
    than per-document units.  A single labeling function carries no agreement
    structure, in which case its votes are used directly (majority vote) —
    mirroring ``FonduerPipeline.compute_marginals``.

    The fingerprint covers the label-model configuration; the *derived* cache
    key additionally chains every shard's label-stage key, so editing one LF
    or one document invalidates the marginals (and everything downstream).
    """

    name = "marginals"

    def __init__(self, label_model_config: Any = None) -> None:
        from repro.supervision.label_model import LabelModelConfig

        self.label_model_config = label_model_config or LabelModelConfig()

    def config_state(self) -> Any:
        return {"config": self.label_model_config}

    def unit_fingerprint(self, unit: Any) -> str:
        raise TypeError(
            "MarginalsOp is corpus-global; its cache key chains from the "
            "label stage keys of every shard, not from per-document units"
        )

    def process(self, source: Any) -> np.ndarray:
        """Fit + predict over a label block source (or resident matrix)."""
        from repro.learning.trainer import BatchSource
        from repro.supervision.label_model import LabelModel, MajorityVoter

        n_lfs = (
            int(getattr(source, "n_lfs", None) or 0)
            if isinstance(source, BatchSource)
            else int(np.asarray(source).shape[1])
        )
        if n_lfs == 1:
            # A single LF carries no agreement structure; use its votes
            # directly (majority vote is row-wise, so blockwise == global).
            voter = MajorityVoter()
            if isinstance(source, BatchSource):
                chunks = [
                    voter.predict_proba(
                        source.batch(np.arange(lo, min(lo + 4096, len(source)))).labels
                    )
                    for lo in range(0, len(source), 4096)
                ]
                return np.concatenate(chunks) if chunks else np.zeros(0)
            return voter.predict_proba(np.asarray(source))
        model = LabelModel(self.label_model_config)
        return model.fit_predict_proba(source)


class TrainOp(Operator):
    """Phase 3d: feature batches + marginal targets → trained model.

    Corpus-global like :class:`MarginalsOp`.  The configuration fingerprint
    covers everything that determines the trained weights given the batches:
    the registry model name, its full hyperparameter config (epoch schedule
    included), the trainer's batch schedule and the train/test split policy.
    The derived cache key chains the marginals key and every shard's
    featurize-stage key on top, so a feature-config edit retrains while a
    threshold change does not.
    """

    name = "train"

    def __init__(
        self,
        model_name: str,
        model_config: Any,
        batch_size: int,
        seed: int,
        train_split: float,
    ) -> None:
        self.model_name = model_name
        self.model_config = model_config
        self.batch_size = batch_size
        self.seed = seed
        self.train_split = train_split

    def config_state(self) -> Any:
        return {
            "model": self.model_name,
            "model_config": self.model_config,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "train_split": self.train_split,
        }

    def unit_fingerprint(self, unit: Any) -> str:
        raise TypeError(
            "TrainOp is corpus-global; its cache key chains from the marginals "
            "key and the featurize stage keys of every shard"
        )

    def n_epochs(self) -> int:
        return int(self.model_config.n_epochs)

    def build_model(self, arity: int, config: Any) -> Any:
        from repro.learning.registry import create_model

        return create_model(self.model_name, arity, config)

    def build_trainer(self) -> Any:
        from repro.learning.trainer import Trainer, TrainerConfig

        return Trainer(
            TrainerConfig(
                n_epochs=self.n_epochs(),
                batch_size=self.batch_size,
                seed=self.seed,
            )
        )

    def process(self, unit: Any) -> Any:
        raise TypeError(
            "TrainOp does not map over units; use build_model/build_trainer "
            "with a BatchSource (see FonduerPipeline.run_streaming)"
        )


class KBOp(Operator):
    """Phase 3e: per-shard classified candidates → queryable KB segments.

    The fingerprint covers everything classification depends on *besides* the
    upstream stage outputs: the relation name, the marginal threshold and the
    KB store's on-disk schema generation (a layout change must republish
    rather than reuse segments written under the old layout).

    :meth:`shard_key` derives one shard's classify key by chaining its
    candidates key (tuple identities + spans), its featurize key (the rows
    its marginals were predicted from) and the corpus-global train key (the
    model those predictions came from).  A threshold edit re-keys every shard
    but recomputes only a cheap marginal filter; shards whose above-threshold
    set did not change then content-hash to their existing segment files and
    nothing is rewritten (see :class:`repro.kb.store.KBUpdate`).
    """

    name = "kb"

    def __init__(self, relation: str, threshold: float) -> None:
        self.relation = relation
        self.threshold = threshold

    def config_state(self) -> Any:
        from repro.kb.store import KB_SCHEMA_VERSION

        return {
            "relation": self.relation,
            "threshold": self.threshold,
            "kb_schema": KB_SCHEMA_VERSION,
        }

    def shard_key(self, candidates_key: str, featurize_key: str, train_key: str) -> str:
        """One shard's derived classify key (chains every classify input)."""
        return combine_keys(candidates_key, featurize_key, train_key, self.fingerprint())

    def unit_fingerprint(self, unit: Any) -> str:
        raise TypeError(
            "KBOp derives per-shard keys from upstream stage keys via "
            "shard_key(); it has no source-stage units"
        )

    def process(self, unit: Any) -> Any:
        raise TypeError(
            "KBOp does not map over units; the streaming pipeline filters "
            "each shard's marginals and upserts through KBStore.begin_update()"
        )
