"""The incremental cache: content-addressed storage of per-document stage outputs.

Keys are derived by the engine as ``H(upstream_key | operator_fingerprint)``
(see :mod:`repro.engine.fingerprint`), which gives the two incremental
behaviours the development loop needs for free:

* editing a document changes its content hash, so every stage recomputes for
  that document — and only that document;
* editing an operator's configuration (e.g. swapping labeling functions)
  changes that operator's fingerprint, so its stage — and every stage
  downstream of it — recomputes, while upstream stages keep hitting.

The cache is an in-memory LRU with hit/miss counters — unbounded by default,
bounded when ``max_entries`` is set (``FonduerConfig.cache_max_entries``); a
disabled cache degrades to "always miss, never store" so the engine code path
stays uniform.

In streaming mode the cache additionally records *per-shard stage keys*
(stage name → shard id → derived key): the shard id is content-addressed from
its member documents, so editing one document changes exactly one shard's id,
and the recorded key chain shows precisely which shard × stage pairs are
stale.  The :class:`~repro.storage.shards.ShardStore` manifest persists the
same keys across processes; this in-memory record is the within-process view.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

#: Sentinel distinguishing "not cached" from a cached ``None`` result.
MISS = object()


class IncrementalCache:
    """LRU mapping cache key → stage output for one work unit (optionally bounded)."""

    def __init__(self, enabled: bool = True, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self.enabled = enabled
        self.max_entries = max_entries
        self._store: "OrderedDict[str, Any]" = OrderedDict()
        # stage name -> shard id -> the derived key of that shard's latest run.
        self._stage_keys: Dict[str, Dict[str, str]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: str) -> Any:
        """Return the cached value for ``key`` or the :data:`MISS` sentinel."""
        if not self.enabled:
            self.misses += 1
            return MISS
        if key in self._store:
            self.hits += 1
            self._store.move_to_end(key)
            return self._store[key]
        self.misses += 1
        return MISS

    def put(self, key: str, value: Any) -> None:
        if not self.enabled:
            return
        self._store[key] = value
        self._store.move_to_end(key)
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        return self._store.pop(key, MISS) is not MISS

    # ------------------------------------------------------- per-shard keys
    def record_stage_key(self, stage: str, shard_id: str, key: str) -> None:
        """Record the derived cache key of one shard × stage execution.

        Shard ids are content hashes of the shard's member documents, so a
        one-document edit re-keys exactly one shard: every other shard's
        recorded key still matches and its stages are skipped.
        """
        self._stage_keys.setdefault(stage, {})[shard_id] = key

    def stage_key(self, stage: str, shard_id: str) -> Optional[str]:
        """The recorded key for one shard × stage, or ``None``."""
        return self._stage_keys.get(stage, {}).get(shard_id)

    def stage_shards(self, stage: str) -> Dict[str, str]:
        """All recorded shard id → key pairs of one stage (a copy)."""
        return dict(self._stage_keys.get(stage, {}))

    def clear(self) -> None:
        self._store.clear()
        self._stage_keys.clear()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def size(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)
