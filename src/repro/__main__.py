"""Command-line interface: ``python -m repro``.

Six subcommands expose the out-of-core streaming pipeline end to end:

``gen-corpus``
    Materialize one of the synthetic evaluation domains as an on-disk corpus
    directory (one file per raw document, plus ``corpus.json`` ordering and
    ``gold.json`` ground truth) — the input format ``stream``/``train``
    consume.

``stream``
    Run the full KBC pipeline over a corpus directory in streaming mode:
    documents are partitioned into content-addressed shards, every stage's
    output is spilled to per-shard slabs under ``--workdir``, and progress is
    checkpointed after each shard × stage (plus the corpus-global marginals
    stage and every training epoch).  Re-invoking with the same workdir
    resumes from the last completed boundary (kill it mid-run and run it
    again to see the resume accounting).

``train``
    The learning-focused face of the same run: parse → … → marginals →
    mini-batch training over shard slabs, with model selection via the
    registry (``--model``), epoch/batch overrides, and per-epoch training
    checkpoints — kill it mid-training and re-invoke to resume at the last
    epoch boundary.

``serve``
    Serve the queryable KB a streaming run published under ``workdir/kb``
    over stdlib HTTP: ``GET /query`` (filtered, paginated tuple lookups
    with provenance), ``GET /stats``, ``GET /health``.  A re-run that
    republishes the KB becomes visible to a running server without a
    restart (the snapshot pointer is re-read when its version advances).

``query``
    One filtered lookup from the command line — either directly against
    ``workdir/kb`` or against a running ``serve`` endpoint (``--url``).
    Remote queries retry transient failures with bounded exponential
    backoff and exit ``3`` with a clear message when the endpoint stays
    unreachable.

``verify``
    Audit every checkpointed artifact in a workdir — shard slabs against
    the content hashes in their stage records, KB segments against their
    content-addressed filenames, the snapshot pointer against its schema —
    and exit ``1`` if anything is corrupt.  With ``--repair`` (plus the
    corpus), corrupt artifacts are quarantined and re-derived through the
    stage key chain to byte-identical state (``docs/RELIABILITY.md``).

``stream``/``train``/``serve`` exit ``130`` on Ctrl-C after a clean
shutdown; streaming progress is checkpointed, so re-running the same
command resumes at the last completed boundary.

Example::

    python -m repro gen-corpus --dataset electronics --n-docs 20 --out corpus/
    python -m repro stream --dataset electronics --corpus-dir corpus/ \\
        --workdir work/ --shard-size 4 --max-resident-shards 2
    python -m repro serve --workdir work/ --port 8080 &
    python -m repro query --url http://127.0.0.1:8080 --entity mps9916
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.datasets import load_dataset
from repro.datasets.base import corpus_dir_records, write_corpus_dir
from repro.kb.query import DEFAULT_LIMIT, KBQuery
from repro.learning.registry import available_models, model_spec
from repro.pipeline.config import FonduerConfig
from repro.pipeline.fonduer import FonduerPipeline


def _add_gen_corpus_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "gen-corpus", help="write a synthetic domain corpus to a directory"
    )
    parser.add_argument(
        "--dataset",
        default="electronics",
        choices=["electronics", "advertisements", "paleontology", "genomics"],
        help="which evaluation domain to generate",
    )
    parser.add_argument("--n-docs", type=int, default=20, help="corpus size")
    parser.add_argument("--seed", type=int, default=0, help="generation seed")
    parser.add_argument("--out", required=True, help="corpus directory to create")


def _add_streaming_arguments(parser) -> None:
    parser.add_argument(
        "--dataset",
        default="electronics",
        choices=["electronics", "advertisements", "paleontology", "genomics"],
        help="domain whose schema/matchers/labeling functions to use",
    )
    parser.add_argument("--corpus-dir", required=True, help="corpus directory to read")
    parser.add_argument(
        "--workdir", required=True, help="shard store directory (slabs + manifest)"
    )
    parser.add_argument("--shard-size", type=int, default=8, help="documents per shard")
    parser.add_argument(
        "--max-resident-shards",
        type=int,
        default=4,
        help="memory bound: shards held in RAM at once",
    )
    parser.add_argument(
        "--executor",
        default="serial",
        choices=["serial", "thread", "process", "pool"],
        help="execution strategy ('process'/'pool' stream shards through "
        "the persistent fork-once worker pool)",
    )
    parser.add_argument("--n-workers", type=int, default=4, help="worker count")
    parser.add_argument(
        "--threshold", type=float, default=0.5, help="classification threshold"
    )
    parser.add_argument(
        "--integrity",
        default="sample",
        choices=["off", "sample", "always"],
        help="verify-on-read policy for shard slabs (corrupt slabs are "
        "quarantined and re-derived; see docs/RELIABILITY.md)",
    )
    parser.add_argument(
        "--worker-deadline",
        type=float,
        default=None,
        help="hard per-chunk deadline (seconds) for the pooled executors' "
        "hung-worker watchdog (default: adaptive from observed latency)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-boundary progress lines"
    )


def _add_stream_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "stream", help="run the streaming KBC pipeline over a corpus directory"
    )
    _add_streaming_arguments(parser)


def _add_train_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "train",
        help="streaming parse→train run with registry model selection and "
        "per-epoch checkpoint/resume",
    )
    _add_streaming_arguments(parser)
    parser.add_argument(
        "--model",
        default="logistic",
        choices=list(available_models()),
        help="registry model to train (streaming requires a slab-trainable one)",
    )
    parser.add_argument(
        "--epochs", type=int, default=None, help="override the model's epoch schedule"
    )
    parser.add_argument(
        "--batch-size", type=int, default=32, help="mini-batch size of the Trainer"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="the run's single RNG seed"
    )


def _add_kb_dir_arguments(parser) -> None:
    group = parser.add_mutually_exclusive_group(required=False)
    group.add_argument(
        "--workdir", help="streaming workdir; the KB store lives under <workdir>/kb"
    )
    group.add_argument("--kb-dir", help="KB store directory (overrides --workdir)")


def _kb_root(args: argparse.Namespace) -> Path:
    if getattr(args, "kb_dir", None):
        return Path(args.kb_dir)
    if getattr(args, "workdir", None):
        return Path(args.workdir) / "kb"
    raise SystemExit("error: one of --workdir / --kb-dir is required")


def _add_serve_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve", help="serve the published KB over HTTP (versioned /v1 API)"
    )
    _add_kb_dir_arguments(parser)
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = pick an unused port)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes accepting from one shared socket "
        "(KB segments are mmap-shared, not copied per worker)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="per-worker load-shedding bound (beyond it: 503 + Retry-After)",
    )
    parser.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        help="per-request soft deadline in seconds (overruns answer 504)",
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="per-worker response-cache bound (0 disables caching)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log one JSON line per request"
    )


def _add_query_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "query", help="one filtered KB lookup (local store or running server)"
    )
    _add_kb_dir_arguments(parser)
    parser.add_argument(
        "--url", help="query a running `serve` endpoint instead of the local store"
    )
    parser.add_argument("--relation", help="filter: relation name")
    parser.add_argument("--doc", help="filter: source document name or path")
    parser.add_argument(
        "--entity", help="filter: entity ngram (word) or full normalized entity"
    )
    parser.add_argument(
        "--within",
        help="filter: structural containment, 'LO-HI' pre-order interval of "
        "the document's node table (requires --doc)",
    )
    parser.add_argument("--min-marginal", type=float, help="filter: marginal >= X")
    parser.add_argument("--max-marginal", type=float, help="filter: marginal <= X")
    parser.add_argument(
        "--offset",
        type=int,
        default=0,
        help="pagination offset (local stores only; /v1 paginates by cursor)",
    )
    parser.add_argument(
        "--cursor",
        help="resume token from a previous page's next_cursor",
    )
    parser.add_argument(
        "--limit", type=int, default=DEFAULT_LIMIT, help="pagination page size"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the raw JSON result envelope"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-attempt timeout (seconds) for --url requests",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="total attempts against an unreachable --url endpoint",
    )


def _add_verify_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "verify",
        help="audit every checkpointed artifact's content hash "
        "(--repair re-derives corrupt ones through the stage key chain)",
    )
    parser.add_argument(
        "--workdir", required=True, help="streaming workdir to audit"
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt artifacts and re-derive them "
        "(requires --corpus-dir)",
    )
    parser.add_argument(
        "--dataset",
        default="electronics",
        choices=["electronics", "advertisements", "paleontology", "genomics"],
        help="domain spec the workdir was built with (used by --repair)",
    )
    parser.add_argument(
        "--corpus-dir", help="the run's corpus directory (required by --repair)"
    )
    parser.add_argument("--shard-size", type=int, default=8, help="documents per shard")
    parser.add_argument(
        "--max-resident-shards", type=int, default=4, help="memory bound"
    )
    parser.add_argument(
        "--threshold", type=float, default=0.5, help="classification threshold"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the raw JSON report"
    )


def _command_gen_corpus(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, n_docs=args.n_docs, seed=args.seed)
    write_corpus_dir(dataset.corpus, args.out)
    print(
        f"Wrote {dataset.corpus.n_documents} {args.dataset!r} documents "
        f"({len(dataset.corpus.gold_entries)} gold entries) to {args.out}"
    )
    return 0


def _make_config(args: argparse.Namespace) -> FonduerConfig:
    config = FonduerConfig(
        threshold=args.threshold,
        executor=args.executor,
        n_workers=args.n_workers,
        shard_size=args.shard_size,
        max_resident_shards=args.max_resident_shards,
        model=getattr(args, "model", "logistic"),
        batch_size=getattr(args, "batch_size", 32),
        seed=getattr(args, "seed", 0),
        integrity=getattr(args, "integrity", "sample"),
        worker_deadline=getattr(args, "worker_deadline", None),
    )
    epochs = getattr(args, "epochs", None)
    if epochs is not None:
        if config.model == "logistic":
            config.logistic_config = replace(config.logistic_config, n_epochs=epochs)
        elif config.model == "doc_rnn":
            config.doc_rnn_config = replace(config.doc_rnn_config, n_epochs=epochs)
        else:
            config.lstm_config = replace(config.lstm_config, n_epochs=epochs)
    return config


def _progress_printer(event) -> None:
    action = "resume" if event["resumed"] else "run"
    if event["stage"] == "train":
        print(f"  [{action:>6}] epoch {event['epoch']:>3} · train")
    elif event["stage"] == "marginals":
        print(f"  [{action:>6}] corpus     · marginals")
    else:
        print(
            f"  [{action:>6}] shard {event['shard']:>3} "
            f"({event['shard_id']}) · {event['stage']}"
        )


def _run_streaming(args: argparse.Namespace, command: str) -> int:
    # The dataset spec supplies the user inputs of the programming model
    # (schema, matchers, throttlers, labeling functions); the corpus itself
    # streams from disk.  n_docs only sizes the generated corpus, which is
    # unused here — the spec's user inputs are corpus-independent.
    dataset = load_dataset(args.dataset, n_docs=2, seed=0)
    # Metadata only — run_streaming streams the actual contents shard by shard.
    n_documents = len(corpus_dir_records(args.corpus_dir))
    config = _make_config(args)
    pipeline = FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=config,
    )

    spec = model_spec(config.model)
    print(
        f"Streaming {n_documents} documents from {args.corpus_dir} "
        f"(shard_size={args.shard_size}, max_resident_shards={args.max_resident_shards})"
    )
    if command == "train":
        print(
            f"Model: {config.model} ({config.model_config().n_epochs} epochs, "
            f"batch_size={config.batch_size}, seed={config.seed})"
        )
        if not spec.streaming:
            print(
                f"error: model {config.model!r} is not slab-trainable; "
                f"streaming training requires a streaming-capable registry model",
                file=sys.stderr,
            )
            return 2
    result = pipeline.run_streaming(
        args.corpus_dir,
        args.workdir,
        progress=None if args.quiet else _progress_printer,
    )

    print(f"\nShards: {result.n_shards} · documents: {result.n_documents}")
    print(
        f"Boundaries: {result.n_computed} computed, {result.n_resumed} resumed "
        f"from checkpoints"
    )
    if result.train_stats is not None:
        print(
            f"Training: {result.train_stats.n_epochs_run} epochs run, "
            f"{result.train_stats.n_epochs_resumed} epochs resumed"
        )
    print(
        f"Candidates: {result.n_candidates} "
        f"(raw: {result.n_raw_candidates}, throttled away: {result.n_throttled})"
    )
    print(f"KB entries: {result.kb.size()}")
    integrity = result.integrity or {}
    if integrity.get("n_corrupt") or integrity.get("n_repaired"):
        print(
            f"Integrity: {integrity['n_corrupt']} corrupt artifacts detected, "
            f"{integrity['n_repaired']} repaired in place "
            f"({integrity['n_quarantined']} quarantined files)"
        )
    pool_stats = result.pool_stats or {}
    if pool_stats.get("n_respawns") or pool_stats.get("watchdog_kills"):
        print(
            f"Pool: {pool_stats['n_respawns']} worker respawns, "
            f"{pool_stats['watchdog_warnings']} deadline warnings, "
            f"{pool_stats['watchdog_kills']} hung workers killed"
        )
    if result.kb_dir:
        print(
            f"Queryable KB: snapshot v{result.kb_version} published to "
            f"{result.kb_dir} (python -m repro serve --workdir {args.workdir})"
        )
    if result.metrics is not None:
        print(
            f"Quality vs gold: P={result.metrics.precision:.2f} "
            f"R={result.metrics.recall:.2f} F1={result.metrics.f1:.2f}"
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.kb.server import create_server

    server = create_server(
        _kb_root(args),
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        workers=args.workers,
        max_inflight=args.max_inflight,
        request_deadline=args.request_deadline,
        cache_entries=args.cache_entries,
    )
    if server.store.read_pointer() is None:
        print(
            f"note: no published KB snapshot at {server.store.root} yet — "
            "serving an empty store (a streaming run can publish into it "
            "while this server is up)",
            file=sys.stderr,
        )
    snapshot = server.store.snapshot()
    print(
        f"Serving KB snapshot v{snapshot.version} "
        f"({snapshot.n_tuples} tuples, {len(snapshot.segments)} segments) "
        f"at {server.url} with {server.workers} worker(s)"
    )
    print(
        "Endpoints: /v1/query /v1/stats /v1/health /v1/metrics "
        "(pre-/v1 paths answer deprecated) — Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        # Stop the listener cleanly, then re-raise so the interrupt reaches
        # main()'s handler: Ctrl-C must exit 130 regardless of whether the
        # signal lands inside or outside the serve loop.
        server.shutdown()
        raise
    finally:
        server.server_close()
    return 0


def _query_args_to_params(args: argparse.Namespace) -> dict:
    params = {
        "relation": args.relation,
        "doc": args.doc,
        "entity": args.entity,
        "within": args.within,
        "min_marginal": args.min_marginal,
        "max_marginal": args.max_marginal,
    }
    params = {k: str(v) for k, v in params.items() if v is not None}
    if args.offset:
        params["offset"] = str(args.offset)
    if args.cursor:
        params["cursor"] = args.cursor
    params["limit"] = str(args.limit)
    return params


def _command_query(args: argparse.Namespace) -> int:
    params = _query_args_to_params(args)
    if args.url:
        from repro.kb.client import KBAPIError, KBClient
        from repro.storage.retry import RetryPolicy

        def transient(error: BaseException) -> bool:
            # Retry an endpoint that is down, restarting, shedding load
            # (503 + Retry-After) or timing out; a 4xx is the client's
            # fault and retrying it would only repeat the mistake.
            if isinstance(error, KBAPIError):
                return error.status in (502, 503, 504)
            return True

        retry = RetryPolicy(attempts=max(1, args.retries), base_delay=0.2)
        try:
            with KBClient(args.url, timeout=args.timeout) as client:
                payload = retry.call(
                    lambda: client.query_params(params),
                    retry_on=(KBAPIError, TimeoutError, ConnectionError, OSError),
                    should_retry=transient,
                )
        except KBAPIError as error:
            print(
                f"error: {args.url} answered HTTP {error.status} "
                f"[{error.code}]: {error.message}",
                file=sys.stderr,
            )
            return 3
        except (TimeoutError, ConnectionError, OSError) as error:
            print(
                f"error: no response from {args.url} after "
                f"{max(1, args.retries)} attempts ({error}); is the server "
                f"up? (python -m repro serve)",
                file=sys.stderr,
            )
            return 3
    else:
        from repro.kb.store import KBStore

        store = KBStore(_kb_root(args))
        if store.read_pointer() is None:
            print(
                f"note: no published KB snapshot at {store.root} "
                "(run `python -m repro stream` first, or check the path)",
                file=sys.stderr,
            )
        result = store.snapshot().query(KBQuery.from_params(params))
        payload = result.to_json()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    shown_through = payload["offset"] + len(payload["rows"])
    print(
        f"KB snapshot v{payload['version']}: {payload['total']} matching tuples "
        f"(showing {payload['offset']}..{shown_through})"
    )
    for row in payload["rows"]:
        entities = ", ".join(row["entities"])
        print(
            f"  {row['relation']}({entities})  "
            f"marginal={row['marginal']:.3f}  doc={row['doc_name']}  "
            f"shard={row['shard']}"
        )
    if payload["has_more"]:
        hint = (
            f"resume with --cursor {payload['next_cursor']}"
            if payload.get("next_cursor")
            else "use --offset/--limit"
        )
        print(f"  … {payload['total'] - shown_through} more ({hint})")
    return 0


def _audit_workdir(workdir: Path):
    """One integrity pass over a workdir's shard + KB artifacts.

    Slab contents are checked read-only, but *loading* the store already
    quarantines an unparseable manifest or stages.json (their corruption is
    indistinguishable from absence otherwise) — those detections surface
    through the store's corruption counter, not the verify report.
    """
    from repro.kb.store import KBStore
    from repro.storage.shards import STAGE_ARTIFACTS, ShardStore

    store = ShardStore(workdir, integrity="always")
    shards = store.open_existing()
    shard_report = store.verify_artifacts(repair=False)
    kb_store = KBStore(workdir / "kb")
    kb_report = kb_store.verify_segments()
    # Checkpoint records lost while their slabs survive (a stages.json or
    # manifest quarantined by an earlier audit, or a crash between slab write
    # and checkpoint): absence of records reads as "nothing completed", so
    # without this count an audit would call a record-less store clean.
    n_lost_records = 0
    for shard in shards:
        shard_dir = store.shards_dir / shard.dirname
        for stage, artifacts in STAGE_ARTIFACTS.items():
            record = shard.stages.get(stage)
            if record and record.get("complete"):
                continue
            if artifacts and all((shard_dir / a).exists() for a in artifacts):
                n_lost_records += 1
    manifest_missing = (
        not (workdir / "manifest.json").exists()
        and store.shards_dir.exists()
        and any(store.shards_dir.iterdir())
    )
    return {
        "kb_store": kb_store,
        "shards": shard_report,
        "kb": kb_report,
        # The read-only slab report never touches the counter, so any
        # detection counted here came from the metadata-load path above.
        "n_metadata_corrupt": store.n_corrupt,
        "n_lost_records": n_lost_records,
        "manifest_missing": manifest_missing,
    }


def _command_verify(args: argparse.Namespace) -> int:
    from repro.storage.integrity import QUARANTINE_DIR, quarantine_file

    workdir = Path(args.workdir)
    # A quarantined manifest leaves shard dirs behind — still a workdir.
    if not (workdir / "manifest.json").exists() and not (workdir / "shards").is_dir():
        print(f"error: no streaming workdir at {workdir}", file=sys.stderr)
        return 2

    audit = _audit_workdir(workdir)
    kb_store = audit["kb_store"]
    shard_report, kb_report = audit["shards"], audit["kb"]
    n_metadata_corrupt = audit["n_metadata_corrupt"]
    pointer_bad = kb_report["pointer"] in ("corrupt", "schema")
    clean = (
        not shard_report["corrupt"]
        and not kb_report["corrupt"]
        and not pointer_bad
        and n_metadata_corrupt == 0
        and audit["n_lost_records"] == 0
        and not audit["manifest_missing"]
    )
    if args.json:
        print(
            json.dumps(
                {"shards": shard_report, "kb": kb_report, "clean": clean},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"verify: {shard_report['n_ok']}/{shard_report['n_stages']} "
            f"shard stages ok, {kb_report['n_ok']}/{kb_report['n_segments']} "
            f"KB segments ok, snapshot pointer {kb_report['pointer']}"
        )
        for entry in shard_report["corrupt"]:
            for failure in entry["failures"]:
                print(
                    f"  corrupt: {entry['shard']}/{failure['artifact']} "
                    f"({entry['stage']}): {failure['reason']}"
                )
        for entry in kb_report["corrupt"]:
            print(f"  corrupt: kb/segments/{entry['file']}: {entry['reason']}")
        if n_metadata_corrupt:
            print(
                f"  corrupt: {n_metadata_corrupt} unreadable metadata file(s) "
                f"(manifest/stages.json) quarantined during the audit"
            )
        if audit["manifest_missing"]:
            print("  corrupt: manifest.json missing but shard directories remain")
        if audit["n_lost_records"]:
            print(
                f"  corrupt: {audit['n_lost_records']} shard stage(s) have "
                f"slabs on disk but no checkpoint record"
            )
    if clean:
        return 0
    if not args.repair:
        print(
            "run again with --repair --corpus-dir <dir> to quarantine and "
            "re-derive the corrupt artifacts",
            file=sys.stderr,
        )
        return 1
    if not args.corpus_dir:
        print(
            "error: --repair re-derives artifacts from the corpus; "
            "pass --corpus-dir (and --dataset)",
            file=sys.stderr,
        )
        return 2

    # Quarantine corrupt KB segments up front: the checkpoint-resume path
    # adopts any segment file that still exists, so the evidence must move
    # aside for the re-publish to rewrite it (content-addressed names make
    # the rewrite byte-identical when the tuples are unchanged).
    for entry in kb_report["corrupt"]:
        quarantine_file(
            kb_store.segments_dir / entry["file"], kb_store.root / QUARANTINE_DIR
        )

    # Re-run the streaming pipeline with verify-on-every-read: each corrupt
    # shard × stage fails its resume check, is quarantined and recomputed
    # through the stage key chain (everything intact resumes untouched), and
    # the publish tail rewrites exactly the quarantined KB segments.
    dataset = load_dataset(args.dataset, n_docs=2, seed=0)
    config = FonduerConfig(
        threshold=args.threshold,
        shard_size=args.shard_size,
        max_resident_shards=args.max_resident_shards,
        integrity="always",
    )
    pipeline = FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=config,
    )
    result = pipeline.run_streaming(args.corpus_dir, workdir)
    print(
        f"repair: {result.n_computed} boundaries recomputed, "
        f"{result.n_resumed} resumed from intact checkpoints"
    )

    audit = _audit_workdir(workdir)
    shard_report, kb_report = audit["shards"], audit["kb"]
    repaired = (
        not shard_report["corrupt"]
        and not kb_report["corrupt"]
        and kb_report["pointer"] == "ok"
        and audit["n_metadata_corrupt"] == 0
        and audit["n_lost_records"] == 0
        and not audit["manifest_missing"]
    )
    if repaired:
        print(
            f"repair: all artifacts verified clean "
            f"({shard_report['n_stages']} shard stages, "
            f"{kb_report['n_segments']} KB segments)"
        )
        return 0
    print("error: corruption persists after repair", file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Fonduer reproduction: out-of-core streaming KBC pipeline "
        "with a queryable, servable KB store",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_gen_corpus_parser(subparsers)
    _add_stream_parser(subparsers)
    _add_train_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_query_parser(subparsers)
    _add_verify_parser(subparsers)
    args = parser.parse_args(argv)
    try:
        if args.command == "gen-corpus":
            return _command_gen_corpus(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "query":
            return _command_query(args)
        if args.command == "verify":
            return _command_verify(args)
        return _run_streaming(args, args.command)
    except KeyboardInterrupt:
        # Clean Ctrl-C: worker pools and the HTTP server shut down on the
        # way out (context managers / the finally above), streaming progress
        # is already checkpointed shard × stage, and the conventional
        # interrupted exit code replaces a traceback.  Re-running the same
        # command resumes at the last completed boundary.
        print(
            "\nInterrupted — progress is checkpointed; re-run the same "
            "command to resume",
            file=sys.stderr,
        )
        return 130


if __name__ == "__main__":
    sys.exit(main())
