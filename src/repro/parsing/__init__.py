"""Parsing substrate: raw documents → data-model instances.

The original system converts input files with Poppler (PDF → HTML for structure)
and a PDF printer (for visual coordinates), then aligns the word sequences of
the converted files with the originals (paper Section 3.1).  This subpackage
provides the equivalent machinery:

* :mod:`repro.parsing.html_parser` — parses an HTML subset (sections, headings,
  paragraphs, tables with spans, figures, captions, inline style attributes)
  into the context hierarchy.
* :mod:`repro.parsing.xml_parser` — parses tree-native XML documents (the
  GENOMICS format) into the same hierarchy; such documents have no visual
  modality, exactly as in the paper.
* :mod:`repro.parsing.pdf_layout` — a deterministic layout engine that renders a
  parsed document onto fixed-size pages and attaches a bounding box to every
  word (the visual modality).
* :mod:`repro.parsing.alignment` — aligns the word sequence of a converted
  rendering with the original words and recovers from conversion errors.
* :mod:`repro.parsing.corpus` — the corpus parser that ties everything together
  and yields fully annotated Documents.
"""

from repro.parsing.html_parser import HtmlDocParser
from repro.parsing.xml_parser import XmlDocParser
from repro.parsing.pdf_layout import LayoutEngine, LayoutConfig
from repro.parsing.alignment import align_word_sequences, AlignmentResult
from repro.parsing.corpus import CorpusParser, RawDocument

__all__ = [
    "AlignmentResult",
    "CorpusParser",
    "HtmlDocParser",
    "LayoutConfig",
    "LayoutEngine",
    "RawDocument",
    "XmlDocParser",
    "align_word_sequences",
]
