"""Word-sequence alignment between an original document and its conversion.

Fonduer converts each input file into HTML (for structure) and PDF (for visual
coordinates) and must then associate the multimodal attributes of the converted
file with the words of the original.  The paper aligns "the word sequences of
the converted file with their originals by checking if both their characters
and number of repeated occurrences before the current word are the same", and
recovers from conversion errors via the redundancy of other modalities
(Section 3.1).

This module implements that alignment: given the original word sequence and a
converted word sequence (possibly with dropped, duplicated or corrupted words),
it produces an index mapping original→converted that downstream code uses to
copy per-word attributes (e.g. bounding boxes) onto the original words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class AlignmentResult:
    """Mapping from original word positions to converted word positions.

    ``mapping[i]`` is the index in the converted sequence of original word ``i``,
    or ``None`` when the word could not be aligned (a conversion error that the
    caller recovers from by leaving the corresponding attribute unset).
    """

    mapping: List[Optional[int]]
    n_aligned: int
    n_unaligned: int
    errors: List[str] = field(default_factory=list)

    @property
    def alignment_rate(self) -> float:
        total = self.n_aligned + self.n_unaligned
        return self.n_aligned / total if total else 1.0


def _occurrence_keys(words: Sequence[str]) -> List[Tuple[str, int]]:
    """Key each word by (word, number of identical words seen before it).

    This is exactly the paper's alignment criterion: a word matches if both its
    characters and its repeated-occurrence count so far are equal.
    """
    seen: Dict[str, int] = {}
    keys: List[Tuple[str, int]] = []
    for word in words:
        count = seen.get(word, 0)
        keys.append((word, count))
        seen[word] = count + 1
    return keys


def align_word_sequences(
    original: Sequence[str],
    converted: Sequence[str],
) -> AlignmentResult:
    """Align ``original`` word positions to positions in ``converted``.

    Exact (word, occurrence-count) matches are aligned first.  Remaining
    original words are then aligned to the nearest unused converted word with
    the same lowercase form (tolerating case changes), and finally left
    unaligned if no candidate exists (dropped/corrupted during conversion).
    """
    original_keys = _occurrence_keys(original)
    converted_index: Dict[Tuple[str, int], int] = {}
    for position, key in enumerate(_occurrence_keys(converted)):
        converted_index.setdefault(key, position)

    mapping: List[Optional[int]] = [None] * len(original)
    used: set = set()
    errors: List[str] = []

    # Pass 1: exact character + occurrence-count matches.
    for i, key in enumerate(original_keys):
        j = converted_index.get(key)
        if j is not None and j not in used:
            mapping[i] = j
            used.add(j)

    # Pass 2: case-insensitive recovery for words the converter altered.
    lowercase_positions: Dict[str, List[int]] = {}
    for j, word in enumerate(converted):
        if j not in used:
            lowercase_positions.setdefault(word.lower(), []).append(j)
    for i, word in enumerate(original):
        if mapping[i] is not None:
            continue
        candidates = lowercase_positions.get(word.lower())
        if candidates:
            j = candidates.pop(0)
            mapping[i] = j
            used.add(j)
        else:
            errors.append(f"unaligned word at {i}: {word!r}")

    n_aligned = sum(1 for m in mapping if m is not None)
    return AlignmentResult(
        mapping=mapping,
        n_aligned=n_aligned,
        n_unaligned=len(original) - n_aligned,
        errors=errors,
    )


def transfer_attributes(
    alignment: AlignmentResult,
    converted_attributes: Sequence[object],
) -> List[Optional[object]]:
    """Copy per-word attributes from the converted sequence onto the original.

    Unaligned words receive ``None`` — the data model tolerates missing visual
    attributes and the feature library simply emits no visual features for them
    (the paper's "recover from conversion errors by using the inherent
    redundancy in signals from other modalities").
    """
    result: List[Optional[object]] = []
    for target in alignment.mapping:
        if target is None or target >= len(converted_attributes):
            result.append(None)
        else:
            result.append(converted_attributes[target])
    return result
