"""Corpus parser: raw documents → annotated data-model instances.

``CorpusParser`` is the Phase-1 component of the pipeline (paper Section 3.2,
"KBC Initialization"): it iterates over the input corpus, transforms each
document into an instance of the data model (structure via the HTML/XML
parsers, linguistics via the NLP pipeline, visual coordinates via the layout
engine), and hands the instances to the rest of the system.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine wraps parsing)
    from repro.engine.executors import Executor

from repro.data_model.context import Document
from repro.data_model.index import build_index
from repro.nlp.pipeline import NlpPipeline
from repro.parsing.html_parser import HtmlDocParser
from repro.parsing.pdf_layout import LayoutConfig, LayoutEngine
from repro.parsing.xml_parser import XmlDocParser


@dataclass
class RawDocument:
    """One unparsed input document.

    ``format`` is ``"html"``, ``"pdf"`` or ``"xml"``.  ``"pdf"`` documents are
    represented by the HTML produced by the (simulated) Poppler conversion plus
    a flag telling the corpus parser to also run the visual layout engine —
    exactly the conversion pipeline described in the paper.  ``"xml"`` documents
    get no visual modality.

    ``path`` is the corpus-relative path of the source file (e.g.
    ``"vendor_a/datasheet.html"``).  It disambiguates documents that share a
    *name* — stable ids and content fingerprints include it — and is what the
    sharded corpus store keys its manifest on.  When empty, the name is used.
    """

    name: str
    content: str
    format: str = "pdf"
    metadata: Dict[str, object] = field(default_factory=dict)
    path: str = ""


class CorpusParser:
    """Parse a collection of :class:`RawDocument` into data-model Documents."""

    def __init__(
        self,
        nlp: Optional[NlpPipeline] = None,
        layout_config: Optional[LayoutConfig] = None,
    ) -> None:
        self.nlp = nlp or NlpPipeline()
        self.html_parser = HtmlDocParser(self.nlp)
        self.xml_parser = XmlDocParser(self.nlp)
        self.layout_engine = LayoutEngine(layout_config)

    def parse_document(self, raw: RawDocument) -> Document:
        """Parse one raw document, attaching all available modalities."""
        format_name = raw.format.lower()
        if format_name == "xml":
            document = self.xml_parser.parse(raw.name, raw.content)
        elif format_name in ("html", "pdf"):
            document = self.html_parser.parse(raw.name, raw.content)
        else:
            raise ValueError(f"Unsupported document format: {raw.format!r}")

        document.attributes["format"] = format_name
        document.format = format_name
        document.attributes.update(raw.metadata)
        # Corpus-relative path: the corpus-unique document key that stable ids
        # and content fingerprints embed (two documents may share a name).
        document.path = raw.path or raw.name
        document.attributes["path"] = document.path

        # XML-native documents have no visual rendering (paper Section 5.1:
        # "This dataset is published in XML format, thus, we do not have visual
        # representations").  Everything else gets the layout pass.
        if format_name != "xml":
            self.layout_engine.render(document)

        # Renumber contexts into document-scoped DFS pre-order.  Construction
        # drew ids from the process-global counter, which made parse output a
        # function of *when* it ran; stable ids and the shard store's pickled
        # slabs embed these ids, so document-scoped numbering is what lets a
        # re-parsed shard (integrity repair, checkpoint resume in a different
        # process) reproduce the original slab byte for byte.  Corpus-wide
        # uniqueness is unaffected: stable ids pair the id with the document
        # path, and the columnar index keys nodes by object identity.
        document.id = 0
        for position, node in enumerate(document.descendants(), start=1):
            node.id = position

        # Freeze the columnar index now that every modality is attached: all
        # downstream operators (candidates, features, labeling) read the
        # document through it.  Mutating the document afterwards marks the
        # index stale and the next access rebuilds it.  Skipped inside forked
        # pool workers: the index is stripped when the Document pickles back
        # to the parent (identity-keyed maps don't survive), so building it
        # there would be pure wasted work — the parent builds lazily instead.
        if multiprocessing.parent_process() is None:
            build_index(document)
        return document

    def parse(
        self,
        raw_documents: Iterable[RawDocument],
        executor: Optional["Executor"] = None,
    ) -> List[Document]:
        """Parse a corpus eagerly, preserving input order.

        ``executor`` is an optional :class:`repro.engine.executors.Executor`
        (anything exposing an order-preserving ``map``); documents are atomic
        work units, so parsing parallelizes at document granularity.
        """
        raws = list(raw_documents)
        if executor is None:
            return [self.parse_document(raw) for raw in raws]
        return executor.map(self.parse_document, raws)

    def iter_parse(self, raw_documents: Iterable[RawDocument]) -> Iterator[Document]:
        """Parse a corpus lazily (documents are processed atomically, one at a time)."""
        for raw in raw_documents:
            yield self.parse_document(raw)
