"""HTML parser: an HTML subset → the context hierarchy of the data model.

The supported subset covers what the synthetic corpora (and most real richly
formatted documents) need:

* ``<section>`` → Section (an implicit section wraps stray top-level content)
* ``<h1>``-``<h6>``, ``<p>``, ``<div>`` → Text with Paragraphs
* ``<table>``, ``<caption>``, ``<tr>``, ``<td>``, ``<th>`` (with ``rowspan`` /
  ``colspan``) → Table, Caption, Row, Column, Cell
* ``<figure>`` / ``<img>`` → Figure (+ ``<figcaption>`` → Caption)
* inline ``style`` / ``class`` / ``id`` attributes are preserved on the
  enclosing context and surfaced as structural attributes of Sentences.

Parsing uses :class:`html.parser.HTMLParser` from the standard library, so the
input does not need to be well-formed XML.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import Dict, List, Optional, Tuple

from repro.data_model.context import (
    Caption,
    Cell,
    Column,
    Document,
    Figure,
    Paragraph,
    Row,
    Section,
    Sentence,
    Table,
    Text,
)
from repro.nlp.pipeline import NlpPipeline

_HEADING_TAGS = {"h1", "h2", "h3", "h4", "h5", "h6"}
_TEXT_BLOCK_TAGS = _HEADING_TAGS | {"p", "div", "li", "span"}


class _HtmlTreeBuilder(HTMLParser):
    """Collect a lightweight element tree from the HTML token stream."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root: Dict = {"tag": "__root__", "attrs": {}, "children": [], "text": []}
        self._stack: List[Dict] = [self.root]

    def handle_starttag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        node = {"tag": tag, "attrs": {k: (v or "") for k, v in attrs}, "children": [], "text": []}
        self._stack[-1]["children"].append(node)
        if tag not in ("br", "img", "hr", "meta", "link"):
            self._stack.append(node)

    def handle_endtag(self, tag: str) -> None:
        # Pop until the matching tag is found (tolerates missing end tags).
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index]["tag"] == tag:
                del self._stack[index:]
                break

    def handle_data(self, data: str) -> None:
        if data.strip():
            self._stack[-1]["text"].append(data.strip())


def _own_text(node: Dict) -> str:
    return " ".join(node["text"])


def _full_text(node: Dict) -> str:
    """Text of a node and all of its descendants, in document order."""
    pieces = [_own_text(node)]
    for child in node["children"]:
        pieces.append(_full_text(child))
    return " ".join(p for p in pieces if p)


class HtmlDocParser:
    """Parse HTML strings into data-model :class:`Document` instances."""

    def __init__(self, nlp: Optional[NlpPipeline] = None) -> None:
        self.nlp = nlp or NlpPipeline()

    # ------------------------------------------------------------------ API
    def parse(self, name: str, html: str) -> Document:
        builder = _HtmlTreeBuilder()
        builder.feed(html)
        document = Document(name, attributes={"format": "html"})

        body = self._find_body(builder.root)
        section_nodes = [c for c in body["children"] if c["tag"] == "section"]
        if section_nodes:
            for position, node in enumerate(section_nodes):
                self._build_section(document, node, position)
        else:
            # Wrap all body content in one implicit section.
            self._build_section(document, body, 0)
        return document

    # ------------------------------------------------------------- internal
    def _find_body(self, root: Dict) -> Dict:
        for node in root["children"]:
            if node["tag"] == "html":
                for child in node["children"]:
                    if child["tag"] == "body":
                        return child
                return node
            if node["tag"] == "body":
                return node
        return root

    def _build_section(self, document: Document, node: Dict, position: int) -> Section:
        section = Section(
            document,
            name=node["attrs"].get("id", f"section-{position}"),
            position=position,
            attributes={"html_tag": "section", "html_attrs": dict(node["attrs"])},
        )
        block_position = 0
        own = _own_text(node)
        if own:
            self._build_text_block(section, {"tag": "p", "attrs": {}, "children": [], "text": [own]}, block_position)
            block_position += 1
        for child in node["children"]:
            if child["tag"] == "table":
                self._build_table(section, child, block_position)
                block_position += 1
            elif child["tag"] in ("figure", "img"):
                self._build_figure(section, child, block_position)
                block_position += 1
            elif child["tag"] in _TEXT_BLOCK_TAGS:
                self._build_text_block(section, child, block_position)
                block_position += 1
            elif child["tag"] == "section":
                # Nested sections are flattened into sibling Texts/Tables.
                for grandchild in child["children"]:
                    if grandchild["tag"] == "table":
                        self._build_table(section, grandchild, block_position)
                    elif grandchild["tag"] in _TEXT_BLOCK_TAGS:
                        self._build_text_block(section, grandchild, block_position)
                    block_position += 1
            else:
                text = _full_text(child)
                if text:
                    self._build_text_block(section, child, block_position)
                    block_position += 1
        return section

    def _build_text_block(self, section: Section, node: Dict, position: int) -> Text:
        attrs = dict(node["attrs"])
        text_context = Text(
            section,
            name=attrs.get("id", f"text-{position}"),
            position=position,
            attributes={"html_tag": node["tag"], "html_attrs": attrs},
        )
        paragraph = Paragraph(text_context, position=0, attributes={"html_tag": node["tag"]})
        self._add_sentences(paragraph, _full_text(node), html_tag=node["tag"], html_attrs=attrs)
        return text_context

    def _build_figure(self, section: Section, node: Dict, position: int) -> Figure:
        attrs = dict(node["attrs"])
        figure = Figure(
            section,
            name=attrs.get("id", f"figure-{position}"),
            position=position,
            url=attrs.get("src", ""),
            attributes={"html_tag": node["tag"], "html_attrs": attrs},
        )
        for child in node["children"]:
            if child["tag"] == "figcaption":
                caption = Caption(figure, position=0, attributes={"html_tag": "figcaption"})
                paragraph = Paragraph(caption, position=0)
                self._add_sentences(paragraph, _full_text(child), html_tag="figcaption", html_attrs={})
        return figure

    def _build_table(self, section: Section, node: Dict, position: int) -> Table:
        attrs = dict(node["attrs"])
        table = Table(
            section,
            name=attrs.get("id", f"table-{position}"),
            position=position,
            attributes={"html_tag": "table", "html_attrs": attrs},
        )

        row_nodes: List[Dict] = []
        for child in node["children"]:
            if child["tag"] == "caption":
                caption = Caption(table, position=0, attributes={"html_tag": "caption"})
                paragraph = Paragraph(caption, position=0)
                self._add_sentences(paragraph, _full_text(child), html_tag="caption", html_attrs={})
            elif child["tag"] == "tr":
                row_nodes.append(child)
            elif child["tag"] in ("thead", "tbody", "tfoot"):
                row_nodes.extend(c for c in child["children"] if c["tag"] == "tr")

        # First pass: determine grid occupancy honoring rowspan/colspan.
        occupied: Dict[Tuple[int, int], bool] = {}
        max_col = 0
        cell_specs: List[Tuple[Dict, int, int, int, int, bool]] = []
        for row_index, row_node in enumerate(row_nodes):
            col_index = 0
            for cell_node in row_node["children"]:
                if cell_node["tag"] not in ("td", "th"):
                    continue
                while occupied.get((row_index, col_index)):
                    col_index += 1
                rowspan = int(cell_node["attrs"].get("rowspan", 1) or 1)
                colspan = int(cell_node["attrs"].get("colspan", 1) or 1)
                for r in range(row_index, row_index + rowspan):
                    for c in range(col_index, col_index + colspan):
                        occupied[(r, c)] = True
                is_header = cell_node["tag"] == "th" or row_index == 0
                cell_specs.append(
                    (cell_node, row_index, col_index, rowspan, colspan, is_header)
                )
                max_col = max(max_col, col_index + colspan)
                col_index += colspan

        for row_index, row_node in enumerate(row_nodes):
            Row(table, position=row_index, attributes={"html_attrs": dict(row_node["attrs"])})
        for col_index in range(max_col):
            Column(table, position=col_index)

        for cell_node, row_index, col_index, rowspan, colspan, is_header in cell_specs:
            cell = Cell(
                table,
                row_start=row_index,
                col_start=col_index,
                row_end=row_index + rowspan - 1,
                col_end=col_index + colspan - 1,
                is_header=is_header,
                attributes={
                    "html_tag": cell_node["tag"],
                    "html_attrs": dict(cell_node["attrs"]),
                },
            )
            paragraph = Paragraph(cell, position=0, attributes={"html_tag": cell_node["tag"]})
            self._add_sentences(
                paragraph,
                _full_text(cell_node),
                html_tag=cell_node["tag"],
                html_attrs=dict(cell_node["attrs"]),
            )
        return table

    def _add_sentences(
        self,
        paragraph: Paragraph,
        text: str,
        html_tag: str,
        html_attrs: Dict[str, str],
    ) -> None:
        for position, annotated in enumerate(self.nlp.annotate_text(text)):
            Sentence(
                paragraph,
                words=annotated.words,
                position=position,
                lemmas=annotated.lemmas,
                pos_tags=annotated.pos_tags,
                ner_tags=annotated.ner_tags,
                html_tag=html_tag,
                html_attrs=html_attrs,
            )
