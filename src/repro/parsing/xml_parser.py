"""XML parser for tree-native documents (the GENOMICS format).

The GENOMICS corpus in the paper is published natively in XML and therefore has
*no visual modality* (Table 1 and Section 5.1).  This parser maps a simple
article-style XML schema onto the data model:

* ``<article>``                → Document
* ``<sec>``                    → Section
* ``<title>``, ``<p>``         → Text / Paragraph / Sentence
* ``<table-wrap>``             → Table (+ ``<caption>``)
* ``<table>/<tr>/<td>|<th>``   → Row / Column / Cell

Unknown elements are traversed transparently so that nested article markup
(``<abstract>``, ``<body>``, ``<front>``) does not get in the way.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Optional

from repro.data_model.context import (
    Caption,
    Cell,
    Column,
    Document,
    Paragraph,
    Row,
    Section,
    Sentence,
    Table,
    Text,
)
from repro.nlp.pipeline import NlpPipeline


def _element_text(element: ET.Element) -> str:
    return " ".join(" ".join(element.itertext()).split())


class XmlDocParser:
    """Parse XML strings into data-model :class:`Document` instances."""

    def __init__(self, nlp: Optional[NlpPipeline] = None) -> None:
        self.nlp = nlp or NlpPipeline()

    def parse(self, name: str, xml: str) -> Document:
        root = ET.fromstring(xml)
        document = Document(name, attributes={"format": "xml"})
        sections = root.findall(".//sec")
        if not sections:
            sections = [root]
        for position, sec in enumerate(sections):
            self._build_section(document, sec, position)
        return document

    def _build_section(self, document: Document, sec: ET.Element, position: int) -> Section:
        section = Section(
            document,
            name=sec.get("id", f"section-{position}"),
            position=position,
            attributes={"html_tag": "sec", "html_attrs": dict(sec.attrib)},
        )
        block_position = 0
        for child in sec:
            tag = child.tag.lower()
            if tag in ("title", "p", "label"):
                self._build_text(section, child, block_position, tag)
                block_position += 1
            elif tag in ("table-wrap", "table"):
                self._build_table(section, child, block_position)
                block_position += 1
            elif tag == "sec":
                # Flatten nested sections into sibling blocks.
                for grandchild in child:
                    gtag = grandchild.tag.lower()
                    if gtag in ("title", "p", "label"):
                        self._build_text(section, grandchild, block_position, gtag)
                        block_position += 1
                    elif gtag in ("table-wrap", "table"):
                        self._build_table(section, grandchild, block_position)
                        block_position += 1
        return section

    def _build_text(self, section: Section, element: ET.Element, position: int, tag: str) -> Text:
        text_context = Text(
            section,
            name=element.get("id", f"text-{position}"),
            position=position,
            attributes={"html_tag": tag, "html_attrs": dict(element.attrib)},
        )
        paragraph = Paragraph(text_context, position=0, attributes={"html_tag": tag})
        self._add_sentences(paragraph, _element_text(element), tag, dict(element.attrib))
        return text_context

    def _build_table(self, section: Section, element: ET.Element, position: int) -> Table:
        table = Table(
            section,
            name=element.get("id", f"table-{position}"),
            position=position,
            attributes={"html_tag": "table", "html_attrs": dict(element.attrib)},
        )
        caption_el = element.find("caption")
        if caption_el is not None:
            caption = Caption(table, position=0, attributes={"html_tag": "caption"})
            paragraph = Paragraph(caption, position=0)
            self._add_sentences(paragraph, _element_text(caption_el), "caption", {})

        table_el = element if element.tag.lower() == "table" else element.find(".//table")
        if table_el is None:
            return table
        row_elements = table_el.findall(".//tr")
        max_col = 0
        cell_specs = []
        for row_index, row_el in enumerate(row_elements):
            col_index = 0
            for cell_el in row_el:
                tag = cell_el.tag.lower()
                if tag not in ("td", "th"):
                    continue
                rowspan = int(cell_el.get("rowspan", 1))
                colspan = int(cell_el.get("colspan", 1))
                is_header = tag == "th" or row_index == 0
                cell_specs.append((cell_el, row_index, col_index, rowspan, colspan, is_header))
                max_col = max(max_col, col_index + colspan)
                col_index += colspan

        for row_index in range(len(row_elements)):
            Row(table, position=row_index)
        for col_index in range(max_col):
            Column(table, position=col_index)

        for cell_el, row_index, col_index, rowspan, colspan, is_header in cell_specs:
            cell = Cell(
                table,
                row_start=row_index,
                col_start=col_index,
                row_end=row_index + rowspan - 1,
                col_end=col_index + colspan - 1,
                is_header=is_header,
                attributes={"html_tag": cell_el.tag.lower(), "html_attrs": dict(cell_el.attrib)},
            )
            paragraph = Paragraph(cell, position=0, attributes={"html_tag": cell_el.tag.lower()})
            self._add_sentences(
                paragraph, _element_text(cell_el), cell_el.tag.lower(), dict(cell_el.attrib)
            )
        return table

    def _add_sentences(
        self,
        paragraph: Paragraph,
        text: str,
        html_tag: str,
        html_attrs: Dict[str, str],
    ) -> None:
        for position, annotated in enumerate(self.nlp.annotate_text(text)):
            Sentence(
                paragraph,
                words=annotated.words,
                position=position,
                lemmas=annotated.lemmas,
                pos_tags=annotated.pos_tags,
                ner_tags=annotated.ner_tags,
                html_tag=html_tag,
                html_attrs=html_attrs,
            )
