"""Deterministic layout engine: attach visual coordinates to a parsed document.

The paper obtains the visual modality by printing the input to PDF and recording
"bounding box and page information for each word in a Sentence" (Section 3.1).
This module plays the role of that PDF printer: it walks the context hierarchy
of a parsed :class:`~repro.data_model.context.Document` in reading order,
flows words onto fixed-size pages (line wrapping, table grids rendered with one
column band per table column), and stores a :class:`BoundingBox` on every word.

The layout is intentionally simple but it preserves the properties the visual
features and labeling functions rely on:

* words of cells in the same table **row** end up y-aligned;
* words of cells in the same table **column** end up x-aligned;
* headings appear near the top of the first page they occur on;
* long tables spill over onto subsequent pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.data_model.context import (
    Cell,
    Document,
    Figure,
    Section,
    Sentence,
    Table,
    Text,
)
from repro.data_model.visual import BoundingBox, PageLayout


@dataclass
class LayoutConfig:
    """Geometry knobs of the layout engine (points, PDF letter-size defaults)."""

    page_width: float = 612.0
    page_height: float = 792.0
    margin: float = 36.0
    line_height: float = 14.0
    char_width: float = 6.0
    word_gap: float = 4.0
    table_row_height: float = 18.0
    block_gap: float = 10.0

    @property
    def content_width(self) -> float:
        return self.page_width - 2 * self.margin

    @property
    def content_bottom(self) -> float:
        return self.page_height - self.margin


class LayoutEngine:
    """Render a document onto pages, assigning a bounding box per word."""

    def __init__(self, config: Optional[LayoutConfig] = None) -> None:
        self.config = config or LayoutConfig()

    # ------------------------------------------------------------------ API
    def render(self, document: Document) -> List[PageLayout]:
        """Assign bounding boxes to every word of ``document``; return page layouts."""
        cursor = _Cursor(self.config)
        for section in document.sections:
            self._render_section(section, cursor)
        return cursor.pages

    # ------------------------------------------------------------- internal
    def _render_section(self, section: Section, cursor: "_Cursor") -> None:
        for child in section.children:
            if isinstance(child, Text):
                self._render_text(child, cursor)
            elif isinstance(child, Table):
                self._render_table(child, cursor)
            elif isinstance(child, Figure):
                self._render_figure(child, cursor)
            cursor.advance_block_gap()

    def _render_text(self, text: Text, cursor: "_Cursor") -> None:
        for sentence in text.sentences():
            self._render_sentence_flow(sentence, cursor)

    def _render_figure(self, figure: Figure, cursor: "_Cursor") -> None:
        # Reserve vertical space for the image itself, then flow the caption.
        cursor.advance_lines(6)
        caption = figure.caption
        if caption is not None:
            for sentence in caption.sentences():
                self._render_sentence_flow(sentence, cursor)

    def _render_sentence_flow(self, sentence: Sentence, cursor: "_Cursor") -> None:
        config = self.config
        boxes: List[Optional[BoundingBox]] = []
        for word in sentence.words:
            width = max(config.char_width, len(word) * config.char_width)
            if cursor.x + width > config.page_width - config.margin:
                cursor.newline()
            box = BoundingBox(
                page=cursor.page_index,
                x0=cursor.x,
                y0=cursor.y,
                x1=cursor.x + width,
                y1=cursor.y + config.line_height,
            )
            boxes.append(box)
            cursor.record(box)
            cursor.x += width + config.word_gap
        sentence.set_word_boxes(boxes)
        cursor.newline()

    def _render_table(self, table: Table, cursor: "_Cursor") -> None:
        config = self.config
        caption = table.caption
        if caption is not None:
            for sentence in caption.sentences():
                self._render_sentence_flow(sentence, cursor)

        n_columns = max(1, table.n_columns)
        column_width = config.content_width / n_columns
        for row_index in range(table.n_rows):
            # Page break before the row if it does not fit: long tables span pages.
            if cursor.y + config.table_row_height > config.content_bottom:
                cursor.new_page()
            row_y = cursor.y
            for cell in table.row_cells(row_index):
                if cell.row_start != row_index:
                    continue  # spanned cell already rendered with its anchor row
                cell_x = config.margin + cell.col_start * column_width
                self._render_cell(cell, cell_x, row_y, column_width * cell.col_span, cursor)
            cursor.y = row_y + config.table_row_height
            cursor.x = config.margin
        cursor.newline()

    def _render_cell(
        self,
        cell: Cell,
        x: float,
        y: float,
        width: float,
        cursor: "_Cursor",
    ) -> None:
        config = self.config
        word_x = x + 2.0
        word_y = y + 2.0
        for sentence in cell.sentences():
            boxes: List[Optional[BoundingBox]] = []
            for word in sentence.words:
                word_width = max(config.char_width, len(word) * config.char_width)
                if word_x + word_width > x + width and word_x > x + 2.0:
                    word_x = x + 2.0
                    word_y += config.line_height
                box = BoundingBox(
                    page=cursor.page_index,
                    x0=word_x,
                    y0=word_y,
                    x1=word_x + word_width,
                    y1=word_y + config.line_height - 2.0,
                )
                boxes.append(box)
                cursor.record(box)
                word_x += word_width + config.word_gap
            sentence.set_word_boxes(boxes)


class _Cursor:
    """Mutable rendering cursor: current page, x/y position, accumulated pages."""

    def __init__(self, config: LayoutConfig) -> None:
        self.config = config
        self.pages: List[PageLayout] = [PageLayout(0, config.page_width, config.page_height)]
        self.page_index = 0
        self.x = config.margin
        self.y = config.margin

    def record(self, box: BoundingBox) -> None:
        self.pages[self.page_index].add_box(box)

    def newline(self) -> None:
        self.x = self.config.margin
        self.y += self.config.line_height
        if self.y + self.config.line_height > self.config.content_bottom:
            self.new_page()

    def advance_lines(self, n: int) -> None:
        for _ in range(n):
            self.newline()

    def advance_block_gap(self) -> None:
        self.y += self.config.block_gap
        if self.y + self.config.line_height > self.config.content_bottom:
            self.new_page()

    def new_page(self) -> None:
        self.page_index += 1
        self.pages.append(
            PageLayout(self.page_index, self.config.page_width, self.config.page_height)
        )
        self.x = self.config.margin
        self.y = self.config.margin
