"""PALEONTOLOGY walkthrough: document-level context and the context-scope knob.

Paleontology articles pair a geological formation (named in the running text
and in table captions) with measurements buried in long specimen tables — the
kind of relation that motivates document-level candidate generation.  This
example sweeps the extractor's context scope (sentence → table → page →
document), reproducing the qualitative behaviour of the paper's Figure 6, and
then prints a slice of the resulting knowledge base.

Run with:  python examples/paleontology_long_tables.py
"""

from repro import ContextScope, FonduerConfig, FonduerPipeline, load_dataset


def run_with_scope(dataset, documents, scope: ContextScope):
    pipeline = FonduerPipeline(
        schema=dataset.schema,
        matchers=dataset.matchers,
        labeling_functions=dataset.labeling_functions,
        throttlers=dataset.throttlers,
        config=FonduerConfig(context_scope=scope),
    )
    return pipeline.run(documents, gold=dataset.gold_entries)


def main() -> None:
    dataset = load_dataset("paleontology", n_docs=10, seed=4)
    documents = dataset.parse_documents()
    pages = [document.n_pages() for document in documents]
    print(f"Corpus: {len(documents)} articles, {min(pages)}-{max(pages)} rendered pages each, "
          f"{len(dataset.gold_entries)} gold (formation, measurement) pairs.\n")

    print("F1 as the candidate context scope widens (cf. Figure 6):")
    results = {}
    for scope in (ContextScope.SENTENCE, ContextScope.TABLE, ContextScope.PAGE, ContextScope.DOCUMENT):
        result = run_with_scope(dataset, documents, scope)
        results[scope] = result
        print(f"  {scope.value:9s} candidates={result.n_candidates:5d} "
              f"F1={result.metrics.f1:.2f}")

    best = results[ContextScope.DOCUMENT]
    print(f"\nDocument-scope KB has {best.kb.size()} entries. Sample:")
    for formation, measurement in sorted(best.kb.entries(dataset.schema.name))[:10]:
        print(f"  {formation}  —  {measurement} mm")


if __name__ == "__main__":
    main()
