"""ELECTRONICS walkthrough: writing matchers, throttlers and LFs from scratch.

Unlike the quickstart (which uses the bundled user inputs), this example shows
the *programming model* of the paper end to end: a user who knows nothing about
machine learning defines

* matchers   — what a transistor part / a maximum current looks like,
* a throttler — a hard rule pruning obviously-wrong candidates,
* labeling functions — multimodal rules assigning noisy labels,

and then iterates on the labeling functions using the error-analysis metrics
(coverage / overlap / conflict) exactly as in development mode (Section 3.3).

Run with:  python examples/electronics_datasheets.py
"""

from repro import (
    FonduerConfig,
    FonduerPipeline,
    NumberMatcher,
    RegexMatcher,
    RelationSchema,
    load_dataset,
)
from repro.data_model import column_header_ngrams, row_ngrams
from repro.supervision import LFApplier, labeling_function, lf_summary
from repro.supervision.gold import gold_labels_for_candidates


# --------------------------------------------------------------------- inputs
def build_matchers():
    """Example 3.3 of the paper: a dictionary/regex matcher per mention type."""
    part_matcher = RegexMatcher(r"(?:SMBT|MMBT|BC|PN|2N|KSP|NTE|FMMT|ZTX|MPS)\d{3,5}[A-Z0-9]*")
    current_matcher = NumberMatcher(minimum=100, maximum=995)
    return {"transistor_part": part_matcher, "current": current_matcher}


def value_in_column_header(candidate):
    """Example 3.4: keep candidates whose current sits under a 'Value'-like header."""
    span = candidate.get_mention("current").span
    if span.cell is None:
        return True
    return any(h in ("value", "ic", "ic max", "max") for h in column_header_ngrams(span))


@labeling_function(modality="tabular")
def lf_collector_current_row(cand):
    grams = row_ngrams(cand.current.span)
    return 1 if "collector" in grams and "current" in grams else 0


@labeling_function(modality="tabular")
def lf_temperature_or_voltage_row(cand):
    grams = row_ngrams(cand.current.span)
    return -1 if {"temperature", "voltage", "dissipation"} & set(grams) else 0


@labeling_function(modality="visual")
def lf_y_aligned_with_ma_unit(cand):
    span = cand.current.span
    sentence = span.sentence
    for word, box in zip(sentence.words, sentence.word_boxes):
        if word.lower() == "ma" and box is not None and span.bounding_box is not None:
            if box.is_horizontally_aligned(span.bounding_box, tolerance=6.0):
                return 1
    return 1 if "ma" in row_ngrams(span) else 0


@labeling_function(modality="structural")
def lf_part_outside_header(cand):
    return -1 if cand.transistor_part.span.html_tag not in ("h1", "h2", "td", "th") else 0


LFS = [lf_collector_current_row, lf_temperature_or_voltage_row, lf_y_aligned_with_ma_unit, lf_part_outside_header]


# ----------------------------------------------------------------------- main
def main() -> None:
    # Reuse the synthetic corpus but none of its bundled matchers/LFs.
    dataset = load_dataset("electronics", n_docs=16, seed=3)
    documents = dataset.parse_documents()
    schema = RelationSchema("has_collector_current", ("transistor_part", "current"))

    pipeline = FonduerPipeline(
        schema=schema,
        matchers=build_matchers(),
        labeling_functions=LFS,
        throttlers=[value_in_column_header],
        config=FonduerConfig(),
    )

    # Development mode: inspect LF metrics before running learning.
    extraction = pipeline.generate_candidates(documents)
    print(f"Candidates after throttling: {extraction.n_candidates} "
          f"({extraction.n_throttled} pruned)")
    candidates = pipeline.candidates
    L = LFApplier(LFS).apply_dense(candidates)
    gold = gold_labels_for_candidates(candidates, dataset.corpus.gold_by_document())
    print("\nLabeling-function development metrics:")
    print(f"{'LF':35s} {'coverage':>9s} {'overlap':>9s} {'conflict':>9s} {'accuracy':>9s}")
    for summary in lf_summary(L, [lf.name for lf in LFS], gold=gold):
        print(
            f"{summary.name:35s} {summary.coverage:9.2f} {summary.overlap:9.2f} "
            f"{summary.conflict:9.2f} {summary.accuracy:9.2f}"
        )

    # Production mode: one full run against the cached candidates.
    result = pipeline.run(documents, gold=dataset.gold_entries, reuse_candidates=True)
    print(f"\nExtracted {result.kb.size()} KB entries; "
          f"P={result.metrics.precision:.2f} R={result.metrics.recall:.2f} "
          f"F1={result.metrics.f1:.2f}")


if __name__ == "__main__":
    main()
